"""Metrics snapshot exporters: canonical JSON and Prometheus text.

Two wire formats for one snapshot:

* :func:`export_json` — the canonical JSON text (sorted keys, compact
  separators, ASCII) written by ``--metrics-out`` and consumed by the
  CI provenance gate;
* :func:`export_prometheus` — Prometheus text exposition (version
  0.0.4): ``# HELP`` / ``# TYPE`` headers, escaped label values,
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series per histogram.

Every *declared* metric family is always emitted, zero-valued when the
snapshot recorded no samples for it: a scrape target must not make
families appear and disappear between scrapes, and the acceptance
tests can assert coverage without forcing work onto every path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Tuple

from .metrics import (
    COUNTERS,
    GAUGES,
    HISTOGRAMS,
    _samples,
    bounds_for,
)


def export_json(snapshot: Mapping[str, object]) -> str:
    """The one canonical JSON text for a snapshot (digest-stable)."""
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"' % (key, _escape_label_value(str(value))) for key, value in pairs
    )
    return "{%s}" % body


def _format_value(value: object) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _bound_text(bound: float) -> str:
    return _format_value(bound)


def export_prometheus(snapshot: Mapping[str, object]) -> str:
    """Prometheus text exposition covering every declared family."""
    by_name: Dict[str, List[Dict[str, object]]] = {}
    for section in ("counters", "gauges", "histograms"):
        for sample in _samples(snapshot, section):
            by_name.setdefault(str(sample["name"]), []).append(sample)

    lines: List[str] = []
    for name in sorted(COUNTERS):
        lines.append("# HELP %s %s" % (name, COUNTERS[name]))
        lines.append("# TYPE %s counter" % name)
        samples = by_name.get(name, [])
        if not samples:
            lines.append("%s 0" % name)
        for sample in samples:
            lines.append(
                "%s%s %s"
                % (
                    name,
                    _label_text(sample.get("labels", {})),
                    _format_value(sample["value"]),
                )
            )
    for name in sorted(GAUGES):
        lines.append("# HELP %s %s" % (name, GAUGES[name]))
        lines.append("# TYPE %s gauge" % name)
        samples = by_name.get(name, [])
        if not samples:
            lines.append("%s 0" % name)
        for sample in samples:
            lines.append(
                "%s%s %s"
                % (
                    name,
                    _label_text(sample.get("labels", {})),
                    _format_value(sample["value"]),
                )
            )
    for name in sorted(HISTOGRAMS):
        lines.append("# HELP %s %s" % (name, HISTOGRAMS[name]))
        lines.append("# TYPE %s histogram" % name)
        bounds = bounds_for(name)
        samples = by_name.get(name, [])
        if not samples:
            samples = [
                {
                    "labels": {},
                    "buckets": [0] * (len(bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            ]
        for sample in samples:
            labels = sample.get("labels", {})
            cumulative = 0
            buckets = list(sample["buckets"])
            for bound, bucket_count in zip(bounds, buckets):
                cumulative += int(bucket_count)
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        name,
                        _label_text(labels, (("le", _bound_text(bound)),)),
                        cumulative,
                    )
                )
            cumulative += int(buckets[-1])
            lines.append(
                "%s_bucket%s %d"
                % (name, _label_text(labels, (("le", "+Inf"),)), cumulative)
            )
            lines.append(
                "%s_sum%s %s"
                % (name, _label_text(labels), repr(float(sample["sum"])))
            )
            lines.append(
                "%s_count%s %d"
                % (name, _label_text(labels), int(sample["count"]))
            )
    return "\n".join(lines) + "\n"
