"""Bounded symbolic execution of ISDL descriptions.

:class:`SymbolicExecutor` mirrors the reference interpreter
(:mod:`repro.semantics.interpreter`) statement for statement, but over
:mod:`repro.symbolic.terms` instead of integers:

* registers start at ``const 0`` and truncate on store exactly like
  :class:`~repro.semantics.state.RegisterFile` (the truncation itself
  is provisional — it vanishes when the interval analysis proves the
  value fits);
* frame locals and the routine-name return slot are never truncated,
  and routine returns truncate to the routine width — byte-for-byte
  the interpreter's rules;
* an ``if`` with an undecided condition executes both branches under
  interval refinements of the condition and merges the states with
  ``ite`` terms; a branch whose refinement would require an *empty*
  interval is statically infeasible and is pruned instead of executed;
* ``assert`` conditions are assumed true (they are checked statically
  by lint's E304 and dynamically by every confirmation trial);
* ``repeat`` first attempts a bounded **concrete unroll** (every
  ``exit_when`` must decide), then falls back to **summarization**:
  the loop body is executed once over fresh *slot* variables standing
  for the loop-carried state, and the loop's observable behaviour —
  the ordered exit events plus the fallthrough update — is digested
  into an uninterpreted ``loop(digest, out, args...)`` application.
  Two alpha-equivalent loops digest identically, so equal summaries
  applied to equal entry states produce identical terms.

Summarization runs in up to two passes.  Pass one gives every slot its
full width range.  If the body matches the regular counted-loop shape
(an ``exit_when ctr = 0`` before any write to ``ctr``, whose only
update is ``ctr <- ctr - 1``, with a finite entry interval), pass two
re-executes the body under *trip-bounded* slot intervals — the counter
gets ``[0, entry_hi]``, and every ``±k`` induction register gets its
entry interval widened by ``k * (trips + 1)`` in the update direction.
The tighter intervals let width truncations drop inside the body,
which is what makes a 16-bit machine loop's summary digest equal an
unbounded-integer operator loop's.  Pass two is self-checking: a slot
whose claimed interval fails to discharge its own update mask is
demoted back to the full width range (never unsound — the claimed
interval is only kept when the no-wraparound argument it rests on is
visible in the resulting terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..dataflow.effects import MEM, OUT, Effects, EffectAnalysis
from ..isdl import ast
from ..lint.intervals import Interval
from ..semantics.values import width_bits
from .terms import (
    FALSE,
    MAYBE,
    TRUE,
    BudgetExceeded,
    SymbolicError,
    Term,
    TermBuilder,
    Unsupported,
    digest_keys,
    term_key,
)

__all__ = ["SymResult", "SymbolicExecutor"]


class _LoopExit(Exception):
    """A decided ``exit_when`` fired during concrete unrolling."""


class _UnrollAbort(Exception):
    """Concrete unrolling hit an undecidable exit or the budget."""


class _BodyDone(Exception):
    """Summarization: an exit always fires here, on every iteration."""


class _BranchDead(Exception):
    """Summarization: this branch always exits the loop."""


@dataclass(frozen=True)
class SymResult:
    """Observable outcome of one symbolic run."""

    outputs: Tuple[Term, ...]
    memory: Term
    registers: Dict[str, Term]


class _Frame:
    __slots__ = ("routine", "locals", "retval")

    def __init__(self, routine: ast.RoutineDecl, locals_: Dict[str, Term], retval: Term):
        self.routine = routine
        self.locals = locals_
        self.retval = retval


class _UnrollCtx:
    __slots__ = ()


class _SumCtx:
    __slots__ = (
        "serial",
        "writes",
        "order",
        "path_base",
        "touches_mem",
        "events",
        "written_so_far",
    )

    def __init__(self, serial, writes, order, path_base, touches_mem):
        self.serial = serial
        self.writes = writes
        self.order = order
        self.path_base = path_base
        self.touches_mem = touches_mem
        self.events: List[_ExitEvent] = []
        self.written_so_far: Set[str] = set()


@dataclass
class _ExitEvent:
    """One ``exit_when`` reached during a summarization pass."""

    cond: Term  # path condition AND exit condition, as a flag term
    path_empty: bool
    terminal: bool  # the exit provably always fires at this point
    writes_before: frozenset
    snapshot: Tuple[Term, ...]
    mem: Optional[Term]


@dataclass
class _PassResult:
    slots: Tuple[Term, ...]
    mem_slot: Optional[Term]
    events: List[_ExitEvent]
    fallthrough: Tuple[Term, ...]
    mem_out: Optional[Term]
    always_exits: bool


class SymbolicExecutor:
    """Symbolically execute one description's entry routine."""

    def __init__(
        self,
        description: ast.Description,
        builder: TermBuilder,
        *,
        max_stmts: int = 20_000,
        unroll_budget: int = 64,
        max_loop_passes: int = 3,
    ):
        self._description = description
        self._builder = builder
        self._entry = description.entry_routine()
        self._routines = {r.name: r for r in description.routines()}
        self._registers = {r.name: r.width for r in description.registers()}
        self._effects = EffectAnalysis(description)
        self._max_stmts = max_stmts
        self._unroll_budget = unroll_budget
        self._max_loop_passes = max_loop_passes
        #: concrete loop iterations executed across all unroll attempts.
        self.unroll_iterations = 0
        #: deepest successful or attempted unroll of a single loop.
        self.max_unroll_depth = 0

    # ------------------------------------------------------------------
    # entry point

    def run(self, inputs: Mapping[str, Term]) -> SymResult:
        """Execute the entry routine over symbolic inputs.

        ``inputs`` maps input names to terms; names the description
        reads but the mapping omits default to ``const 0``, mirroring
        the interpreter's uninitialized-register rule.
        """
        builder = self._builder
        self._inputs = dict(inputs)
        self._regs: Dict[str, Term] = {
            name: builder.const(0) for name in self._registers
        }
        self._mem: Term = builder.memvar()
        self._outputs: List[Term] = []
        self._frames: List[_Frame] = []
        self._loops: List[object] = []
        self._path: List[Term] = []
        self._stmts = 0
        with builder.refinement_scope():
            self._exec_routine(self._entry, ())
        return SymResult(tuple(self._outputs), self._mem, dict(self._regs))

    # ------------------------------------------------------------------
    # state bookkeeping

    def _fork_state(self):
        return (
            dict(self._regs),
            self._mem,
            list(self._outputs),
            [(dict(frame.locals), frame.retval) for frame in self._frames],
        )

    def _restore_state(self, state) -> None:
        regs, mem, outputs, frames = state
        self._regs = dict(regs)
        self._mem = mem
        self._outputs = list(outputs)
        for frame, (locals_, retval) in zip(self._frames, frames):
            frame.locals = dict(locals_)
            frame.retval = retval

    def _note_write(self, name: str) -> None:
        if self._loops:
            ctx = self._loops[-1]
            if isinstance(ctx, _SumCtx) and (
                name in ctx.writes or name == MEM
            ):
                ctx.written_so_far.add(name)

    def _store(self, target, value: Term) -> None:
        if isinstance(target, ast.MemRead):
            addr = self._eval(target.addr)
            self._mem = self._builder.store(self._mem, addr, value)
            self._note_write(MEM)
            return
        self._store_name(target.name, value)

    def _store_name(self, name: str, value: Term) -> None:
        frame = self._frames[-1] if self._frames else None
        if frame is not None:
            if name == frame.routine.name:
                frame.retval = value
                self._note_write(name)
                return
            if name in frame.locals:
                frame.locals[name] = value
                self._note_write(name)
                return
        if name in self._regs:
            bits = width_bits(self._registers[name])
            self._regs[name] = (
                value if bits is None else self._builder.trunc(bits, value)
            )
            self._note_write(name)
            return
        raise Unsupported(f"assignment to undeclared name {name!r}")

    def _set_raw(self, name: str, value: Term) -> None:
        """Bind a name without truncation (slots and summaries are
        already in range by construction)."""
        frame = self._frames[-1] if self._frames else None
        if frame is not None:
            if name == frame.routine.name:
                frame.retval = value
                return
            if name in frame.locals:
                frame.locals[name] = value
                return
        if name in self._regs:
            self._regs[name] = value
            return
        raise Unsupported(f"cannot bind loop state for {name!r}")

    def _load_name(self, name: str) -> Term:
        frame = self._frames[-1] if self._frames else None
        if frame is not None:
            if name in frame.locals:
                return frame.locals[name]
            if name == frame.routine.name:
                return frame.retval
        value = self._regs.get(name)
        if value is None:
            raise Unsupported(f"reference to undeclared register {name!r}")
        return value

    def _name_bits(self, name: str) -> Optional[int]:
        width = self._registers.get(name)
        return width_bits(width) if width is not None else None

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, expr: ast.Expr) -> Term:
        builder = self._builder
        if isinstance(expr, ast.Const):
            return builder.const(expr.value)
        if isinstance(expr, ast.Var):
            return self._load_name(expr.name)
        if isinstance(expr, ast.MemRead):
            addr = self._eval(expr.addr)
            return builder.select(self._mem, addr)
        if isinstance(expr, ast.Call):
            routine = self._routines.get(expr.name)
            if routine is None:
                raise Unsupported(f"call to unknown routine {expr.name!r}")
            if any(f.routine.name == expr.name for f in self._frames):
                raise Unsupported(f"recursive call to {expr.name!r}")
            args = tuple(self._eval(arg) for arg in expr.args)
            return self._exec_routine(routine, args)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return self._apply_binop(expr.op, left, right)
        if isinstance(expr, ast.UnOp):
            operand = self._eval(expr.operand)
            if expr.op == "not":
                return builder.not_(operand)
            if expr.op == "-":
                return builder.neg(operand)
            raise Unsupported(f"unary operator {expr.op!r}")
        raise Unsupported(f"cannot evaluate {type(expr).__name__}")

    def _apply_binop(self, op: str, left: Term, right: Term) -> Term:
        builder = self._builder
        if op == "+":
            return builder.add(left, right)
        if op == "-":
            return builder.sub(left, right)
        if op == "*":
            return builder.mul(left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return builder.cmp(op, left, right)
        if op == "and":
            return builder.and_(left, right)
        if op == "or":
            return builder.or_(left, right)
        raise Unsupported(f"binary operator {op!r}")

    # ------------------------------------------------------------------
    # statements

    def _tick(self) -> None:
        self._stmts += 1
        if self._stmts > self._max_stmts:
            raise BudgetExceeded(
                f"statement budget exceeded ({self._max_stmts})"
            )

    def _exec_routine(self, routine: ast.RoutineDecl, args: Tuple[Term, ...]) -> Term:
        if len(args) != len(routine.params):
            raise Unsupported(
                f"routine {routine.name!r} expects {len(routine.params)} "
                f"arguments, got {len(args)}"
            )
        frame = _Frame(
            routine, dict(zip(routine.params, args)), self._builder.const(0)
        )
        self._frames.append(frame)
        try:
            with self._builder.refinement_scope():
                self._exec_block(routine.body)
        finally:
            self._frames.pop()
        bits = width_bits(routine.width)
        if bits is None:
            return frame.retval
        return self._builder.trunc(bits, frame.retval)

    def _exec_block(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        self._tick()
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.expr)
            self._store(stmt.target, value)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.Repeat):
            self._exec_repeat(stmt)
        elif isinstance(stmt, ast.ExitWhen):
            self._exec_exit(stmt)
        elif isinstance(stmt, ast.Input):
            zero = self._builder.const(0)
            for name in stmt.names:
                self._store_name(name, self._inputs.get(name, zero))
        elif isinstance(stmt, ast.Output):
            for expr in stmt.exprs:
                self._outputs.append(self._eval(expr))
        elif isinstance(stmt, ast.Assert):
            self._exec_assert(stmt)
        else:
            raise Unsupported(f"cannot execute {type(stmt).__name__}")

    def _exec_assert(self, stmt: ast.Assert) -> None:
        cond = self._eval(stmt.cond)
        verdict = self._builder.decide(cond)
        if verdict == TRUE:
            return
        if verdict == FALSE:
            raise Unsupported("assertion is statically false")
        overlay = self._builder.refine(cond, True)
        if overlay is None:
            raise Unsupported("assertion unsatisfiable under intervals")
        # Assume the assertion (it is lint-checked statically and every
        # confirmation trial checks it dynamically); the refinement is
        # scoped to the enclosing routine body, branch, or loop pass.
        self._builder.push_refinement(overlay)

    # -- conditionals ---------------------------------------------------

    def _exec_if(self, stmt: ast.If) -> None:
        builder = self._builder
        cond = self._eval(stmt.cond)
        verdict = builder.decide(cond)
        if verdict == TRUE:
            self._exec_block(stmt.then)
            return
        if verdict == FALSE:
            self._exec_block(stmt.els)
            return
        ref_true = builder.refine(cond, True)
        ref_false = builder.refine(cond, False)
        if ref_true is None and ref_false is None:
            raise Unsupported("contradictory branch condition")
        if ref_true is None:
            # The then-branch would need an empty interval: infeasible.
            with builder.refinement_scope():
                builder.push_refinement(ref_false)
                self._exec_block(stmt.els)
            return
        if ref_false is None:
            with builder.refinement_scope():
                builder.push_refinement(ref_true)
                self._exec_block(stmt.then)
            return
        saved = self._fork_state()
        state_true, dead_true = self._run_branch(
            stmt.then, builder.ne0(cond), ref_true
        )
        self._restore_state(saved)
        state_false, dead_false = self._run_branch(
            stmt.els, builder.not_(cond), ref_false
        )
        if dead_true and dead_false:
            raise _BranchDead()
        if dead_true:
            return  # the live else-result is already the current state
        if dead_false:
            self._restore_state(state_true)
            return
        self._merge_state(cond, state_true)

    def _run_branch(self, block, path_flag: Term, overlay):
        self._path.append(path_flag)
        dead = False
        try:
            with self._builder.refinement_scope():
                self._builder.push_refinement(overlay)
                try:
                    self._exec_block(block)
                except _BranchDead:
                    dead = True
                except _LoopExit:
                    # A concrete loop exit inside an undecided branch
                    # cannot be merged; abandon the enclosing unroll.
                    raise _UnrollAbort()
        finally:
            self._path.pop()
        return self._fork_state(), dead

    def _merge_state(self, cond: Term, then_state) -> None:
        """Merge the then-branch state into the current (else) state."""
        builder = self._builder
        regs_t, mem_t, outputs_t, frames_t = then_state
        if len(outputs_t) != len(self._outputs):
            raise Unsupported("branches emit different output counts")
        self._outputs = [
            t if t is e else builder.ite(cond, t, e)
            for t, e in zip(outputs_t, self._outputs)
        ]
        for name, value_t in regs_t.items():
            value_e = self._regs[name]
            if value_t is not value_e:
                self._regs[name] = builder.ite(cond, value_t, value_e)
        if mem_t is not self._mem:
            self._mem = builder.ite(cond, mem_t, self._mem)
        for frame, (locals_t, retval_t) in zip(self._frames, frames_t):
            for name, value_t in locals_t.items():
                value_e = frame.locals[name]
                if value_t is not value_e:
                    frame.locals[name] = builder.ite(cond, value_t, value_e)
            if retval_t is not frame.retval:
                frame.retval = builder.ite(cond, retval_t, frame.retval)

    # -- loop exits -----------------------------------------------------

    def _exec_exit(self, stmt: ast.ExitWhen) -> None:
        if not self._loops:
            raise Unsupported("exit_when outside repeat")
        ctx = self._loops[-1]
        builder = self._builder
        cond = self._eval(stmt.cond)
        verdict = builder.decide(cond)
        if isinstance(ctx, _UnrollCtx):
            if verdict == TRUE:
                raise _LoopExit()
            if verdict == FALSE:
                return
            raise _UnrollAbort()
        if verdict == FALSE:
            return
        flag = builder.ne0(cond)
        path = self._path[ctx.path_base:]
        full = flag
        for entry in reversed(path):
            full = builder.and_(entry, full)
        terminal = verdict == TRUE
        overlay = None
        if not terminal:
            overlay = builder.refine(cond, False)
            if overlay is None:
                # staying in the loop is infeasible: the exit always fires.
                terminal = True
        ctx.events.append(
            _ExitEvent(
                cond=full,
                path_empty=not path,
                terminal=terminal,
                writes_before=frozenset(ctx.written_so_far),
                snapshot=tuple(self._load_name(name) for name in ctx.order),
                mem=self._mem if ctx.touches_mem else None,
            )
        )
        if terminal:
            if path:
                raise _BranchDead()
            raise _BodyDone()
        self._builder.push_refinement(overlay)

    # ------------------------------------------------------------------
    # repeat: concrete unroll, then summarization

    def _exec_repeat(self, stmt: ast.Repeat) -> None:
        try:
            self._try_unroll(stmt)
            return
        except _UnrollAbort:
            pass
        self._summarize(stmt)

    def _try_unroll(self, stmt: ast.Repeat) -> None:
        saved = self._fork_state()
        self._loops.append(_UnrollCtx())
        depth = 0
        try:
            with self._builder.refinement_scope():
                while True:
                    if depth >= self._unroll_budget:
                        raise _UnrollAbort()
                    depth += 1
                    try:
                        self._exec_block(stmt.body)
                    except _LoopExit:
                        break
        except _UnrollAbort:
            self._restore_state(saved)
            raise
        finally:
            self._loops.pop()
            self.unroll_iterations += depth
            self.max_unroll_depth = max(self.max_unroll_depth, depth)

    # -- summarization --------------------------------------------------

    def _summarize(self, stmt: ast.Repeat) -> None:
        combined = Effects()
        for inner in stmt.body:
            combined = combined | self._effects.stmt_effects(inner)
        if OUT in combined.writes:
            raise Unsupported("output inside a summarized loop")
        writes = set(combined.writes) - {MEM}
        mem_written = MEM in combined.writes
        touches_mem = mem_written or MEM in combined.reads
        order = self._canon_order(stmt.body, writes)
        if set(order) != writes:
            raise Unsupported("loop-carried state not locatable in body")
        entry_terms = tuple(self._load_name(name) for name in order)
        entry_mem = self._mem
        defaults = [
            Interval.from_bits(self._name_bits(name)) for name in order
        ]

        result = self._loop_pass(stmt, order, defaults, touches_mem)
        trip = self._find_counter(result, order, entry_terms)
        if trip is not None:
            counter_i, bound, form = trip
            deltas = self._find_induction(result)
            demoted: Set[int] = set()
            for _ in range(self._max_loop_passes):
                intervals = list(defaults)
                intervals[counter_i] = Interval(
                    1 if form == "post" else 0, bound
                )
                for j, delta in deltas.items():
                    if j == counter_i or j in demoted:
                        continue
                    claimed = self._induction_interval(
                        entry_terms[j], delta, bound, defaults[j]
                    )
                    if claimed is not None:
                        intervals[j] = claimed
                candidate = self._loop_pass(stmt, order, intervals, touches_mem)
                bad = self._recheck(
                    candidate, order, counter_i, form, deltas, demoted
                )
                if bad is None:
                    break  # the counter pattern itself broke: keep pass one
                if not bad:
                    result = candidate
                    break
                demoted |= bad
        self._apply_summary(
            result, order, entry_terms, entry_mem, touches_mem, mem_written
        )

    def _loop_pass(
        self,
        stmt: ast.Repeat,
        order: Tuple[str, ...],
        intervals: Sequence[Interval],
        touches_mem: bool,
    ) -> _PassResult:
        builder = self._builder
        serial = builder.fresh_loop_serial()
        slots = tuple(
            builder.slot(serial, index, interval)
            for index, interval in enumerate(intervals)
        )
        mem_slot = builder.slot(serial, "mem", None) if touches_mem else None
        saved = self._fork_state()
        ctx = _SumCtx(serial, set(order), order, len(self._path), touches_mem)
        self._loops.append(ctx)
        always = False
        try:
            for name, slot in zip(order, slots):
                self._set_raw(name, slot)
            if mem_slot is not None:
                self._mem = mem_slot
            with builder.refinement_scope():
                try:
                    self._exec_block(stmt.body)
                except _BodyDone:
                    always = True
                fallthrough = tuple(
                    self._load_name(name) for name in order
                )
                mem_out = self._mem if touches_mem else None
        finally:
            self._loops.pop()
            self._restore_state(saved)
        return _PassResult(slots, mem_slot, ctx.events, fallthrough, mem_out, always)

    def _canon_order(self, body, writes: Set[str]) -> Tuple[str, ...]:
        """Loop-written names in structural first-occurrence order.

        Purely syntactic (calls walked in place), so two
        alpha-equivalent bodies order their corresponding names
        identically — the property slot numbering and summary digests
        rest on.
        """
        order: List[str] = []
        seen: Set[str] = set()
        walking: Set[str] = set()

        def note(name: str) -> None:
            if name in writes and name not in seen:
                seen.add(name)
                order.append(name)

        def walk_expr(expr: ast.Expr) -> None:
            if isinstance(expr, ast.Var):
                note(expr.name)
            elif isinstance(expr, ast.MemRead):
                walk_expr(expr.addr)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    walk_expr(arg)
                routine = self._routines.get(expr.name)
                if routine is not None and expr.name not in walking:
                    walking.add(expr.name)
                    for inner in routine.body:
                        walk_stmt(inner)
                    walking.discard(expr.name)
            elif isinstance(expr, ast.BinOp):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, ast.UnOp):
                walk_expr(expr.operand)

        def walk_stmt(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Assign):
                walk_expr(stmt.expr)
                if isinstance(stmt.target, ast.MemRead):
                    walk_expr(stmt.target.addr)
                else:
                    note(stmt.target.name)
            elif isinstance(stmt, ast.If):
                walk_expr(stmt.cond)
                for inner in stmt.then:
                    walk_stmt(inner)
                for inner in stmt.els:
                    walk_stmt(inner)
            elif isinstance(stmt, ast.Repeat):
                for inner in stmt.body:
                    walk_stmt(inner)
            elif isinstance(stmt, (ast.ExitWhen, ast.Assert)):
                walk_expr(stmt.cond)
            elif isinstance(stmt, ast.Output):
                for expr in stmt.exprs:
                    walk_expr(expr)
            elif isinstance(stmt, ast.Input):
                for name in stmt.names:
                    note(name)

        for stmt in body:
            walk_stmt(stmt)
        return tuple(order)

    # -- counted-loop recognition --------------------------------------

    @staticmethod
    def _strip_trunc(term: Term) -> Term:
        return term.args[1] if term.kind == "trunc" else term

    def _is_decrement(self, term: Term, slot: Term) -> bool:
        return term.kind == "sum" and term.args == (-1, ((slot, 1),))

    def _is_eq_zero(self, cond: Term, operand: Term) -> bool:
        """``cond`` is ``operand = 0`` (modulo a residual truncation —
        detection works on the loose pass-one terms; the trip-bounded
        recheck sees the masks drop)."""
        if cond.kind != "cmp" or cond.args[0] != "=":
            return False
        _, a, b = cond.args
        if b.kind == "const" and b.args[0] == 0:
            return self._strip_trunc(a) is operand
        if a.kind == "const" and a.args[0] == 0:
            return self._strip_trunc(b) is operand
        return False

    def _counter_form(
        self, result: _PassResult, index: int, name: str
    ) -> Optional[str]:
        """Recognize the two regular counted-loop shapes.

        ``"pre"``: ``exit_when ctr = 0`` before any write to ``ctr``,
        whose only update is ``ctr <- ctr - 1`` (body entries span
        ``[0, entry]``).  ``"post"``: ``ctr <- ctr - 1`` followed by
        ``exit_when ctr = 0`` (mvc-style; body entries span
        ``[1, entry]`` — the exit fires before a zero entry can
        happen, so the pre-decrement value is always positive).
        """
        slot = result.slots[index]
        update = self._strip_trunc(result.fallthrough[index])
        if not self._is_decrement(update, slot):
            return None
        decremented = None
        for event in result.events:
            if not event.path_empty:
                continue
            if name not in event.writes_before and self._is_eq_zero(
                event.cond, slot
            ):
                return "pre"
            if decremented is None:
                # lazily built: the decremented-value pattern only
                # exists when the sum was actually formed this pass.
                decremented = update
            if self._is_eq_zero(event.cond, decremented):
                return "post"
        return None

    def _find_counter(
        self,
        result: _PassResult,
        order: Tuple[str, ...],
        entry_terms: Tuple[Term, ...],
    ) -> Optional[Tuple[int, int, str]]:
        if result.always_exits:
            return None
        for index, name in enumerate(order):
            form = self._counter_form(result, index, name)
            if form is None:
                continue
            entry = self._builder.interval(entry_terms[index])
            floor = 1 if form == "post" else 0
            if entry.lo is None or entry.lo < floor or entry.hi is None:
                continue
            return index, entry.hi, form
        return None

    def _find_induction(self, result: _PassResult) -> Dict[int, int]:
        deltas: Dict[int, int] = {}
        for index, slot in enumerate(result.slots):
            term = result.fallthrough[index]
            if term.kind == "trunc":
                # A masked update (``di <- di + 1`` on a 16-bit machine)
                # still claims its delta; the pass-two recheck insists
                # the mask drops under the claimed interval, so a real
                # wraparound demotes the slot instead of proving wrong.
                term = term.args[1]
            if term.kind != "sum":
                continue
            const, pairs = term.args
            if pairs == ((slot, 1),) and const != 0:
                deltas[index] = const
        return deltas

    def _induction_interval(
        self,
        entry_term: Term,
        delta: int,
        bound: int,
        default: Interval,
    ) -> Optional[Interval]:
        entry = self._builder.interval(entry_term)
        span = delta * (bound + 1)
        if delta > 0:
            if entry.hi is None:
                return None
            lo, hi = entry.lo, entry.hi + span
        else:
            if entry.lo is None:
                return None
            lo, hi = entry.lo + span, entry.hi
        # Clamp into the width range; the pass-two recheck proves the
        # update carries no residual mask under the claimed interval,
        # i.e. that no wraparound escapes the clamp.
        if default.lo is not None:
            lo = default.lo if lo is None else max(lo, default.lo)
        if default.hi is not None:
            hi = default.hi if hi is None else min(hi, default.hi)
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    def _recheck(
        self,
        candidate: _PassResult,
        order: Tuple[str, ...],
        counter_i: int,
        form: str,
        deltas: Dict[int, int],
        demoted: Set[int],
    ) -> Optional[Set[int]]:
        """Validate a trip-bounded pass; ``None`` = counter broke,
        else the set of induction slots whose claim failed.

        The counter's own pattern must re-verify in the *same* form
        (its claimed interval floor rests on that form's exit
        argument) and its update must now be a bare decrement — the
        claimed interval is only kept when it demonstrably discharged
        the width mask it promised to."""
        if candidate.always_exits:
            return None
        if (
            self._counter_form(candidate, counter_i, order[counter_i])
            != form
        ):
            return None
        if not self._is_decrement(
            candidate.fallthrough[counter_i], candidate.slots[counter_i]
        ):
            return None
        bad: Set[int] = set()
        for index, delta in deltas.items():
            if index == counter_i or index in demoted:
                continue
            term = candidate.fallthrough[index]
            slot_j = candidate.slots[index]
            if not (
                term.kind == "sum"
                and term.args == (delta, ((slot_j, 1),))
            ):
                bad.add(index)
        return bad

    # -- applying a summary --------------------------------------------

    def _apply_summary(
        self,
        result: _PassResult,
        order: Tuple[str, ...],
        entry_terms: Tuple[Term, ...],
        entry_mem: Term,
        touches_mem: bool,
        mem_written: bool,
    ) -> None:
        builder = self._builder
        events = result.events
        if not events:
            # No reachable exit: the concrete loop would spin to the
            # step limit; there is no post-loop state to summarize.
            raise Unsupported("loop has no reachable exit")
        if events[0].path_empty and events[0].terminal:
            # The first exit provably fires on the first iteration:
            # the loop is exactly its body prefix, once.  Substitute
            # entry values for the slots and skip the summary node.
            mapping = dict(zip(result.slots, entry_terms))
            if result.mem_slot is not None:
                mapping[result.mem_slot] = entry_mem
            memo: Dict[Term, Term] = {}
            for index, name in enumerate(order):
                self._set_raw(
                    name, self._subst(events[0].snapshot[index], mapping, memo)
                )
            if mem_written:
                self._mem = self._subst(events[0].mem, mapping, memo)
            return
        rename: Dict[int, int] = {}
        memo_keys: Dict[Term, str] = {}
        keys = ["N:%d:%d:%d" % (len(order), int(touches_mem), int(mem_written))]
        for event in events:
            parts = [term_key(event.cond, rename, memo_keys)]
            parts.extend(
                term_key(term, rename, memo_keys) for term in event.snapshot
            )
            if mem_written:
                parts.append(term_key(event.mem, rename, memo_keys))
            keys.append("E:" + "|".join(parts))
        if result.always_exits:
            keys.append("F:always")
        else:
            parts = [
                term_key(term, rename, memo_keys)
                for term in result.fallthrough
            ]
            if mem_written:
                parts.append(term_key(result.mem_out, rename, memo_keys))
            keys.append("F:" + "|".join(parts))
        digest = digest_keys(keys)
        args = tuple(entry_terms) + ((entry_mem,) if touches_mem else ())
        for index, name in enumerate(order):
            joined: Optional[Interval] = None
            for event in events:
                interval = builder.interval(event.snapshot[index])
                joined = interval if joined is None else joined.join(interval)
            if joined is None:
                joined = Interval.from_bits(self._name_bits(name))
            self._set_raw(name, builder.loopout(digest, index, args, joined))
        if mem_written:
            self._mem = builder.loopout(digest, "mem", args, None)

    def _subst(
        self,
        term: Term,
        mapping: Dict[Term, Term],
        memo: Dict[Term, Term],
    ) -> Term:
        """Rebuild ``term`` with slots replaced (through the smart
        constructors, so the result renormalizes)."""
        direct = mapping.get(term)
        if direct is not None:
            return direct
        hit = memo.get(term)
        if hit is not None:
            return hit
        builder = self._builder
        kind = term.kind
        if kind in ("const", "var", "memvar", "slot"):
            result = term
        elif kind == "sum":
            const, pairs = term.args
            result = builder.const(const)
            for part, coeff in pairs:
                result = builder.add(
                    result,
                    builder.scale(self._subst(part, mapping, memo), coeff),
                )
        elif kind == "mul":
            result = builder.mul(
                self._subst(term.args[0], mapping, memo),
                self._subst(term.args[1], mapping, memo),
            )
        elif kind == "cmp":
            result = builder.cmp(
                term.args[0],
                self._subst(term.args[1], mapping, memo),
                self._subst(term.args[2], mapping, memo),
            )
        elif kind == "ite":
            cond = self._subst(term.args[0], mapping, memo)
            result = builder.ite(
                cond,
                self._subst(term.args[1], mapping, memo),
                self._subst(term.args[2], mapping, memo),
            )
        elif kind == "trunc":
            result = builder.trunc(
                term.args[0], self._subst(term.args[1], mapping, memo)
            )
        elif kind == "store":
            result = builder.store(
                self._subst(term.args[0], mapping, memo),
                self._subst(term.args[1], mapping, memo),
                self._subst(term.args[2], mapping, memo),
            )
        elif kind == "select":
            result = builder.select(
                self._subst(term.args[0], mapping, memo),
                self._subst(term.args[1], mapping, memo),
            )
        elif kind == "loop":
            digest, index = term.args[0], term.args[1]
            rebuilt = tuple(
                self._subst(arg, mapping, memo) for arg in term.args[2:]
            )
            result = builder.loopout(
                digest, index, rebuilt, builder._base.get(term)
            )
        else:  # pragma: no cover - exhaustive over builder kinds
            raise Unsupported(f"cannot substitute term kind {kind!r}")
        memo[term] = result
        return result
