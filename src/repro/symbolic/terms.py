"""Width-tracked bit-vector terms for bounded symbolic execution.

The prover's whole job is deciding whether two ISDL descriptions
compute the *same function* of their free inputs.  The term domain is
built so that equal functions normalize to the **same interned object**
whenever the rewriter can see it:

* terms are hash-consed in a per-:class:`TermBuilder` table, so
  structural equality is pointer identity (two independently executed
  descriptions that build ``Var(Len) - 1`` both hold the same object);
* arithmetic normalizes into a linear-combination ``sum`` form
  (constant plus coefficient-weighted terms, ordered by creation), so
  ``a + b`` and ``b + a`` — or ``(x - 1) + 1`` and ``x`` — are one term;
* width truncation (``trunc``) is *provisional*: an interval analysis
  rides along with every term, and a truncation whose operand provably
  fits the width is never materialized.  This is the one semantic gap
  between a ``: integer`` operator variable and a ``<15:0>`` machine
  register, so eliminating redundant masks is what turns
  alpha-equivalent descriptions into identical terms;
* memory is a store chain over a free array variable; ``select``
  resolves through stores at identical or provably disjoint addresses.

Loops summarize into uninterpreted ``loop(digest, index, args...)``
applications (see :mod:`repro.symbolic.executor`); :func:`term_key`
serializes terms with loop-local slot renaming so two alpha-equivalent
loop bodies digest identically.

Everything here is *bounded*: interning more than ``max_nodes`` terms
raises :class:`BudgetExceeded`, which the prover reports as an honest
``unknown`` verdict rather than a timeout.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..lint.intervals import FALSE as IV_FALSE
from ..lint.intervals import TRUE as IV_TRUE
from ..lint.intervals import Interval
from ..lint.intervals import compare as interval_compare

__all__ = [
    "BudgetExceeded",
    "SymbolicError",
    "Term",
    "TermBuilder",
    "Unsupported",
    "evaluate",
    "term_key",
]


class SymbolicError(Exception):
    """Base of every honest give-up in the symbolic layer.

    Carries a one-line ``reason`` that surfaces in ``unknown`` verdicts
    and W402 diagnostics.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class BudgetExceeded(SymbolicError):
    """A term-node, statement, or unroll budget ran out."""


class Unsupported(SymbolicError):
    """The description uses a shape the executor does not model."""


class Term:
    """One interned node of the term DAG.

    Identity *is* equality: the builder guarantees one object per
    ``(kind, args)``, so ``a is b`` answers structural equality in
    O(1).  ``serial`` is the creation index — a deterministic total
    order used to canonicalize commutative operands.
    """

    __slots__ = ("kind", "args", "serial")

    def __init__(self, kind: str, args: Tuple, serial: int):
        self.kind = kind
        self.args = args
        self.serial = serial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Term#{self.serial}({self.kind}, {self.args!r})"


#: Comparison negation, used when a branch condition is assumed false.
_NEGATE = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Symmetric comparison operators whose operands may be reordered.
_SYMMETRIC = ("=", "<>")

#: Three-valued truth of a term under the interval analysis.
TRUE, FALSE, MAYBE = "TRUE", "FALSE", "MAYBE"


def _intersect(a: Interval, b: Interval) -> Optional[Interval]:
    """Intersection of two intervals, or ``None`` when empty.

    :class:`~repro.lint.intervals.Interval` refuses to *construct* an
    empty interval, so emptiness must be decided before building — this
    is the single choke point where "refinement proves the path
    infeasible" becomes observable.
    """
    lo = a.lo if b.lo is None else (b.lo if a.lo is None else max(a.lo, b.lo))
    hi = a.hi if b.hi is None else (b.hi if a.hi is None else min(a.hi, b.hi))
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


class TermBuilder:
    """Intern table, rewrite engine, and interval oracle for one prove.

    One builder is shared by *both* sides of an equivalence query so
    that their terms land in one intern table; the per-prove lifetime
    keeps node budgets deterministic.
    """

    def __init__(self, max_nodes: int = 200_000):
        self.max_nodes = max_nodes
        self._interned: Dict[Tuple, Term] = {}
        self._base: Dict[Term, Interval] = {}
        self._refinements: List[Dict[Term, Interval]] = []
        self._loop_serial = 0

    # ------------------------------------------------------------------
    # interning

    @property
    def node_count(self) -> int:
        """Number of distinct terms interned so far."""
        return len(self._interned)

    def _intern(self, kind: str, args: Tuple) -> Term:
        key = (kind, args)
        term = self._interned.get(key)
        if term is None:
            if len(self._interned) >= self.max_nodes:
                raise BudgetExceeded(
                    f"term budget exceeded ({self.max_nodes} nodes)"
                )
            term = Term(kind, args, len(self._interned))
            self._interned[key] = term
        return term

    def fresh_loop_serial(self) -> int:
        """A new identity for one loop summarization pass's slots."""
        self._loop_serial += 1
        return self._loop_serial

    # ------------------------------------------------------------------
    # leaves

    def const(self, value: int) -> Term:
        return self._intern("const", (int(value),))

    def var(self, name: str, interval: Optional[Interval] = None) -> Term:
        term = self._intern("var", (name,))
        if interval is not None:
            self._base[term] = interval
        return term

    def memvar(self, name: str = "M0") -> Term:
        """The free array variable standing for initial memory."""
        return self._intern("memvar", (name,))

    def slot(self, loop_serial: int, index, interval: Optional[Interval]) -> Term:
        """A loop-carried value at iteration start (``index`` = canon
        position of the written name, or ``"mem"``)."""
        term = self._intern("slot", (loop_serial, index))
        if interval is not None:
            self._base[term] = interval
        return term

    def loopout(
        self,
        digest: str,
        index,
        args: Tuple[Term, ...],
        interval: Optional[Interval] = None,
    ) -> Term:
        """The value of output ``index`` of a summarized loop."""
        term = self._intern("loop", (digest, index) + tuple(args))
        if interval is not None and term not in self._base:
            self._base[term] = interval
        return term

    def value(self, term: Term) -> Optional[int]:
        """The concrete value of a constant term, else ``None``."""
        if term.kind == "const":
            return term.args[0]
        return None

    # ------------------------------------------------------------------
    # linear arithmetic

    def _linear(self, term: Term) -> Tuple[int, Tuple[Tuple[Term, int], ...]]:
        """``term`` as ``const + sum(coeff * part)`` (parts sorted)."""
        if term.kind == "const":
            return term.args[0], ()
        if term.kind == "sum":
            return term.args[0], term.args[1]
        return 0, ((term, 1),)

    def _make_sum(self, const: int, parts: Dict[Term, int]) -> Term:
        live = [(t, c) for t, c in parts.items() if c != 0]
        if not live:
            return self.const(const)
        live.sort(key=lambda pair: pair[0].serial)
        if const == 0 and len(live) == 1 and live[0][1] == 1:
            return live[0][0]
        return self._intern("sum", (const, tuple(live)))

    def add(self, a: Term, b: Term) -> Term:
        ca, pa = self._linear(a)
        cb, pb = self._linear(b)
        parts: Dict[Term, int] = dict(pa)
        for term, coeff in pb:
            parts[term] = parts.get(term, 0) + coeff
        return self._make_sum(ca + cb, parts)

    def neg(self, a: Term) -> Term:
        return self.scale(a, -1)

    def sub(self, a: Term, b: Term) -> Term:
        return self.add(a, self.neg(b))

    def scale(self, a: Term, k: int) -> Term:
        if k == 0:
            return self.const(0)
        c, pairs = self._linear(a)
        return self._make_sum(c * k, {t: coeff * k for t, coeff in pairs})

    def mul(self, a: Term, b: Term) -> Term:
        va, vb = self.value(a), self.value(b)
        if va is not None and vb is not None:
            return self.const(va * vb)
        if va is not None:
            return self.scale(b, va)
        if vb is not None:
            return self.scale(a, vb)
        if a.serial > b.serial:
            a, b = b, a
        return self._intern("mul", (a, b))

    # ------------------------------------------------------------------
    # comparisons and booleans

    def cmp(self, op: str, a: Term, b: Term) -> Term:
        va, vb = self.value(a), self.value(b)
        if va is not None and vb is not None:
            from ..semantics.values import apply_binop

            return self.const(apply_binop(op, va, vb))
        verdict = interval_compare(op, self.interval(a), self.interval(b))
        if verdict == IV_TRUE:
            return self.const(1)
        if verdict == IV_FALSE:
            return self.const(0)
        if op in (">", ">="):
            op = "<" if op == ">" else "<="
            a, b = b, a
        if op in _SYMMETRIC and a.serial > b.serial:
            a, b = b, a
        return self._intern("cmp", (op, a, b))

    def ne0(self, term: Term) -> Term:
        """Canonical 0/1 flag for a term's truthiness."""
        value = self.value(term)
        if value is not None:
            return self.const(1 if value != 0 else 0)
        interval = self.interval(term)
        if (
            interval.lo is not None
            and interval.hi is not None
            and 0 <= interval.lo
            and interval.hi <= 1
        ):
            return term
        return self.cmp("<>", term, self.const(0))

    def not_(self, term: Term) -> Term:
        value = self.value(term)
        if value is not None:
            return self.const(0 if value != 0 else 1)
        if term.kind == "cmp":
            op, a, b = term.args
            return self.cmp(_NEGATE[op], a, b)
        return self.cmp("=", term, self.const(0))

    def and_(self, a: Term, b: Term) -> Term:
        da, db = self.decide(a), self.decide(b)
        if da == FALSE or db == FALSE:
            return self.const(0)
        if da == TRUE:
            return self.ne0(b)
        if db == TRUE:
            return self.ne0(a)
        return self.mul(self.ne0(a), self.ne0(b))

    def or_(self, a: Term, b: Term) -> Term:
        da, db = self.decide(a), self.decide(b)
        if da == TRUE or db == TRUE:
            return self.const(1)
        if da == FALSE:
            return self.ne0(b)
        if db == FALSE:
            return self.ne0(a)
        return self.ne0(self.add(self.ne0(a), self.ne0(b)))

    # ------------------------------------------------------------------
    # width truncation

    def trunc(self, bits: int, term: Term) -> Term:
        value = self.value(term)
        if value is not None:
            return self.const(value & ((1 << bits) - 1))
        if self.interval(term).fits_bits(bits):
            return term
        if term.kind == "trunc":
            inner_bits, inner = term.args
            if inner_bits <= bits:
                return term
            return self.trunc(bits, inner)
        return self._intern("trunc", (bits, term))

    # ------------------------------------------------------------------
    # conditionals

    def ite(self, cond: Term, then: Term, els: Term) -> Term:
        if then is els:
            return then
        verdict = self.decide(cond)
        if verdict == TRUE:
            return then
        if verdict == FALSE:
            return els
        return self._intern("ite", (cond, then, els))

    # ------------------------------------------------------------------
    # memory

    def store(self, mem: Term, addr: Term, value: Term) -> Term:
        # Memory.write masks to a byte; the mask is part of the store.
        return self._intern("store", (mem, addr, self.trunc(8, value)))

    def select(self, mem: Term, addr: Term) -> Term:
        cursor = mem
        while cursor.kind == "store":
            base, stored_addr, stored_value = cursor.args
            if stored_addr is addr:
                return stored_value
            if self._disjoint(addr, stored_addr):
                cursor = base
                continue
            break
        term = self._intern("select", (cursor, addr))
        if term not in self._base:
            self._base[term] = Interval(0, 255)
        return term

    def _disjoint(self, a: Term, b: Term) -> bool:
        """True when two addresses provably never alias."""
        ca, pa = self._linear(a)
        cb, pb = self._linear(b)
        if pa == pb:
            return ca != cb
        return self.interval(a).never_intersects(self.interval(b))

    # ------------------------------------------------------------------
    # interval oracle

    def interval(self, term: Term) -> Interval:
        return self._interval(term, {})

    def _interval(self, term: Term, memo: Dict[Term, Interval]) -> Interval:
        hit = memo.get(term)
        if hit is not None:
            return hit
        result = None
        for overlay in reversed(self._refinements):
            result = overlay.get(term)
            if result is not None:
                break
        if result is None:
            result = self._structural_interval(term, memo)
        memo[term] = result
        return result

    def _structural_interval(
        self, term: Term, memo: Dict[Term, Interval]
    ) -> Interval:
        kind = term.kind
        if kind == "const":
            return Interval.const(term.args[0])
        if kind in ("var", "slot", "loop", "select", "memvar", "store"):
            return self._base.get(term, Interval.top())
        if kind == "sum":
            const, pairs = term.args
            acc = Interval.const(const)
            for part, coeff in pairs:
                acc = acc.add(
                    self._interval(part, memo).mul(Interval.const(coeff))
                )
            return acc
        if kind == "mul":
            a, b = term.args
            return self._interval(a, memo).mul(self._interval(b, memo))
        if kind == "cmp":
            return Interval.boolean()
        if kind == "ite":
            _, then, els = term.args
            return self._interval(then, memo).join(self._interval(els, memo))
        if kind == "trunc":
            return Interval.from_bits(term.args[0])
        raise Unsupported(f"no interval for term kind {kind!r}")

    def decide(self, term: Term) -> str:
        """Three-valued truth of ``term`` under the current intervals."""
        value = self.value(term)
        if value is not None:
            return TRUE if value != 0 else FALSE
        interval = self.interval(term)
        if (interval.lo is not None and interval.lo > 0) or (
            interval.hi is not None and interval.hi < 0
        ):
            return TRUE
        if interval.lo == 0 and interval.hi == 0:
            return FALSE
        return MAYBE

    # ------------------------------------------------------------------
    # path refinement

    def refine(self, cond: Term, want_true: bool) -> Optional[Dict[Term, Interval]]:
        """Interval overlay implied by assuming ``cond`` is true/false.

        Returns ``None`` when the assumption is infeasible under the
        current intervals (an empty interval would be required) — the
        caller prunes that branch instead of executing it.
        """
        overlay: Dict[Term, Interval] = {}
        self._refinements.append(overlay)
        try:
            feasible = self._refine(cond, want_true, overlay)
        finally:
            self._refinements.pop()
        return overlay if feasible else None

    def _refine(
        self, term: Term, want_true: bool, overlay: Dict[Term, Interval]
    ) -> bool:
        value = self.value(term)
        if value is not None:
            return (value != 0) == want_true
        if term.kind == "cmp":
            op, a, b = term.args
            if not want_true:
                op = _NEGATE[op]
            return self._refine_cmp(op, a, b, overlay)
        if term.kind == "mul" and want_true:
            # product != 0 iff both factors are nonzero.
            a, b = term.args
            return self._refine(a, True, overlay) and self._refine(
                b, True, overlay
            )
        op = "<>" if want_true else "="
        return self._refine_cmp(op, term, self.const(0), overlay)

    def _narrow(
        self, term: Term, bound: Interval, overlay: Dict[Term, Interval]
    ) -> bool:
        if term.kind == "const":
            return _intersect(self.interval(term), bound) is not None
        with self.refined(overlay):
            current = self.interval(term)
        narrowed = _intersect(current, bound)
        if narrowed is None:
            return False
        overlay[term] = narrowed
        return True

    def _refine_cmp(
        self, op: str, a: Term, b: Term, overlay: Dict[Term, Interval]
    ) -> bool:
        with self.refined(overlay):
            ia, ib = self.interval(a), self.interval(b)
        if op == "=":
            meet = _intersect(ia, ib)
            if meet is None:
                return False
            if not (self._narrow(a, meet, overlay) and self._narrow(b, meet, overlay)):
                return False
            # sum of non-negative parts equal to zero: every part is zero.
            if (
                meet.lo == 0
                and meet.hi == 0
                and a.kind == "sum"
                and a.args[0] >= 0
            ):
                const, pairs = a.args
                positive = all(coeff > 0 for _, coeff in pairs)
                with self.refined(overlay):
                    grounded = positive and all(
                        self.interval(part).lo is not None
                        and self.interval(part).lo >= 0
                        for part, _ in pairs
                    )
                if grounded:
                    if const != 0:
                        return False
                    for part, _ in pairs:
                        if not self._refine(part, False, overlay):
                            return False
            return True
        if op == "<>":
            for one, other_iv in ((a, ib), (b, ia)):
                if not other_iv.is_const():
                    continue
                pinned = other_iv.lo
                with self.refined(overlay):
                    current = self.interval(one)
                lo, hi = current.lo, current.hi
                if lo == pinned and hi == pinned:
                    return False
                if lo == pinned:
                    lo = pinned + 1
                elif hi == pinned:
                    hi = pinned - 1
                else:
                    continue
                if not self._narrow(one, Interval(lo, hi), overlay):
                    return False
            return True
        if op == "<":
            upper = Interval(None, ib.hi - 1) if ib.hi is not None else Interval.top()
            lower = Interval(ia.lo + 1, None) if ia.lo is not None else Interval.top()
        elif op == "<=":
            upper = Interval(None, ib.hi) if ib.hi is not None else Interval.top()
            lower = Interval(ia.lo, None) if ia.lo is not None else Interval.top()
        elif op == ">":
            return self._refine_cmp("<", b, a, overlay)
        elif op == ">=":
            return self._refine_cmp("<=", b, a, overlay)
        else:  # pragma: no cover - parser limits the operator set
            raise Unsupported(f"cannot refine comparison {op!r}")
        return self._narrow(a, upper, overlay) and self._narrow(b, lower, overlay)

    @contextmanager
    def refined(self, overlay: Dict[Term, Interval]) -> Iterator[None]:
        """Apply a refinement overlay for the duration of a block."""
        self._refinements.append(overlay)
        try:
            yield
        finally:
            self._refinements.pop()

    @contextmanager
    def refinement_scope(self) -> Iterator[None]:
        """Pop every refinement pushed inside the block on exit."""
        depth = len(self._refinements)
        try:
            yield
        finally:
            del self._refinements[depth:]

    def push_refinement(self, overlay: Dict[Term, Interval]) -> None:
        """Add an ambient refinement (scoped by ``refinement_scope``)."""
        self._refinements.append(overlay)


# ---------------------------------------------------------------------------
# canonical serialization


def term_key(
    term: Term,
    rename: Optional[Dict[int, int]] = None,
    memo: Optional[Dict[Term, str]] = None,
) -> str:
    """A canonical string for ``term``.

    ``rename`` maps loop serials to dense indices in first-appearance
    order, so two summaries built from alpha-equivalent loop bodies —
    whose slots were interned under different serials — serialize
    identically.  Share one ``rename``/``memo`` pair across all keys
    that go into one digest.
    """
    if rename is None:
        rename = {}
    if memo is None:
        memo = {}
    return _serialize(term, rename, memo)


def _serialize(term: Term, rename: Dict[int, int], memo: Dict[Term, str]) -> str:
    hit = memo.get(term)
    if hit is not None:
        return hit
    kind = term.kind
    if kind == "const":
        text = "c%d" % term.args[0]
    elif kind == "var":
        text = "v(%s)" % term.args[0]
    elif kind == "memvar":
        text = "(mem %s)" % term.args[0]
    elif kind == "slot":
        serial, index = term.args
        canon = rename.setdefault(serial, len(rename))
        text = "s%d:%s" % (canon, index)
    elif kind == "sum":
        const, pairs = term.args
        text = "(+ %d %s)" % (
            const,
            " ".join(
                "(%d %s)" % (coeff, _serialize(part, rename, memo))
                for part, coeff in pairs
            ),
        )
    elif kind == "mul":
        a, b = term.args
        text = "(* %s %s)" % (
            _serialize(a, rename, memo),
            _serialize(b, rename, memo),
        )
    elif kind == "cmp":
        op, a, b = term.args
        text = "(%s %s %s)" % (
            op,
            _serialize(a, rename, memo),
            _serialize(b, rename, memo),
        )
    elif kind == "ite":
        cond, then, els = term.args
        text = "(ite %s %s %s)" % (
            _serialize(cond, rename, memo),
            _serialize(then, rename, memo),
            _serialize(els, rename, memo),
        )
    elif kind == "trunc":
        text = "(t%d %s)" % (term.args[0], _serialize(term.args[1], rename, memo))
    elif kind == "store":
        mem, addr, value = term.args
        text = "(st %s %s %s)" % (
            _serialize(mem, rename, memo),
            _serialize(addr, rename, memo),
            _serialize(value, rename, memo),
        )
    elif kind == "select":
        mem, addr = term.args
        text = "(sel %s %s)" % (
            _serialize(mem, rename, memo),
            _serialize(addr, rename, memo),
        )
    elif kind == "loop":
        digest, index = term.args[0], term.args[1]
        text = "(loop %s %s %s)" % (
            digest,
            index,
            " ".join(_serialize(arg, rename, memo) for arg in term.args[2:]),
        )
    else:  # pragma: no cover - exhaustive over the builder's kinds
        raise Unsupported(f"cannot serialize term kind {kind!r}")
    memo[term] = text
    return text


def digest_keys(keys: List[str]) -> str:
    """SHA-256 over an ordered list of canonical keys."""
    payload = "\x1f".join(keys).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# concrete evaluation (tests and counterexample triage)


def evaluate(
    term: Term,
    inputs: Mapping[str, int],
    memory: Optional[Mapping[int, int]] = None,
) -> int:
    """Concretely evaluate a loop-free term.

    ``inputs`` maps free-variable names to values; ``memory`` backs the
    initial memory array.  Loop summaries and slots have no concrete
    reading here — callers replay those through a real engine instead.
    """
    memory = memory or {}
    memo: Dict[Term, object] = {}

    def run(t: Term):
        hit = memo.get(t)
        if hit is not None:
            return hit
        kind = t.kind
        if kind == "const":
            result: object = t.args[0]
        elif kind == "var":
            result = int(inputs.get(t.args[0], 0))
        elif kind == "memvar":
            result = dict(memory)
        elif kind == "sum":
            const, pairs = t.args
            result = const + sum(coeff * run(part) for part, coeff in pairs)
        elif kind == "mul":
            result = run(t.args[0]) * run(t.args[1])
        elif kind == "cmp":
            from ..semantics.values import apply_binop

            result = apply_binop(t.args[0], run(t.args[1]), run(t.args[2]))
        elif kind == "ite":
            result = run(t.args[1]) if run(t.args[0]) != 0 else run(t.args[2])
        elif kind == "trunc":
            result = run(t.args[1]) & ((1 << t.args[0]) - 1)
        elif kind == "store":
            image = dict(run(t.args[0]))
            image[run(t.args[1])] = run(t.args[2]) & 0xFF
            result = image
        elif kind == "select":
            result = run(t.args[0]).get(run(t.args[1]), 0)
        else:
            raise Unsupported(f"cannot evaluate term kind {kind!r}")
        memo[t] = result
        return result

    return run(term)
