"""The binding equivalence prover: proved / refuted / unknown.

:func:`prove_binding` symbolically executes a binding's two final
descriptions — operator and augmented instruction — over one shared
:class:`~repro.symbolic.terms.TermBuilder`, with every operand a free
variable bounded by the scenario spec's drawing range clipped into the
binding's operand range constraints (exactly the domain differential
trials actually sample).  Because both sides share one intern table and
the same input variables, *semantic* equality modulo the rewrite system
collapses to *pointer* equality of the result terms:

``proved``
    every output term and the final memory term are identical objects.
    No sampled trial over the spec's domain can ever disagree, so the
    verifier's confirmation window can shrink (see
    :func:`repro.analysis.verify.verify_binding`'s fast path).
``refuted``
    the terms differ *and* a concrete scenario was found on which the
    two descriptions disagree.  The scenario is extracted by a directed
    search (stream prefix plus operand boundary probes) and validated
    by replaying it as an ordinary differential trial — so the failure
    a caller reports is byte-identical to what sampling would have
    found, on every execution engine.
``unknown``
    symbolic execution hit a budget or an unsupported construct, or
    the terms differ but no disagreeing scenario was found (the term
    gap was a normalization incompleteness, not a semantic bug).
    Callers fall back to differential sampling unchanged.

Reports are cached per ``(code epoch, binding digest, spec, seed,
budgets)`` — the same content key discipline as the provenance store —
so pooled batch shards prove each binding once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..analysis.binding import Binding, binding_digest
from ..lint.intervals import Interval
from ..provenance import code_epoch
from ..semantics.randomgen import (
    Scenario,
    ScenarioSpec,
    ScenarioStream,
    _with_length,
)
from .executor import SymbolicExecutor
from .terms import SymbolicError, Term, TermBuilder

__all__ = [
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "VERDICTS",
    "ProveReport",
    "clear_prove_cache",
    "prove_binding",
    "replay_counterexample",
]

PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"
#: all prover verdicts, in decreasing order of strength.
VERDICTS = (PROVED, REFUTED, UNKNOWN)

#: default term-node budget for one proof attempt.
DEFAULT_MAX_NODES = 200_000
#: default concrete-unroll budget per loop.
DEFAULT_UNROLL_BUDGET = 64
#: default symbolic statement budget per description.
DEFAULT_MAX_STMTS = 20_000
#: scenario-stream prefix scanned during counterexample search.
SEARCH_TRIALS = 48


@dataclass(frozen=True)
class ProveReport:
    """Outcome of one symbolic equivalence proof attempt."""

    verdict: str
    operator_name: str
    instruction_name: str
    #: why the verdict is not ``proved`` (budget, unsupported construct,
    #: or which observable diverged).
    reason: str = ""
    #: term nodes interned by the attempt (both sides share the table).
    term_nodes: int = 0
    #: deepest concrete loop unroll across both sides.
    unroll_depth: int = 0
    #: the disagreeing machine state (``refuted`` only).
    counterexample: Optional[Scenario] = None
    #: stream index of the counterexample, or ``None`` when it came
    #: from a boundary probe rather than the plain trial stream.
    counterexample_index: Optional[int] = None
    #: the differential trial's failure message (``refuted`` only) —
    #: engine-independent by construction.
    message: str = ""

    def __str__(self) -> str:
        base = (
            f"{self.verdict}: {self.operator_name} vs "
            f"{self.instruction_name}"
        )
        if self.verdict == PROVED:
            return base + f" ({self.term_nodes} term nodes)"
        if self.verdict == REFUTED:
            return base + f" — {self.message}"
        return base + (f" — {self.reason}" if self.reason else "")


# ---------------------------------------------------------------------------
# input domain

def _spec_bounds(spec: ScenarioSpec, name: str) -> Tuple[int, int]:
    """The inclusive drawing range of one operand, from the generator's
    own layout rules (see :mod:`repro.semantics.randomgen`)."""
    operand = spec.operands[name]
    role = operand.role
    if role == "address":
        naddr = sum(
            1 for other in spec.operands.values() if other.role == "address"
        )
        lo = 14 if spec.allow_overlap else 16
        hi = 16 + (naddr - 1) * spec.arena_stride + (
            2 if spec.allow_overlap else 0
        )
        return lo, hi
    if role == "length":
        return 0, spec.max_length
    if role == "char":
        return 0, 255
    if role == "range":
        return operand.lo, operand.hi
    if role == "fixed":
        return operand.lo, operand.lo
    raise SymbolicError(f"unknown operand role {role!r}")


def _input_terms(
    builder: TermBuilder, binding: Binding, spec: ScenarioSpec
) -> Dict[str, Term]:
    """One term per operand: the spec's drawing range clipped into the
    binding's operand range constraint (mirroring
    ``verify._clip_to_ranges``, which clamps each drawn value)."""
    ranges = {
        constraint.operand: (constraint.lo, constraint.hi)
        for constraint in binding.range_constraints()
        if constraint.is_operand
    }
    env: Dict[str, Term] = {}
    for name in sorted(spec.operands):
        lo, hi = _spec_bounds(spec, name)
        if name in ranges:
            clip_lo, clip_hi = ranges[name]
            lo = max(clip_lo, min(clip_hi, lo))
            hi = max(clip_lo, min(clip_hi, hi))
        if lo == hi:
            env[name] = builder.const(lo)
        else:
            env[name] = builder.var(name, Interval(lo, hi))
    return env


# ---------------------------------------------------------------------------
# counterexample search

def _boundary_scenarios(
    spec: ScenarioSpec, base: Scenario
) -> List[Scenario]:
    """Operand-boundary probes derived from one drawn scenario."""
    probes: List[Scenario] = []
    for length in sorted({0, 1, spec.max_length}):
        probes.append(_with_length(spec, base, length))
    for name in sorted(spec.operands):
        operand = spec.operands[name]
        if operand.role not in ("range", "char"):
            continue
        lo, hi = _spec_bounds(spec, name)
        for value in (lo, hi):
            inputs = dict(base.inputs)
            inputs[name] = value
            probes.append(Scenario(inputs=inputs, memory=base.memory))
    return probes


def _search_counterexample(
    binding: Binding,
    spec: ScenarioSpec,
    seed: int,
    search_trials: int,
):
    """Find a concrete disagreeing scenario, validated by replay.

    Scans the same scenario stream sampling would use (so a refutation
    surfaces the state trial ``i`` would have hit), then probes operand
    boundaries.  Returns ``(index_or_None, scenario, failure)`` or
    ``None``.
    """
    from ..analysis.verify import VerificationFailure, differential_trial

    stream = ScenarioStream(spec, seed)
    candidates: List[Tuple[Optional[int], Scenario]] = [
        (index, scenario)
        for index, scenario in enumerate(stream.window(0, search_trials))
    ]
    if candidates:
        base = candidates[min(2, len(candidates) - 1)][1]
        candidates.extend(
            (None, probe) for probe in _boundary_scenarios(spec, base)
        )
    for index, scenario in candidates:
        try:
            differential_trial(binding, scenario)
        except VerificationFailure as failure:
            return index, scenario, failure
    return None


def replay_counterexample(
    binding: Binding, scenario: Scenario, engine=None
) -> None:
    """Replay a refutation as one ordinary differential trial.

    Raises the identical :class:`~repro.analysis.verify.VerificationFailure`
    (type, message, attached scenario) the sampling loop would raise on
    that state, through whichever execution engine the caller picks —
    failure reports stay engine-independent.
    """
    from ..analysis.verify import differential_trial

    differential_trial(binding, scenario, engine=engine)


# ---------------------------------------------------------------------------
# the prover

_PROVE_CACHE: Dict[tuple, ProveReport] = {}


def clear_prove_cache() -> None:
    """Forget all cached proof reports (tests and benchmarks)."""
    _PROVE_CACHE.clear()


def _spec_key(spec: ScenarioSpec) -> tuple:
    return (
        tuple(
            (name, operand.role, operand.lo, operand.hi)
            for name, operand in sorted(spec.operands.items())
        ),
        spec.max_length,
        spec.arena_stride,
        spec.allow_overlap,
    )


def _mismatch_reason(op_result, in_result) -> str:
    if len(op_result.outputs) != len(in_result.outputs):
        return (
            "symbolic output counts differ: operator emits "
            f"{len(op_result.outputs)}, instruction "
            f"{len(in_result.outputs)}"
        )
    differing = [
        position
        for position, (a, b) in enumerate(
            zip(op_result.outputs, in_result.outputs)
        )
        if a is not b
    ]
    if differing:
        return f"symbolic output terms differ at positions {differing}"
    return "symbolic final memory terms differ"


def prove_binding(
    binding: Binding,
    spec: ScenarioSpec,
    *,
    seed: int = 1982,
    max_nodes: int = DEFAULT_MAX_NODES,
    unroll_budget: int = DEFAULT_UNROLL_BUDGET,
    max_stmts: int = DEFAULT_MAX_STMTS,
    search_trials: int = SEARCH_TRIALS,
) -> ProveReport:
    """Attempt a symbolic equivalence proof for one binding.

    Never raises on prover limitations — budget exhaustion and
    unsupported constructs become an ``unknown`` report, so every
    caller can fall back to sampling without special-casing.
    """
    key = (
        code_epoch(),
        binding_digest(binding),
        _spec_key(spec),
        seed,
        max_nodes,
        unroll_budget,
        max_stmts,
    )
    cached = _PROVE_CACHE.get(key)
    if cached is not None:
        return cached
    with obs.span("prove"):
        report = _prove_uncached(
            binding,
            spec,
            seed=seed,
            max_nodes=max_nodes,
            unroll_budget=unroll_budget,
            max_stmts=max_stmts,
            search_trials=search_trials,
        )
    _PROVE_CACHE[key] = report
    return report


def _prove_uncached(
    binding: Binding,
    spec: ScenarioSpec,
    *,
    seed: int,
    max_nodes: int,
    unroll_budget: int,
    max_stmts: int,
    search_trials: int,
) -> ProveReport:
    operator_desc = binding.final_operator
    instruction_desc = binding.augmented_instruction
    builder = TermBuilder(max_nodes=max_nodes)
    collect = obs.enabled()
    rename = binding.operand_map.get

    def finish(report: ProveReport, unrolls: int) -> ProveReport:
        if collect:
            obs.inc("repro_prove_verdicts_total", verdict=report.verdict)
            obs.observe("repro_prove_term_nodes", report.term_nodes)
            obs.observe("repro_prove_unroll_iterations", unrolls)
        return report

    operator_exec = SymbolicExecutor(
        operator_desc,
        builder,
        max_stmts=max_stmts,
        unroll_budget=unroll_budget,
    )
    instruction_exec = SymbolicExecutor(
        instruction_desc,
        builder,
        max_stmts=max_stmts,
        unroll_budget=unroll_budget,
    )
    try:
        env = _input_terms(builder, binding, spec)
        op_result = operator_exec.run(env)
        in_result = instruction_exec.run(
            {rename(name, name): term for name, term in env.items()}
        )
    except SymbolicError as exc:
        return finish(
            ProveReport(
                verdict=UNKNOWN,
                operator_name=operator_desc.name,
                instruction_name=instruction_desc.name,
                reason=str(exc),
                term_nodes=builder.node_count,
                unroll_depth=max(
                    operator_exec.max_unroll_depth,
                    instruction_exec.max_unroll_depth,
                ),
            ),
            operator_exec.unroll_iterations
            + instruction_exec.unroll_iterations,
        )
    unroll_depth = max(
        operator_exec.max_unroll_depth, instruction_exec.max_unroll_depth
    )
    unrolls = (
        operator_exec.unroll_iterations + instruction_exec.unroll_iterations
    )
    agree = (
        len(op_result.outputs) == len(in_result.outputs)
        and all(
            a is b for a, b in zip(op_result.outputs, in_result.outputs)
        )
        and op_result.memory is in_result.memory
    )
    if agree:
        return finish(
            ProveReport(
                verdict=PROVED,
                operator_name=operator_desc.name,
                instruction_name=instruction_desc.name,
                term_nodes=builder.node_count,
                unroll_depth=unroll_depth,
            ),
            unrolls,
        )
    reason = _mismatch_reason(op_result, in_result)
    found = _search_counterexample(binding, spec, seed, search_trials)
    if found is None:
        return finish(
            ProveReport(
                verdict=UNKNOWN,
                operator_name=operator_desc.name,
                instruction_name=instruction_desc.name,
                reason=reason + "; no disagreeing scenario found",
                term_nodes=builder.node_count,
                unroll_depth=unroll_depth,
            ),
            unrolls,
        )
    index, scenario, failure = found
    return finish(
        ProveReport(
            verdict=REFUTED,
            operator_name=operator_desc.name,
            instruction_name=instruction_desc.name,
            reason=reason,
            term_nodes=builder.node_count,
            unroll_depth=unroll_depth,
            counterexample=scenario,
            counterexample_index=index,
            message=str(failure),
        ),
        unrolls,
    )
