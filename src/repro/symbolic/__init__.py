"""Symbolic bit-vector equivalence proving for ISDL descriptions.

This package upgrades the reproduction's equivalence story from
"sampled and never disagreed" to "proved, refuted with a replaying
counterexample, or honestly unknown":

* :mod:`repro.symbolic.terms` — the width-tracked bit-vector term
  domain: hash-consed terms, a normalizing rewrite engine (linear
  sums, comparison canonicalization, truncation elimination driven by
  the lint interval domain, store/select simplification), and interval
  refinement for path conditions;
* :mod:`repro.symbolic.executor` — a bounded symbolic executor
  mirroring the reference interpreter's semantics, with branch merging
  via ``ite`` terms and loop handling by bounded unrolling plus
  regular-loop summarization into uninterpreted summary applications;
* :mod:`repro.symbolic.prover` — :func:`prove_binding`, which runs a
  binding's two final descriptions over shared input variables and
  compares the resulting terms; refutations are extracted as concrete
  scenarios and validated by replaying them through the ordinary
  differential-trial machinery.

See ``docs/symbolic.md`` for the term domain, budgets, and verdict
semantics, and DESIGN.md §10 for how the prover slots into the
lint → prove → sample verification pipeline.
"""

from .executor import SymbolicExecutor, SymResult
from .prover import (
    PROVED,
    REFUTED,
    UNKNOWN,
    VERDICTS,
    ProveReport,
    clear_prove_cache,
    prove_binding,
    replay_counterexample,
)
from .terms import (
    BudgetExceeded,
    SymbolicError,
    Term,
    TermBuilder,
    Unsupported,
    evaluate,
)

__all__ = [
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "VERDICTS",
    "BudgetExceeded",
    "ProveReport",
    "SymResult",
    "SymbolicError",
    "SymbolicExecutor",
    "Term",
    "TermBuilder",
    "Unsupported",
    "clear_prove_cache",
    "evaluate",
    "prove_binding",
    "replay_counterexample",
]
