"""EXTRA — Exotic Instruction Transformational Analysis System.

A full reproduction of Morgan & Rowe, *Analyzing Exotic Instructions
for a Retargetable Code Generator* (SIGPLAN Symposium on Compiler
Construction, 1982), as a Python library:

* :mod:`repro.isdl` — the ISPS-like description language,
* :mod:`repro.semantics` — executable semantics for descriptions,
* :mod:`repro.dataflow` — the analyses behind transformation guards,
* :mod:`repro.transform` — the transformation library and engine,
* :mod:`repro.analysis` — EXTRA proper: sessions, matcher, bindings,
  differential verification,
* :mod:`repro.machines` / :mod:`repro.languages` — instruction and
  operator descriptions, the Table 1 catalog, target simulators,
* :mod:`repro.analyses` — recorded scripts for every Table 2 row,
  the documented failures, and the §7 extension,
* :mod:`repro.codegen` — the retargetable code generator consuming the
  bindings (§6), with the constraint-satisfaction rewriting rules and
  optimizations.

Quick start::

    from repro.analyses import scasb_rigel
    outcome = scasb_rigel.run()
    print(outcome.binding.describe())

    from repro.codegen import target_for, ir
    target = target_for("i8086")
    asm = target.compile((ir.StringIndex(
        result="idx", base=ir.Param("s", 0, 65535),
        length=ir.Param("n", 0, 65535), char=ir.Param("c", 0, 255)),))
    print(asm.listing())
"""

from . import constraints, obs
from .analysis import (
    AnalysisInfo,
    AnalysisOutcome,
    AnalysisSession,
    Binding,
    BindingLibrary,
    MatchFailure,
    RunConfig,
    VerificationFailure,
    verify_binding,
)
from .constraints import (
    ComplexConstraint,
    LanguageFact,
    OffsetConstraint,
    RangeConstraint,
    UnsupportedConstraintError,
    ValueConstraint,
)
from .isdl import format_description, parse_description

# The typed facade re-imports from .analysis, so it must come after the
# imports above (it is the top of the dependency tower, not the bottom).
from . import api
from .api import analyze, batch, replay, stats, trace, verify

__version__ = "1.0.0"

__all__ = [
    "api",
    "constraints",
    "obs",
    "AnalysisInfo",
    "AnalysisOutcome",
    "AnalysisSession",
    "Binding",
    "BindingLibrary",
    "MatchFailure",
    "RunConfig",
    "VerificationFailure",
    "analyze",
    "batch",
    "replay",
    "stats",
    "trace",
    "verify",
    "verify_binding",
    "ComplexConstraint",
    "LanguageFact",
    "OffsetConstraint",
    "RangeConstraint",
    "UnsupportedConstraintError",
    "ValueConstraint",
    "format_description",
    "parse_description",
    "__version__",
]
