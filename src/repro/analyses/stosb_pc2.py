"""Intel 8086 ``stosb`` vs. PC2 ``blkclr`` — an extension row.

Not in the paper's Table 2, but squarely in its framework: ``rep
stosb`` fills memory with AL, and fixing ``al = 0`` (alongside the
usual ``df``/``rf`` fixes) turns it into exactly the runtime's
block-clear loop.  The same §2 simplification story as movc5/blkclr,
on the other machine.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pc2
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="stosb",
    language="PC2",
    operation="block clear",
    operator="block.clear",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pc2.blkclr
INSTRUCTION = i8086.stosb

SCENARIO = ScenarioSpec(
    operands={
        "count": OperandSpec("length"),
        "addr": OperandSpec("address"),
    }
)



def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # The register results are of no use to a block clear.
    instruction.apply("replace_epilogue", stmts=())
    # direction flag: low addresses to high.
    instruction.apply("fix_operand", operand="df", value=0)
    for _ in range(2):
        instruction.apply("propagate_constant", at=instruction.expr("df"))
    for _ in range(2):
        instruction.apply(
            "if_false",
            at=instruction.stmt(
                "if 0 then di <- di - 1; else di <- di + 1; end_if;"
            ),
        )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("df <- 0;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("df"))
    # repeat flag.
    instruction.apply("fix_operand", operand="rf", value=1)
    instruction.apply("propagate_constant", at=instruction.expr("rf"))
    instruction.apply("fold_constants", at=instruction.expr("not 1"))
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            """
            if 0 then
                Mb[ di ] <- al;
                di <- di + 1;
            else
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    Mb[ di ] <- al;
                    di <- di + 1;
                end_repeat;
            end_if;
            """
        ),
    )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("rf <- 1;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rf"))
    # fill character zero: the store loop becomes a clear loop.
    instruction.apply("fix_operand", operand="al", value=0)
    instruction.apply("propagate_constant", at=instruction.expr("al"))
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("al <- 0;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("al"))
    # stosb's remaining operands are (cx, di); blkclr's are (count, addr)
    # in the same roles — but blkclr clears then advances, where stosb
    # counts down first: align the loop bodies.
    operator.apply("reorder_inputs", order=("count", "addr"))
    operator.apply(
        "swap_statements", at=operator.stmt("addr <- addr + 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Mb[ addr ] <- 0;")
    )


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
