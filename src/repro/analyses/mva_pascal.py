"""Burroughs B4800 ``mva`` vs. Pascal string assignment — footnote 5.

"This type of encoding is not unique to the IBM 370, but also occurs on
at least one other machine (the Burroughs B4800)" (paper §4.2,
footnote 5).  The B4800's move-alphanumeric carries the same
length-code-minus-one field as mvc, and the *same analysis script
shape* discharges it: introduce the coding constraint, cancel it
against the built-in ``+1``, range-constrain the length to [1, 256],
and rotate Pascal's pre-test loop under the resulting assertion.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.b4800 import descriptions as b4800
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis
from .mvc_pascal import transform_sassign

INFO = AnalysisInfo(
    machine="Burroughs B4800",
    instruction="mva",
    language="Pascal",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sassign
INSTRUCTION = b4800.mva

SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)



def integrate_coding_constraint(session: AnalysisSession) -> None:
    """The same §4.2 mechanism, on the other machine's field."""
    instruction = session.instruction
    instruction.apply("introduce_coding_constraint", operand="len", offset=-1)
    instruction.apply(
        "combine_increments", at=instruction.stmt("len <- len - 1;")
    )
    instruction.apply("add_zero", at=instruction.expr("len + 0"))
    instruction.apply("remove_self_assign", at=instruction.stmt("len <- len;"))


def script(session: AnalysisSession) -> None:
    integrate_coding_constraint(session)
    transform_sassign(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
