"""Data General Eclipse ``cmv`` vs. Pascal string move — the §5 failure.

The Eclipse encodes each string's processing *direction in the sign of
its length operand*: "the length operand is now used for two unrelated
purposes and it is difficult to formulate transformations to separate
the two functions.  … Instructions that use a clever coding trick make
analysis difficult or impossible" (paper §5).

A forward-only Pascal move needs the ``ac0 > 32767`` / ``ac1 > 32767``
sign tests resolved to false.  A range constraint *could* bound the
lengths to the positive half — but no transformation in the library
(nor in EXTRA's) can simplify a comparison from a range assertion:
``if_false`` demands a constant condition, constant propagation has no
constant to propagate.  The attempt below fails on exactly that guard.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.eclipse import descriptions as eclipse
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="DG Eclipse",
    instruction="cmv",
    language="Pascal",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sassign
INSTRUCTION = eclipse.cmv

SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    instruction.apply("replace_epilogue", stmts=())
    # Constrain the destination length to the non-negative half so the
    # instruction would only move forward...
    instruction.apply(
        "assert_operand_range", operand="ac0", lo=0, hi=32767
    )
    # ...but no transformation can discharge the sign test from a range
    # assertion: the direction and the count live in one operand.  This
    # application fails — the condition is not a constant.
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            """
            if (ac0 > 32767) then
                ac2 <- ac2 - 1;
                ac0 <- ac0 + 1;
            else
                ac2 <- ac2 + 1;
                ac0 <- ac0 - 1;
            end_if;
            """
        ),
    )


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
