"""IBM 370 ``tr`` vs. a Pascal translate kernel — an extension row.

``tr`` is the 370's table-translate: each byte of the first operand is
replaced by the table byte it indexes.  It shares the
length-code-minus-one field with mvc/clc, so the analysis reuses the
whole §4.2 pipeline (coding constraint, [1, 256] range, loop rotation)
plus the moving-pointer absorption — with the twist that the cursor
appears in *two* nested memory expressions (`Mb[S+i]` as both the
target and the table index), which the absorption handles because both
are instances of the same ``S + i`` pattern.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.ibm370 import descriptions as ibm370
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="IBM 370",
    instruction="tr",
    language="Pascal",
    operation="string translate",
    operator="string.translate",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.translate
INSTRUCTION = ibm370.tr

SCENARIO = ScenarioSpec(
    operands={
        "S": OperandSpec("address"),
        "T": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)



def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # The §4.2 coding-constraint pipeline, verbatim.
    instruction.apply("introduce_coding_constraint", operand="len", offset=-1)
    instruction.apply(
        "combine_increments", at=instruction.stmt("len <- len - 1;")
    )
    instruction.apply("add_zero", at=instruction.expr("len + 0"))
    instruction.apply("remove_self_assign", at=instruction.stmt("len <- len;"))
    # Count down, rotate under Len >= 1, absorb the cursor.
    operator.apply("countup_to_countdown", var="i", limit="Len")
    operator.apply("assert_operand_range", operand="Len", lo=1, hi=256)
    operator.apply(
        "derive_assertion", at=operator.stmt("assert (Len >= 1);"), value=0
    )
    operator.apply(
        "swap_statements", at=operator.stmt("assert (not (Len = 0));")
    )
    operator.apply(
        "rotate_pretest_to_posttest",
        at=operator.stmt(
            """
            repeat
                exit_when (Len = 0);
                Mb[ S + i ] <- Mb[ T + Mb[ S + i ] ];
                i <- i + 1;
                Len <- Len - 1;
            end_repeat;
            """
        ),
    )
    operator.apply("absorb_index_into_base", var="i", base="S", saved="s0")
    operator.apply("eliminate_dead_variable", at=operator.decl("s0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
