"""Recorded analysis scripts — one per Table 2 row, plus the failures.

Each module plays the role of the paper's interactive user: a recorded
sequence of transformation steps driving an
:class:`~repro.analysis.AnalysisSession` to a common form.  The engine
validates every step's guards, the matcher proves the final forms
identical modulo renaming, and the differential verifier executes both
descriptions on randomized machine states.

``TABLE2`` lists the eleven successful analyses in the paper's Table 2
order; ``FAILURES`` the two documented failures (§4.3 movc3/sassign and
§5 Eclipse); ``EXTENSIONS`` the §7 language-fact extension and the §1
B4800 list-search example.
"""

from . import (
    clc_pascal,
    cmpc3_pascal,
    cmpsb_pascal,
    eclipse_failure,
    mva_pascal,
    locc_clu,
    locc_rigel,
    movc3_pc2,
    movc3_sassign_extension,
    movc3_sassign_failure,
    movc5_pc2,
    movsb_pascal,
    movsb_pl1,
    mvc_pascal,
    scasb_clu,
    scasb_rigel,
    skpc_pl1,
    srl_listsearch,
    stosb_pc2,
    tr_pascal,
)

#: the eleven Table 2 rows, in the paper's order.
TABLE2 = (
    movsb_pascal,
    movsb_pl1,
    scasb_rigel,
    scasb_clu,
    cmpsb_pascal,
    movc3_pc2,
    movc5_pc2,
    locc_rigel,
    locc_clu,
    cmpc3_pascal,
    mvc_pascal,
)

#: the paper's documented failures.
FAILURES = (
    movc3_sassign_failure,
    eclipse_failure,
)

#: beyond Table 2: the §7 extension and the §1 B4800 example.
EXTENSIONS = (
    movc3_sassign_extension,
    srl_listsearch,
    stosb_pc2,
    mva_pascal,
    clc_pascal,
    skpc_pl1,
    tr_pascal,
)


def run_table2(verify: bool = True, trials: int = 120):
    """Run every Table 2 analysis; returns the outcomes in order."""
    return [module.run(verify=verify, trials=trials) for module in TABLE2]


def run_failures():
    """Run the two documented failure attempts."""
    return [module.run() for module in FAILURES]
