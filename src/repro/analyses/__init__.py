"""Recorded analysis scripts — one per Table 2 row, plus the failures.

Each module plays the role of the paper's interactive user: a recorded
sequence of transformation steps driving an
:class:`~repro.analysis.AnalysisSession` to a common form.  The engine
validates every step's guards, the matcher proves the final forms
identical modulo renaming, and the differential verifier executes both
descriptions on randomized machine states.

The per-row *metadata* — the paper's step count for Table 2, the
IR-field routing map the code generator needs, and which machine
library a binding belongs to — lives here, in one declarative
:data:`REGISTRY` of :class:`AnalysisSpec` entries.  The batch runner's
catalog, the code generator's binding database, and the ``table2``
report all read the registry; the historical module-level
``FIELD_MAP`` / ``PAPER_STEPS`` names are injected back into each
module as thin aliases for compatibility.

``TABLE2`` lists the eleven successful analyses in the paper's Table 2
order; ``FAILURES`` the two documented failures (§4.3 movc3/sassign and
§5 Eclipse); ``EXTENSIONS`` the §7 language-fact extension and the §1
B4800 list-search example.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Dict, Mapping, Optional, Tuple

from . import (
    clc_pascal,
    cmpc3_pascal,
    cmpsb_pascal,
    eclipse_failure,
    mva_pascal,
    locc_clu,
    locc_rigel,
    movc3_pc2,
    movc3_sassign_extension,
    movc3_sassign_failure,
    movc5_pc2,
    movsb_pascal,
    movsb_pl1,
    mvc_pascal,
    scasb_clu,
    scasb_rigel,
    skpc_pl1,
    srl_listsearch,
    stosb_pc2,
    tr_pascal,
)


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis module's declarative metadata.

    ``paper_steps`` is the step count the 1982 implementation reported
    in Table 2 (None off-table); ``field_map`` routes IR operand fields
    to operator operand names for the code generator; ``codegen``
    names the machine library the binding joins (None keeps it out of
    every compiler repertoire — failures, and rows the paper analyzed
    without shipping).  ``codegen_extension`` marks the §7 extension
    binding that only enters its library on request.
    """

    name: str
    group: str  # "table2" | "failures" | "extensions"
    module: ModuleType
    paper_steps: Optional[int] = None
    field_map: Optional[Mapping[str, str]] = None
    codegen: Optional[str] = None
    codegen_extension: bool = False

    @property
    def expect_failure(self) -> bool:
        return self.group == "failures"


#: Every analysis, in catalog order: the eleven Table 2 rows in the
#: paper's order, then the documented failures, then the extensions.
REGISTRY: Tuple[AnalysisSpec, ...] = (
    AnalysisSpec(
        name="movsb_pascal", group="table2", module=movsb_pascal,
        paper_steps=52, codegen="i8086",
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="movsb_pl1", group="table2", module=movsb_pl1,
        paper_steps=66,
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="scasb_rigel", group="table2", module=scasb_rigel,
        paper_steps=73, codegen="i8086",
        field_map=dict({"base": "Src.Base", "length": "Src.Length", "char": "ch"}),
    ),
    AnalysisSpec(
        name="scasb_clu", group="table2", module=scasb_clu,
        paper_steps=86,
        field_map=dict({"base": "S.Base", "length": "S.Limit", "char": "c"}),
    ),
    AnalysisSpec(
        name="cmpsb_pascal", group="table2", module=cmpsb_pascal,
        paper_steps=79, codegen="i8086",
        field_map=dict({"a": "A.Base", "b": "B.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="movc3_pc2", group="table2", module=movc3_pc2,
        paper_steps=21, codegen="vax11",
        field_map=dict({"src": "from", "dst": "to", "length": "count"}),
    ),
    AnalysisSpec(
        name="movc5_pc2", group="table2", module=movc5_pc2,
        paper_steps=26, codegen="vax11",
        field_map=dict({"dst": "addr", "length": "count"}),
    ),
    AnalysisSpec(
        name="locc_rigel", group="table2", module=locc_rigel,
        paper_steps=33, codegen="vax11",
        field_map=dict({"base": "Src.Base", "length": "Src.Length", "char": "ch"}),
    ),
    AnalysisSpec(
        name="locc_clu", group="table2", module=locc_clu,
        paper_steps=32,
        field_map=dict({"base": "S.Base", "length": "S.Limit", "char": "c"}),
    ),
    AnalysisSpec(
        name="cmpc3_pascal", group="table2", module=cmpc3_pascal,
        paper_steps=47, codegen="vax11",
        field_map=dict({"a": "A.Base", "b": "B.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="mvc_pascal", group="table2", module=mvc_pascal,
        paper_steps=105, codegen="ibm370",
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="movc3_sassign_failure", group="failures",
        module=movc3_sassign_failure,
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="eclipse_failure", group="failures", module=eclipse_failure,
    ),
    AnalysisSpec(
        name="movc3_sassign_extension", group="extensions",
        module=movc3_sassign_extension,
        codegen="vax11", codegen_extension=True,
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="srl_listsearch", group="extensions", module=srl_listsearch,
        codegen="b4800",
        field_map=dict({
            "head": "Head", "key": "Key",
            "key_offset": "KeyOff", "link_offset": "LinkOff",
        }),
    ),
    AnalysisSpec(
        name="stosb_pc2", group="extensions", module=stosb_pc2,
        codegen="i8086",
        field_map=dict({"dst": "addr", "length": "count"}),
    ),
    AnalysisSpec(
        name="mva_pascal", group="extensions", module=mva_pascal,
        codegen="b4800",
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="clc_pascal", group="extensions", module=clc_pascal,
        codegen="ibm370",
        field_map=dict({"a": "A.Base", "b": "B.Base", "length": "Len"}),
    ),
    AnalysisSpec(
        name="skpc_pl1", group="extensions", module=skpc_pl1,
        field_map=dict({"char": "C", "length": "Max", "base": "S"}),
    ),
    AnalysisSpec(
        name="tr_pascal", group="extensions", module=tr_pascal,
        codegen="ibm370",
        field_map=dict({"src": "Src.Base", "dst": "Dst.Base", "length": "Len"}),
    ),
)

_BY_NAME: Dict[str, AnalysisSpec] = {spec.name: spec for spec in REGISTRY}


def spec_for(name: str) -> AnalysisSpec:
    """The registry entry for one analysis name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown analysis {name!r}; known: "
            + ", ".join(spec.name for spec in REGISTRY)
        )


def codegen_specs(machine: str, extensions: bool = False) -> Tuple[AnalysisSpec, ...]:
    """Registry entries whose bindings join ``machine``'s library."""
    return tuple(
        spec
        for spec in REGISTRY
        if spec.codegen == machine
        and (extensions or not spec.codegen_extension)
    )


def _group(name: str) -> Tuple[ModuleType, ...]:
    return tuple(spec.module for spec in REGISTRY if spec.group == name)


# Compatibility aliases: each module keeps its historical FIELD_MAP /
# PAPER_STEPS names, now sourced from the registry above.
for _spec in REGISTRY:
    if _spec.field_map is not None:
        _spec.module.FIELD_MAP = dict(_spec.field_map)
    if _spec.paper_steps is not None:
        _spec.module.PAPER_STEPS = _spec.paper_steps
del _spec

#: the eleven Table 2 rows, in the paper's order.
TABLE2 = _group("table2")

#: the paper's documented failures.
FAILURES = _group("failures")

#: beyond Table 2: the §7 extension and the §1 B4800 example.
EXTENSIONS = _group("extensions")


def run_table2(verify: bool = True, trials: int = 120):
    """Run every Table 2 analysis; returns the outcomes in order."""
    return [module.run(verify=verify, trials=trials) for module in TABLE2]


def run_failures():
    """Run the two documented failure attempts."""
    return [module.run() for module in FAILURES]
