"""IBM 370 ``clc`` vs. Pascal string comparison — an extension row.

``clc`` carries the same length-code-minus-one field as ``mvc``, so the
§4.2 coding-constraint machinery discharges it the same way; the
remaining work is rotating Pascal's pre-test compare loop into clc's
do-while under the ``Len >= 1`` assertion, after which the operator's
``eq <- 1`` initialization is dead (the loop always compares at least
one byte) and vanishes — mirroring how the hardware has no Z preset.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.ibm370 import descriptions as ibm370
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="IBM 370",
    instruction="clc",
    language="Pascal",
    operation="string compare",
    operator="string.equal",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sequal
INSTRUCTION = ibm370.clc

SCENARIO = ScenarioSpec(
    operands={
        "A.Base": OperandSpec("address"),
        "B.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)



def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # The coding constraint cancels against the built-in +1 (as in mvc).
    instruction.apply("introduce_coding_constraint", operand="len", offset=-1)
    instruction.apply(
        "combine_increments", at=instruction.stmt("len <- len - 1;")
    )
    instruction.apply("add_zero", at=instruction.expr("len + 0"))
    instruction.apply("remove_self_assign", at=instruction.stmt("len <- len;"))
    # Subtract-and-test comparison on the operator side.
    operator.apply(
        "eq_to_sub_zero", at=operator.expr("Mb[ A.Base ] = Mb[ B.Base ]")
    )
    # Length in [1, 256]; under Len >= 1 the pre-test loop rotates into
    # clc's do-while.
    operator.apply("assert_operand_range", operand="Len", lo=1, hi=256)
    operator.apply(
        "derive_assertion", at=operator.stmt("assert (Len >= 1);"), value=0
    )
    operator.apply(
        "swap_statements", at=operator.stmt("assert (not (Len = 0));")
    )
    operator.apply(
        "rotate_pretest_to_posttest",
        at=operator.stmt(
            """
            repeat
                exit_when (Len = 0);
                eq <- ((Mb[ A.Base ] - Mb[ B.Base ]) = 0);
                exit_when (not eq);
                A.Base <- A.Base + 1;
                B.Base <- B.Base + 1;
                Len <- Len - 1;
            end_repeat;
            """
        ),
    )
    # The loop now always compares at least one byte: the preset dies.
    operator.apply("eliminate_dead_assignment", at=operator.stmt("eq <- 1;"))


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
