"""VAX-11 ``locc`` vs. CLU ``string$indexc``.

CLU's cursor loop peeks at elements without advancing (``elem()``) and
only then bumps the cursor — the *same* test-then-advance protocol locc
implements, so unlike the Rigel analysis no increment/exit interchange
is needed; the cursor is reversed into locc's countdown instead
(``countup_to_countdown``).  The paper's step counts agree with that
relative ease: 32 for CLU vs. 33 for Rigel.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import clu
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis
from .locc_rigel import augment_locc

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="locc",
    language="CLU",
    operation="string search",
    operator="string.index",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = clu.indexc
INSTRUCTION = vax11.locc


SCENARIO = ScenarioSpec(
    operands={
        "S.Base": OperandSpec("address"),
        "S.Limit": OperandSpec("length"),
        "c": OperandSpec("char"),
    }
)


def transform_indexc(session: AnalysisSession) -> None:
    operator = session.operator
    # CLU's operand order (c, S.Limit, S.Base) already matches locc's
    # (char, len, addr); only the working copies are needed.
    operator.apply("copy_operand_to_register", operand="S.Base", new="ptr")
    operator.apply("copy_operand_to_register", operand="S.Limit", new="cnt")
    # Reverse the cursor into the machine's countdown.
    operator.apply("countup_to_countdown", var="i", limit="cnt")
    # Subtract-and-test comparison, explicit exit flag.
    operator.apply("eq_to_sub_zero", at=operator.expr("c = elem()"))
    operator.apply(
        "materialize_exit_flag",
        at=operator.stmt("exit_when ((c - elem()) = 0);"),
        flag="found",
    )
    # Moving-pointer addressing; the cursor's standalone read in the
    # epilogue becomes (ptr - origin), matching locc's augment.
    operator.apply(
        "absorb_index_into_base", var="i", base="ptr", saved="origin"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))
    # Inline elem(): locc reads memory directly.
    operator.apply("hoist_call", at=operator.expr("elem()"), temp="tch")
    operator.apply("inline_call", at=operator.stmt("tch <- elem();"), temp="ev")
    operator.apply("retarget_assignment", at=operator.stmt("tch <- ev;"))
    operator.apply("remove_unused_routine", at=operator.routine_decl("elem"))
    operator.apply("eliminate_dead_variable", at=operator.decl("ev"))
    operator.apply("forward_substitute", at=operator.expr("tch"))
    operator.apply("eliminate_dead_variable", at=operator.decl("tch"))
    # Flag-based discriminator.
    operator.apply(
        "exit_discriminator_to_flag",
        at=operator.stmt(
            """
            if cnt = 0 then
                output (0);
            else
                output ((ptr - origin) + 1);
            end_if;
            """
        ),
    )
    operator.apply(
        "reverse_conditional",
        at=operator.stmt(
            """
            if not found then
                output (0);
            else
                output ((ptr - origin) + 1);
            end_if;
            """
        ),
    )


def script(session: AnalysisSession) -> None:
    augment_locc(session)
    transform_indexc(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
