"""IBM 370 ``mvc`` vs. Pascal string assignment — the §4.2 example.

The 370's quirk: the 8-bit length field encodes *count minus one*
("a length value of zero means that one character is to be moved").
The analysis introduces a **coding constraint** — a directive that the
compiler decrement the operator's length before loading the field — and
the compensating decrement, now part of the description, cancels
against the instruction's built-in ``+1`` iteration count.

The length is further range-constrained to [1, 256]: a zero-length
Pascal move has no mvc encoding (the wrapped field would move 256
bytes), and 256 works precisely *because* the 8-bit adjustment wraps.
Under the resulting ``Len >= 1`` assertion, Pascal's pre-test copy loop
legally rotates into mvc's post-test (do-while) form.

This was the paper's longest analysis (105 steps) and is the longest
here.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.ibm370 import descriptions as ibm370
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="IBM 370",
    instruction="mvc",
    language="Pascal",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sassign
INSTRUCTION = ibm370.mvc


SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def integrate_coding_constraint(session: AnalysisSession) -> None:
    """§4.2: offset the length operand, integrate, cancel the +1."""
    instruction = session.instruction
    instruction.apply(
        "introduce_coding_constraint", operand="len", offset=-1
    )
    instruction.apply(
        "combine_increments", at=instruction.stmt("len <- len - 1;")
    )
    instruction.apply("add_zero", at=instruction.expr("len + 0"))
    instruction.apply("remove_self_assign", at=instruction.stmt("len <- len;"))


def transform_sassign(session: AnalysisSession) -> None:
    operator = session.operator
    # mvc's operand order is (destination, source, length).
    operator.apply(
        "reorder_inputs", order=("Dst.Base", "Src.Base", "Len")
    )
    # Count the length down instead of the index up.
    operator.apply("countup_to_countdown", var="i", limit="Len")
    # The length must be in [1, 256]: no encoding moves zero bytes, and
    # 256 round-trips through the 8-bit field via the wrap.
    operator.apply("assert_operand_range", operand="Len", lo=1, hi=256)
    operator.apply(
        "derive_assertion", at=operator.stmt("assert (Len >= 1);"), value=0
    )
    operator.apply(
        "swap_statements", at=operator.stmt("assert (not (Len = 0));")
    )
    # Under 'not (Len = 0)' the pre-test loop is the post-test loop.
    operator.apply(
        "rotate_pretest_to_posttest",
        at=operator.stmt(
            """
            repeat
                exit_when (Len = 0);
                Mb[ Dst.Base + i ] <- Mb[ Src.Base + i ];
                i <- i + 1;
                Len <- Len - 1;
            end_repeat;
            """
        ),
    )
    # Moving-pointer addressing on both strings.
    operator.apply(
        "absorb_index_into_base", var="i", base="Src.Base", saved="src0"
    )
    operator.apply(
        "absorb_index_into_base", var="i", base="Dst.Base", saved="dst0"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("src0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("dst0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))


def script(session: AnalysisSession) -> None:
    integrate_coding_constraint(session)
    transform_sassign(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
