"""Burroughs B4800 ``srl`` vs. a generic list search — the §1 example.

"The instruction assumes that the link field of the list is the first
field in the record.  Thus, the B4800 instruction can only be used to
implement a general list search operation if a specific constraint is
satisfied, namely, that the link field is the first field of the
record."

The analysis fixes the operator's ``LinkOff`` operand to 0 — a
:class:`~repro.constraints.ValueConstraint` the code generator must
check against the program's record layout (the "restrictions that would
be handled by a storage allocator").  This row is not in Table 2; it
reproduces the introduction's motivating example.

Differential verification uses purpose-built linked-list scenarios
(nodes in the one-byte-link region of memory) rather than the string
scenario generator.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Dict, Tuple

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..analysis.verify import VerificationFailure, VerificationReport
from ..languages import listops
from ..machines.b4800 import descriptions as b4800
from ..semantics.engine import ExecutionEngine
from .common import run_analysis

INFO = AnalysisInfo(
    machine="Burroughs B4800",
    instruction="srl",
    language="generic",
    operation="list search",
    operator="list.search",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = listops.lsearch
INSTRUCTION = b4800.srl


def script(session: AnalysisSession) -> None:
    operator = session.operator
    # The link field must be first in the record.
    operator.apply("fix_operand", operand="LinkOff", value=0)
    operator.apply("propagate_constant", at=operator.expr("LinkOff"))
    operator.apply("add_zero", at=operator.expr("Head + 0"))
    operator.apply(
        "eliminate_dead_assignment", at=operator.stmt("LinkOff <- 0;")
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("LinkOff"))


def _random_list_scenario(rng: random.Random) -> Tuple[Dict[str, int], Dict[int, int]]:
    """A random linked list: link at offset 0, key at a fixed offset."""
    key_offset = rng.randint(1, 3)
    node_size = key_offset + 1
    count = rng.randint(0, 8)
    addresses = rng.sample(range(8, 250, node_size + 1), count) if count else []
    memory: Dict[int, int] = {}
    for position, addr in enumerate(addresses):
        nxt = addresses[position + 1] if position + 1 < len(addresses) else 0
        memory[addr] = nxt
        memory[addr + key_offset] = rng.randrange(256)
    head = addresses[0] if addresses else 0
    if addresses and rng.random() < 0.5:
        key = memory[rng.choice(addresses) + key_offset]
    else:
        key = rng.randrange(256)
    inputs = {"Head": head, "Key": key, "KeyOff": key_offset}
    return inputs, memory


def verify_list_binding(
    binding,
    trials: int = 200,
    seed: int = 4800,
    engine: Optional[ExecutionEngine] = None,
) -> VerificationReport:
    """Differential testing on randomized linked lists."""
    resolved = ExecutionEngine.resolve(engine)
    operator_interp = resolved.executor(binding.final_operator)
    instruction_interp = resolved.executor(binding.augmented_instruction)
    rng = random.Random(seed)
    for _ in range(trials):
        inputs, memory = _random_list_scenario(rng)
        mapped = {
            binding.operand_map.get(name, name): value
            for name, value in inputs.items()
        }
        result_op = operator_interp.run(inputs, memory)
        result_in = instruction_interp.run(mapped, memory)
        if result_op.outputs != result_in.outputs:
            raise VerificationFailure(
                f"outputs differ on {inputs}: {result_op.outputs} vs "
                f"{result_in.outputs}"
            )
    return VerificationReport(
        trials=trials,
        operator_name=binding.final_operator.name,
        instruction_name=binding.augmented_instruction.name,
        engine=resolved.name,
    )


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    outcome = run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, scenario=None, verify=False
    )
    if outcome.succeeded and verify:
        report = verify_list_binding(outcome.binding, trials=trials, engine=engine)
        outcome = dataclasses.replace(outcome, verification=report)
    return outcome
