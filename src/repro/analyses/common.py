"""Shared driver for the recorded analysis scripts.

Each analysis module defines ``INFO`` (the Table 2 row), ``OPERATOR``
and ``INSTRUCTION`` (the input-description factories), ``SCENARIO``
(the differential-testing recipe), and a ``script(session)`` function
that applies the transformation sequence; the declarative registry in
:mod:`repro.analyses` carries the per-row metadata (paper step counts,
codegen field maps).  :func:`run_analysis` plays the script, matches,
verifies, and wraps everything — including the structured two-sided
:class:`~repro.provenance.AnalysisTrace` — in an
:class:`~repro.analysis.report.AnalysisOutcome`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..analysis import (
    AnalysisInfo,
    AnalysisOutcome,
    AnalysisSession,
    MatchFailure,
    RunConfig,
    verify_binding,
)
from ..constraints import LanguageFact, UnsupportedConstraintError
from ..isdl import ast
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import ScenarioSpec
from ..transform import TransformError


def run_analysis(
    info: AnalysisInfo,
    operator_desc: ast.Description,
    instruction_desc: ast.Description,
    script: Callable[[AnalysisSession], None],
    scenario: Optional[ScenarioSpec] = None,
    verify: bool = True,
    trials: int = 120,
    language_facts: Sequence[LanguageFact] = (),
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    """Play one analysis script end to end.

    Failures of the kinds the paper documents (an unsupported complex
    constraint, a transformation whose guard refuses, a match failure)
    are captured in the outcome rather than raised; anything else is a
    bug in this reproduction and propagates.
    """
    session = AnalysisSession(
        info, operator_desc, instruction_desc, language_facts=language_facts
    )
    try:
        script(session)
        binding = session.finish()
    except (UnsupportedConstraintError, TransformError, MatchFailure) as error:
        return AnalysisOutcome(
            machine=info.machine,
            instruction=info.instruction,
            language=info.language,
            operation=info.operation,
            failure=f"{type(error).__name__}: {error}",
            trace=session.trace(),
        )
    verification = None
    if verify and scenario is not None:
        verification = verify_binding(
            binding,
            scenario,
            config=RunConfig(
                trials=trials, engine=ExecutionEngine.resolve(engine)
            ),
        )
    return AnalysisOutcome(
        machine=info.machine,
        instruction=info.instruction,
        language=info.language,
        operation=info.operation,
        binding=binding,
        verification=verification,
        trace=session.trace(),
    )
