"""VAX-11 ``movc3`` vs. Pascal ``sassign`` — the §4.3 failure.

movc3 guards against operand overlap by comparing the source and
destination addresses and copying high-to-low when they could collide.
Pascal strings can never overlap, so ``sassign``'s simple low-to-high
loop *is* equivalent to movc3 — "the problem is that the descriptions
are equivalent only under this condition and EXTRA has no way to
represent it":

    (Src.Base + Src.Length <= Dst.Base) or
    (Dst.Base + Dst.Length <= Src.Base)

is a constraint over multiple operands, and EXTRA "can only deal with
simple constraints".  The attempt below therefore fails with
:class:`~repro.constraints.UnsupportedConstraintError`, exactly as the
paper reports.  The §7 extension that repairs this by declaring the
no-overlap property a *language fact* lives in
:mod:`repro.analyses.movc3_sassign_extension`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..constraints import LanguageFact
from ..languages import pascal
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="movc3",
    language="Pascal",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sassign
INSTRUCTION = vax11.movc3

SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    instruction.apply("replace_epilogue", stmts=())
    # Eliminating movc3's direction branch needs the no-overlap
    # condition — a complex multi-operand constraint.  Stock EXTRA
    # cannot represent it; this raises UnsupportedConstraintError
    # (unless the session holds the matching language fact).
    session.require_no_overlap("Src", "Dst")
    instruction.apply(
        "select_forward_copy",
        at=instruction.stmt(
            """
            if (r1 < r3) then
                cnt <- r0;
                repeat
                    exit_when (cnt = 0);
                    cnt <- cnt - 1;
                    Mb[ r3 + cnt ] <- Mb[ r1 + cnt ];
                end_repeat;
                r1 <- r1 + r0;
                r3 <- r3 + r0;
                r0 <- 0;
            else
                repeat
                    exit_when (r0 = 0);
                    r0 <- r0 - 1;
                    Mb[ r3 ] <- Mb[ r1 ];
                    r1 <- r1 + 1;
                    r3 <- r3 + 1;
                end_repeat;
            end_if;
            """
        ),
        language_facts=session.language_facts,
    )
    # With the branch resolved, sassign reshapes as in the other move
    # analyses, mirroring movc3's working registers.
    operator.apply("reorder_inputs", order=("Len", "Src.Base", "Dst.Base"))
    operator.apply("copy_operand_to_register", operand="Dst.Base", new="dp")
    operator.apply("copy_operand_to_register", operand="Src.Base", new="sp")
    operator.apply("copy_operand_to_register", operand="Len", new="n")
    operator.apply("countup_to_countdown", var="i", limit="n")
    operator.apply("absorb_index_into_base", var="i", base="sp", saved="src0")
    operator.apply("absorb_index_into_base", var="i", base="dp", saved="dst0")
    operator.apply("eliminate_dead_variable", at=operator.decl("src0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("dst0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))
    # Loop body is now: move; dp++; sp++; n--.  movc3 counts first and
    # advances source before destination.
    operator.apply("swap_statements", at=operator.stmt("sp <- sp + 1;"))
    operator.apply("swap_statements", at=operator.stmt("dp <- dp + 1;"))
    operator.apply("swap_statements", at=operator.stmt("Mb[ dp ] <- Mb[ sp ];"))
    operator.apply("swap_statements", at=operator.stmt("dp <- dp + 1;"))


def run(
    verify: bool = True,
    trials: int = 120,
    language_facts: Sequence[LanguageFact] = (),
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO,
        OPERATOR(),
        INSTRUCTION(),
        script,
        SCENARIO,
        verify,
        trials,
        language_facts=language_facts,
        engine=engine,
    )
