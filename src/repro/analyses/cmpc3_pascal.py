"""VAX-11 ``cmpc3`` vs. Pascal string comparison (``sequal``).

cmpc3 compares two strings and leaves the Z condition code set when
they are equal — including the vacuous equality of empty strings, which
the instruction's own ``z <- 1`` initialization covers (no prologue
augment needed, unlike cmpsb).  The operator side only needs working
registers mirroring R0/R1/R3, the subtract-and-test comparison shape,
and cmpc3's operand order; the epilogue augment discards the register
results and returns just the flag.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="cmpc3",
    language="Pascal",
    operation="string compare",
    operator="string.equal",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sequal
INSTRUCTION = vax11.cmpc3


SCENARIO = ScenarioSpec(
    operands={
        "A.Base": OperandSpec("address"),
        "B.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # A comparison's result is the flag; drop the register outputs.
    instruction.apply_stmts("replace_epilogue", "output (z);")
    # cmpc3's operand order is (len, addr1, addr2).
    operator.apply("reorder_inputs", order=("Len", "A.Base", "B.Base"))
    # Working registers mirroring r0 <- len; r1 <- addr1; r3 <- addr2.
    operator.apply("copy_operand_to_register", operand="B.Base", new="p2")
    operator.apply("copy_operand_to_register", operand="A.Base", new="p1")
    operator.apply("copy_operand_to_register", operand="Len", new="cnt")
    # Subtract-and-test comparison.
    operator.apply(
        "eq_to_sub_zero", at=operator.expr("Mb[ p1 ] = Mb[ p2 ]")
    )


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
