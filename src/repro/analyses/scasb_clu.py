"""Intel 8086 ``scasb`` vs. CLU ``string$indexc``.

The hardest 8086 row (86 steps in the paper): CLU's cursor loop peeks
without advancing and counts *up*, while scasb's ``fetch()`` advances
unconditionally and the count runs *down*.  On top of the full scasb
simplification and augmentation, the CLU side needs the count reversed,
the cursor absorbed into a moving pointer, ``elem()`` inlined and
re-extracted as an advancing access routine, and the pointer increment
interchanged with the found-exit (compensating the epilogue's index
computation).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import clu
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis
from .scasb_rigel import augment_scasb, simplify_scasb

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="scasb",
    language="CLU",
    operation="string search",
    operator="string.index",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = clu.indexc
INSTRUCTION = i8086.scasb


SCENARIO = ScenarioSpec(
    operands={
        "S.Base": OperandSpec("address"),
        "S.Limit": OperandSpec("length"),
        "c": OperandSpec("char"),
    }
)


def hoist_scasb_fetch(session: AnalysisSession) -> None:
    """Name the fetched character (the CLU side ends with a temp too)."""
    instruction = session.instruction
    instruction.apply("hoist_call", at=instruction.expr("fetch()"), temp="t2")


def transform_indexc(session: AnalysisSession) -> None:
    operator = session.operator
    # scasb's operand order is (address, length, character).
    operator.apply("reorder_inputs", order=("S.Base", "S.Limit", "c"))
    # Count down, subtract-and-test, explicit flag — as for locc.
    operator.apply("countup_to_countdown", var="i", limit="S.Limit")
    operator.apply("eq_to_sub_zero", at=operator.expr("c = elem()"))
    operator.apply(
        "materialize_exit_flag",
        at=operator.stmt("exit_when ((c - elem()) = 0);"),
        flag="found",
    )
    operator.apply(
        "absorb_index_into_base", var="i", base="S.Base", saved="origin"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))
    # Inline elem() down to a named memory read.
    operator.apply("hoist_call", at=operator.expr("elem()"), temp="tch")
    operator.apply("inline_call", at=operator.stmt("tch <- elem();"), temp="ev")
    operator.apply("retarget_assignment", at=operator.stmt("tch <- ev;"))
    operator.apply("remove_unused_routine", at=operator.routine_decl("elem"))
    operator.apply("eliminate_dead_variable", at=operator.decl("ev"))
    # Flag-based discriminator, then slide the count decrement up to the
    # top of the loop (scasb counts before comparing).
    operator.apply(
        "exit_discriminator_to_flag",
        at=operator.stmt(
            """
            if S.Limit = 0 then
                output (0);
            else
                output ((S.Base - origin) + 1);
            end_if;
            """
        ),
    )
    operator.apply(
        "reverse_conditional",
        at=operator.stmt(
            """
            if not found then
                output (0);
            else
                output ((S.Base - origin) + 1);
            end_if;
            """
        ),
    )
    operator.apply(
        "swap_statements", at=operator.stmt("S.Base <- S.Base + 1;")
    )
    operator.apply(
        "move_before_exit", at=operator.stmt("S.Limit <- S.Limit - 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("found <- ((c - tch) = 0);")
    )
    operator.apply("swap_statements", at=operator.stmt("tch <- Mb[ S.Base ];"))
    # scasb's fetch advances before the compare: pull the pointer bump
    # across the found-exit (compensating the epilogue) and then ahead
    # of the flag computation.
    operator.apply(
        "swap_increment_with_exit",
        at=operator.stmt("S.Base <- S.Base + 1;"),
        direction="before",
    )
    operator.apply(
        "shift_sub_neg", at=operator.expr("(S.Base - 1) - origin")
    )
    operator.apply(
        "sum_of_sub", at=operator.expr("((S.Base - origin) - 1) + 1")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("found <- ((c - tch) = 0);")
    )
    # Finally re-extract the advancing access routine matching fetch().
    operator.apply(
        "extract_access_routine",
        at=operator.stmt("tch <- Mb[ S.Base ];"),
        routine="read",
    )


def script(session: AnalysisSession) -> None:
    simplify_scasb(session)
    augment_scasb(session)
    hoist_scasb_fetch(session)
    transform_indexc(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
