"""Intel 8086 ``movsb`` vs. PL/1 string move.

PL/1 strings may be empty at run time, so its runtime move guards the
copy loop with ``if (Len > 0)``.  The analysis first discharges that
guard — a range assertion on the length shows the unguarded loop's own
``exit_when`` covers the empty case — and then proceeds exactly like
the Pascal analysis.  The extra bookkeeping is why this row costs more
steps than Pascal's (66 vs. 52 in the paper's Table 2).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pl1
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis
from .movsb_pascal import simplify_movsb

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="movsb",
    language="PL/1",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pl1.strmove
INSTRUCTION = i8086.movsb


SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def discharge_guard(session: AnalysisSession) -> None:
    """Remove PL/1's empty-string guard around the copy loop."""
    operator = session.operator
    operator.apply(
        "assert_operand_range", operand="Len", lo=0, hi=(1 << 16) - 1
    )
    operator.apply(
        "remove_redundant_guard",
        at=operator.stmt(
            """
            if (Len > 0) then
                repeat
                    exit_when (i = Len);
                    Mb[ Dst.Base + i ] <- Mb[ Src.Base + i ];
                    i <- i + 1;
                end_repeat;
            end_if;
            """
        ),
    )
    operator.apply("remove_assertion", at=operator.stmt("assert (Len >= 0);"))
    operator.apply("countup_to_countdown", var="i", limit="Len")


def transform_strmove(session: AnalysisSession) -> None:
    """Same moving-pointer rewrite as the Pascal analysis."""
    operator = session.operator
    operator.apply(
        "absorb_index_into_base", var="i", base="Src.Base", saved="src0"
    )
    operator.apply(
        "absorb_index_into_base", var="i", base="Dst.Base", saved="dst0"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("src0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("dst0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))
    operator.apply(
        "swap_statements", at=operator.stmt("Src.Base <- Src.Base + 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Dst.Base <- Dst.Base + 1;")
    )
    operator.apply(
        "swap_statements",
        at=operator.stmt("Mb[ Dst.Base ] <- Mb[ Src.Base ];"),
    )
    operator.apply(
        "hoist_memread", at=operator.expr("Mb[ Src.Base ]"), temp="t"
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Dst.Base <- Dst.Base + 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Mb[ Dst.Base ] <- t;")
    )
    operator.apply(
        "extract_access_routine",
        at=operator.stmt("t <- Mb[ Src.Base ];"),
        routine="read",
    )


def script(session: AnalysisSession) -> None:
    simplify_movsb(session)
    discharge_guard(session)
    transform_strmove(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
