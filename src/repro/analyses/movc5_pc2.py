"""VAX-11 ``movc5`` vs. PC2 ``blkclr`` (block clear).

movc5 moves a source string into a destination and fills the
remainder.  Fixing the *source length* to zero removes the move phase
entirely — its opening exit is then provably true — and fixing the fill
character to zero turns the fill phase into exactly the runtime's
block-clear loop.  A textbook §2 simplification: "an exotic instruction
may be more general than a language operator … the instruction can be
simplified by fixing the values of some of its operands."
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pc2
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="movc5",
    language="PC2",
    operation="block clear",
    operator="block.clear",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pc2.blkclr
INSTRUCTION = vax11.movc5


SCENARIO = ScenarioSpec(
    operands={
        "count": OperandSpec("length"),
        "addr": OperandSpec("address"),
    }
)


def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    # The register outputs reference operands about to be fixed away.
    instruction.apply("replace_epilogue", stmts=())
    # Source length zero: the move phase exits immediately and vanishes.
    instruction.apply("fix_operand", operand="srclen", value=0)
    instruction.apply(
        "remove_immediate_exit_loop",
        at=instruction.stmt(
            """
            repeat
                exit_when (srclen = 0);
                exit_when (dstlen = 0);
                Mb[ dstaddr ] <- Mb[ srcaddr ];
                srcaddr <- srcaddr + 1;
                dstaddr <- dstaddr + 1;
                srclen <- srclen - 1;
                dstlen <- dstlen - 1;
            end_repeat;
            """
        ),
    )
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("srclen <- 0;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("srclen"))
    # The source address no longer participates at all.
    instruction.apply("fix_operand", operand="srcaddr", value=0)
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("srcaddr <- 0;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("srcaddr"))
    # Fill character zero: the fill loop becomes a clear loop.
    instruction.apply("fix_operand", operand="fill", value=0)
    instruction.apply("propagate_constant", at=instruction.expr("fill"))
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("fill <- 0;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("fill"))


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
