"""Intel 8086 ``movsb`` vs. Pascal string move (``sassign``).

The instruction side repeats the scasb simplification pattern (fix
``df`` and ``rf``, fold) and drops the register outputs a language move
has no use for.  The operator side rewrites Pascal's indexed copy
(``Mb[Dst.Base + i] <- Mb[Src.Base + i]``) into the machine's
moving-pointer form: reverse the count, absorb the index into both
pointers, and factor the source access into a routine matching
``fetch()``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="movsb",
    language="Pascal",
    operation="string move",
    operator="string.move",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sassign
INSTRUCTION = i8086.movsb


SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Dst.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def simplify_movsb(session: AnalysisSession) -> None:
    """Fix df = 0 and rf = 1, drop the register outputs."""
    instruction = session.instruction
    instruction.apply("fix_operand", operand="df", value=0)
    for _ in range(3):  # fetch() plus the two destination-advance branches
        instruction.apply("propagate_constant", at=instruction.expr("df"))
    instruction.apply(
        "if_false",
        at=instruction.stmt("if 0 then si <- si - 1; else si <- si + 1; end_if;"),
    )
    for _ in range(2):
        instruction.apply(
            "if_false",
            at=instruction.stmt(
                "if 0 then di <- di - 1; else di <- di + 1; end_if;"
            ),
        )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("df <- 0;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("df"))
    instruction.apply("fix_operand", operand="rf", value=1)
    instruction.apply("propagate_constant", at=instruction.expr("rf"))
    instruction.apply("fold_constants", at=instruction.expr("not 1"))
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            """
            if 0 then
                Mb[ di ] <- fetch();
                di <- di + 1;
            else
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    Mb[ di ] <- fetch();
                    di <- di + 1;
                end_repeat;
            end_if;
            """
        ),
    )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("rf <- 1;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rf"))
    instruction.apply("replace_epilogue", stmts=())
    instruction.apply("hoist_call", at=instruction.expr("fetch()"), temp="t2")


def transform_sassign(session: AnalysisSession) -> None:
    """Indexed copy -> counted-down moving-pointer copy."""
    operator = session.operator
    operator.apply("countup_to_countdown", var="i", limit="Len")
    operator.apply(
        "absorb_index_into_base", var="i", base="Src.Base", saved="src0"
    )
    operator.apply(
        "absorb_index_into_base", var="i", base="Dst.Base", saved="dst0"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("src0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("dst0"))
    operator.apply("eliminate_dead_variable", at=operator.decl("i"))
    # Loop body is now: move; Dst++; Src++; Len--.  The 8086 decrements
    # its count first: bubble the decrement to the top...
    operator.apply(
        "swap_statements", at=operator.stmt("Src.Base <- Src.Base + 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Dst.Base <- Dst.Base + 1;")
    )
    operator.apply(
        "swap_statements",
        at=operator.stmt("Mb[ Dst.Base ] <- Mb[ Src.Base ];"),
    )
    # ...then factor the source access into a fetch-style routine.
    operator.apply(
        "hoist_memread", at=operator.expr("Mb[ Src.Base ]"), temp="t"
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Dst.Base <- Dst.Base + 1;")
    )
    operator.apply(
        "swap_statements", at=operator.stmt("Mb[ Dst.Base ] <- t;")
    )
    operator.apply(
        "extract_access_routine",
        at=operator.stmt("t <- Mb[ Src.Base ];"),
        routine="read",
    )


def script(session: AnalysisSession) -> None:
    simplify_movsb(session)
    transform_sassign(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
