"""VAX-11 ``movc3`` vs. PC2 ``blkcpy`` — the easiest Table 2 row.

PC2's block copy (the Berkeley Pascal runtime, written in C) follows
the same protocol movc3 implements in microcode: copy the arguments
into working locals, compare the pointers, copy backward on potential
overlap and forward otherwise.  Only cosmetic steps are needed — a
comparison swap, a few statement reorderings in the forward loop, and
dropping movc3's register outputs — which is why this row has the
smallest step count in Table 2 (21 in the paper).

This success is the flip side of §4.3: against Pascal ``sassign``
(which has no direction branch) the same instruction is *not*
analyzable — see :mod:`repro.analyses.movc3_sassign_failure`.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pc2
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="movc3",
    language="PC2",
    operation="block copy",
    operator="block.copy",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pc2.blkcpy
INSTRUCTION = vax11.movc3


#: both sides guard against overlap, so overlapping scenarios are fair
#: game for the differential check.
SCENARIO = ScenarioSpec(
    operands={
        "count": OperandSpec("length"),
        "from": OperandSpec("address"),
        "to": OperandSpec("address"),
    },
    allow_overlap=True,
)


def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # movc3 leaves R0/R1/R3 set; a block copy has no results.
    instruction.apply("replace_epilogue", stmts=())
    # blkcpy tests 't > f' where movc3 tests 'r1 < r3'.
    instruction.apply("swap_comparison", at=instruction.expr("r1 < r3"))
    # Align the forward loop: blkcpy decrements last, movc3 first.
    operator.apply("swap_statements", at=operator.stmt("f <- f + 1;"))
    operator.apply("swap_statements", at=operator.stmt("t <- t + 1;"))
    operator.apply("swap_statements", at=operator.stmt("Mb[ t ] <- Mb[ f ];"))
    # blkcpy advances destination then source; movc3 the reverse.
    operator.apply("swap_statements", at=operator.stmt("t <- t + 1;"))


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
