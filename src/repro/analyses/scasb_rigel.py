"""Intel 8086 ``scasb`` vs. Rigel ``index`` — the paper's §4.1 example.

The script reproduces the published analysis phase by phase:

1. *Simplify* scasb by fixing its flag operands (``df = 0``: scan low
   to high; ``rf = 1``: always repeat; ``rfz = 0``: stop on match) and
   constant-folding the consequences — figure 3 becomes figure 4.
2. *Augment*: save the initial string pointer in a new 16-bit
   temporary, preset ``zf`` to 0 (otherwise a zero-length string leaves
   it unusable), and replace the epilogue with code that returns the
   character's index or 0 — figure 4 becomes figure 5.
3. *Transform Rigel's index into the same shape*: subtract-and-test
   comparison, an explicit exit flag, moving-pointer addressing instead
   of base-plus-index, the flag as the post-loop discriminator, and the
   machine's decrement placement.

The matcher then binds ``Src.Base``/``Src.Length``/``ch`` to
``di``/``cx``/``al``, emitting the 16-bit string-length constraint the
paper highlights.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import rigel
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="scasb",
    language="Rigel",
    operation="string search",
    operator="string.index",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = rigel.index
INSTRUCTION = i8086.scasb


SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Src.Length": OperandSpec("length"),
        "ch": OperandSpec("char"),
    }
)


def simplify_scasb(session: AnalysisSession) -> None:
    """Figure 3 -> figure 4: fix df/rf/rfz and fold the consequences."""
    instruction = session.instruction
    # direction flag: always scan from low addresses to high
    instruction.apply("fix_operand", operand="df", value=0)
    instruction.apply("propagate_constant", at=instruction.expr("df"))
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            "if 0 then di <- di - 1; else di <- di + 1; end_if;"
        ),
    )
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("df <- 0;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("df"))
    # repeat flag: the instruction always loops
    instruction.apply("fix_operand", operand="rf", value=1)
    instruction.apply("propagate_constant", at=instruction.expr("rf"))
    instruction.apply("fold_constants", at=instruction.expr("not 1"))
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            """
            if 0 then
                if (al - fetch()) = 0 then zf <- 1; else zf <- 0; end_if;
            else
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    if (al - fetch()) = 0 then zf <- 1; else zf <- 0; end_if;
                    exit_when (rfz and (not zf)) or ((not rfz) and zf);
                end_repeat;
            end_if;
            """
        ),
    )
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("rf <- 1;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rf"))
    # exit-condition flag: terminate when the character is found
    instruction.apply("fix_operand", operand="rfz", value=0)
    instruction.apply("propagate_constant", at=instruction.expr("rfz"))
    instruction.apply("propagate_constant", at=instruction.expr("rfz"))
    instruction.apply("and_false", at=instruction.expr("0 and (not zf)"))
    instruction.apply("fold_constants", at=instruction.expr("not 0"))
    instruction.apply("and_true", at=instruction.expr("1 and zf"))
    instruction.apply("or_false", at=instruction.expr("0 or zf"))
    instruction.apply(
        "eliminate_dead_assignment", at=instruction.stmt("rfz <- 0;")
    )
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rfz"))


def augment_scasb(session: AnalysisSession) -> None:
    """Figure 4 -> figure 5: temp, zf preset, index-computing epilogue."""
    instruction = session.instruction
    instruction.apply(
        "flag_if_to_assign",
        at=instruction.stmt(
            "if (al - fetch()) = 0 then zf <- 1; else zf <- 0; end_if;"
        ),
    )
    instruction.apply("allocate_temp", temp="temp", bits=16)
    instruction.apply_stmts("add_prologue", "temp <- di;", position=1)
    instruction.apply_stmts("add_prologue", "zf <- 0;", position=2)
    instruction.apply("drop_input_operand", operand="zf")
    instruction.apply_stmts(
        "replace_epilogue",
        "if zf then output (di - temp); else output (0); end_if;",
    )


def transform_index(session: AnalysisSession) -> None:
    """Bring Rigel's index into scasb's common form."""
    operator = session.operator
    operator.apply("eq_to_sub_zero", at=operator.expr("ch = read()"))
    operator.apply(
        "materialize_exit_flag",
        at=operator.stmt("exit_when ((ch - read()) = 0);"),
        flag="found",
    )
    operator.apply(
        "absorb_index_into_base",
        var="Src.Index",
        base="Src.Base",
        saved="origin",
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("Src.Index"))
    operator.apply(
        "exit_discriminator_to_flag",
        at=operator.stmt(
            """
            if Src.Length = 0 then
                output (0);
            else
                output (Src.Base - origin);
            end_if;
            """
        ),
    )
    operator.apply(
        "reverse_conditional",
        at=operator.stmt(
            """
            if not found then
                output (0);
            else
                output (Src.Base - origin);
            end_if;
            """
        ),
    )
    operator.apply(
        "move_before_exit",
        at=operator.stmt("Src.Length <- Src.Length - 1;"),
    )
    operator.apply(
        "swap_statements",
        at=operator.stmt("found <- ((ch - read()) = 0);"),
    )


def script(session: AnalysisSession) -> None:
    simplify_scasb(session)
    augment_scasb(session)
    transform_index(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
