"""Intel 8086 ``cmpsb`` vs. Pascal string comparison (``sequal``).

``repe cmpsb`` compares while equal: the simplification fixes
``rfz = 1`` (exit when the zero flag *clears*) alongside the usual
``df``/``rf`` fixes.  The augment presets ``zf`` to 1 — empty strings
compare equal — and the epilogue returns just the flag.  On the Pascal
side the two memory reads are named, both pointers slide across the
mismatch exit (their finals are dead), and each load/advance pair is
factored into an access routine mirroring ``fetchs``/``fetchd``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pascal
from ..machines.i8086 import descriptions as i8086
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="Intel 8086",
    instruction="cmpsb",
    language="Pascal",
    operation="string compare",
    operator="string.equal",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pascal.sequal
INSTRUCTION = i8086.cmpsb


SCENARIO = ScenarioSpec(
    operands={
        "A.Base": OperandSpec("address"),
        "B.Base": OperandSpec("address"),
        "Len": OperandSpec("length"),
    }
)


def simplify_cmpsb(session: AnalysisSession) -> None:
    instruction = session.instruction
    # direction flag: low addresses to high
    instruction.apply("fix_operand", operand="df", value=0)
    for _ in range(2):  # fetchs() and fetchd()
        instruction.apply("propagate_constant", at=instruction.expr("df"))
    instruction.apply(
        "if_false",
        at=instruction.stmt("if 0 then si <- si - 1; else si <- si + 1; end_if;"),
    )
    instruction.apply(
        "if_false",
        at=instruction.stmt("if 0 then di <- di - 1; else di <- di + 1; end_if;"),
    )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("df <- 0;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("df"))
    # repeat flag
    instruction.apply("fix_operand", operand="rf", value=1)
    instruction.apply("propagate_constant", at=instruction.expr("rf"))
    instruction.apply("fold_constants", at=instruction.expr("not 1"))
    instruction.apply(
        "if_false",
        at=instruction.stmt(
            """
            if 0 then
                if (fetchs() - fetchd()) = 0 then zf <- 1; else zf <- 0; end_if;
            else
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    if (fetchs() - fetchd()) = 0 then zf <- 1; else zf <- 0; end_if;
                    exit_when (rfz and (not zf)) or ((not rfz) and zf);
                end_repeat;
            end_if;
            """
        ),
    )
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("rf <- 1;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rf"))
    # exit-condition flag: repeat-while-EQUAL, so exit when zf clears
    instruction.apply("fix_operand", operand="rfz", value=1)
    for _ in range(2):
        instruction.apply("propagate_constant", at=instruction.expr("rfz"))
    instruction.apply("and_true", at=instruction.expr("1 and (not zf)"))
    instruction.apply("fold_constants", at=instruction.expr("not 1"))
    instruction.apply("and_false", at=instruction.expr("0 and zf"))
    instruction.apply("or_false", at=instruction.expr("(not zf) or 0"))
    instruction.apply("eliminate_dead_assignment", at=instruction.stmt("rfz <- 1;"))
    instruction.apply("eliminate_dead_variable", at=instruction.decl("rfz"))


def augment_cmpsb(session: AnalysisSession) -> None:
    instruction = session.instruction
    instruction.apply(
        "flag_if_to_assign",
        at=instruction.stmt(
            "if (fetchs() - fetchd()) = 0 then zf <- 1; else zf <- 0; end_if;"
        ),
    )
    instruction.apply_stmts("add_prologue", "zf <- 1;", position=1)
    instruction.apply("drop_input_operand", operand="zf")
    instruction.apply_stmts("replace_epilogue", "output (zf);")
    instruction.apply("hoist_call", at=instruction.expr("fetchs()"), temp="t1")
    instruction.apply("hoist_call", at=instruction.expr("fetchd()"), temp="t2")


def transform_sequal(session: AnalysisSession) -> None:
    operator = session.operator
    operator.apply(
        "eq_to_sub_zero", at=operator.expr("Mb[ A.Base ] = Mb[ B.Base ]")
    )
    operator.apply("hoist_memread", at=operator.expr("Mb[ A.Base ]"), temp="ta")
    operator.apply("hoist_memread", at=operator.expr("Mb[ B.Base ]"), temp="tb")
    # Slide the pointer advances and the decrement across the mismatch
    # exit: their values are dead once the loop is left.
    operator.apply("move_before_exit", at=operator.stmt("A.Base <- A.Base + 1;"))
    operator.apply("move_before_exit", at=operator.stmt("B.Base <- B.Base + 1;"))
    operator.apply("move_before_exit", at=operator.stmt("Len <- Len - 1;"))
    # Bubble the decrement to the top (the 8086 counts first)...
    for pattern in (
        "B.Base <- B.Base + 1;",
        "A.Base <- A.Base + 1;",
        "eq <- ((ta - tb) = 0);",
        "tb <- Mb[ B.Base ];",
        "ta <- Mb[ A.Base ];",
    ):
        operator.apply("swap_statements", at=operator.stmt(pattern))
    # ...and pair each load with its advance.
    operator.apply("swap_statements", at=operator.stmt("eq <- ((ta - tb) = 0);"))
    operator.apply("swap_statements", at=operator.stmt("tb <- Mb[ B.Base ];"))
    operator.apply("swap_statements", at=operator.stmt("eq <- ((ta - tb) = 0);"))
    operator.apply(
        "extract_access_routine",
        at=operator.stmt("ta <- Mb[ A.Base ];"),
        routine="reada",
    )
    operator.apply(
        "extract_access_routine",
        at=operator.stmt("tb <- Mb[ B.Base ];"),
        routine="readb",
    )


def script(session: AnalysisSession) -> None:
    simplify_cmpsb(session)
    augment_cmpsb(session)
    transform_sequal(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
