"""The §7 future-work extension: language facts discharge overlap.

"EXTRA should be extended to understand source language characteristics
such as overlap that result in complex constraints.  … The no-overlap
condition is a property of Pascal and can never be violated by any
Pascal program.  Thus, the analysis system is the appropriate place to
deal with it" (paper §4.3/§7).

This module re-runs the movc3/sassign analysis with the ``no-overlap``
:class:`~repro.constraints.LanguageFact` declared.  The fact discharges
the complex constraint, ``select_forward_copy`` resolves movc3's
direction branch, and the analysis completes — verified differentially
on (non-overlapping, as Pascal guarantees) randomized states.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisOutcome
from ..constraints import LanguageFact
from ..semantics.engine import ExecutionEngine
from . import movc3_sassign_failure

INFO = movc3_sassign_failure.INFO
OPERATOR = movc3_sassign_failure.OPERATOR
INSTRUCTION = movc3_sassign_failure.INSTRUCTION
SCENARIO = movc3_sassign_failure.SCENARIO

#: Pascal strings can never overlap — a property of the source
#: language, declared rather than proven.
NO_OVERLAP = LanguageFact(
    name="no-overlap",
    description="Pascal string variables never overlap in storage",
)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return movc3_sassign_failure.run(
        verify=verify, trials=trials, language_facts=(NO_OVERLAP,), engine=engine
    )
