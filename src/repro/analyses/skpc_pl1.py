"""VAX-11 ``skpc`` vs. PL/1 ``span`` — an extension row.

``skpc`` is ``locc``'s complement: it advances *past* leading
occurrences of a character.  The matching operator is the
leading-run-length kernel behind PL/1's VERIFY builtin.  The script is
the locc recipe minus the flag work — skpc's second exit compares
directly, and the operator's cursor absorbs into the moving pointer
whose distance from the saved start *is* the result.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import pl1
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="skpc",
    language="PL/1",
    operation="character span",
    operator="string.span",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = pl1.span
INSTRUCTION = vax11.skpc

SCENARIO = ScenarioSpec(
    operands={
        "C": OperandSpec("char"),
        "Max": OperandSpec("length"),
        "S": OperandSpec("address"),
    }
)



def script(session: AnalysisSession) -> None:
    instruction = session.instruction
    operator = session.operator
    # Augment skpc: save the start, return the span length.
    instruction.apply("allocate_temp", temp="temp", bits=32)
    instruction.apply_stmts("add_prologue", "temp <- r1;", position=3)
    instruction.apply_stmts("replace_epilogue", "output (r1 - temp);")
    # Operator: working registers, countdown, moving pointer.
    operator.apply("copy_operand_to_register", operand="S", new="ptr")
    operator.apply("copy_operand_to_register", operand="Max", new="cnt")
    operator.apply("countup_to_countdown", var="n", limit="cnt")
    operator.apply(
        "absorb_index_into_base", var="n", base="ptr", saved="origin"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("n"))


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
