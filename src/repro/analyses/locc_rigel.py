"""VAX-11 ``locc`` vs. Rigel ``index``.

§2's own example: "the VAX-11 locc instruction searches a string for a
character and returns the address of the character if found … code must
be added to locc to compute the index from the address."  The epilogue
augment computes ``(r1 - temp) + 1`` (locc's R1 points *at* the located
byte; Rigel indexes are 1-based).

The interesting reconciliation is access style: Rigel's ``read()``
advances unconditionally (fetch-then-test), locc tests in place and
advances only on mismatch.  After inlining ``read()``, the pointer
increment is interchanged with the found-exit, compensating the one
post-loop read of the pointer (``swap_increment_with_exit``).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import AnalysisInfo, AnalysisOutcome, AnalysisSession
from ..languages import rigel
from ..machines.vax11 import descriptions as vax11
from ..semantics.engine import ExecutionEngine
from ..semantics.randomgen import OperandSpec, ScenarioSpec
from .common import run_analysis

INFO = AnalysisInfo(
    machine="VAX-11",
    instruction="locc",
    language="Rigel",
    operation="string search",
    operator="string.index",
)

#: input-description factories — the single source the runner,
#: provenance cache, and replay gate all build the originals from.
OPERATOR = rigel.index
INSTRUCTION = vax11.locc


SCENARIO = ScenarioSpec(
    operands={
        "Src.Base": OperandSpec("address"),
        "Src.Length": OperandSpec("length"),
        "ch": OperandSpec("char"),
    }
)


def augment_locc(session: AnalysisSession) -> None:
    """Save the start address; compute the 1-based index or 0."""
    instruction = session.instruction
    instruction.apply("allocate_temp", temp="temp", bits=32)
    instruction.apply_stmts("add_prologue", "temp <- r1;", position=3)
    instruction.apply_stmts(
        "replace_epilogue",
        "if found then output ((r1 - temp) + 1); else output (0); end_if;",
    )


def transform_index(session: AnalysisSession) -> None:
    operator = session.operator
    # locc's operand order is (char, len, addr).
    operator.apply("reorder_inputs", order=("ch", "Src.Length", "Src.Base"))
    # Working-register copies mirroring r0 <- len; r1 <- addr.
    operator.apply(
        "copy_operand_to_register", operand="Src.Base", new="ptr"
    )
    operator.apply(
        "copy_operand_to_register", operand="Src.Length", new="cnt"
    )
    # Subtract-and-test comparison and an explicit exit flag.
    operator.apply("eq_to_sub_zero", at=operator.expr("ch = read()"))
    operator.apply(
        "materialize_exit_flag",
        at=operator.stmt("exit_when ((ch - read()) = 0);"),
        flag="found",
    )
    # Moving-pointer addressing.
    operator.apply(
        "absorb_index_into_base", var="Src.Index", base="ptr", saved="origin"
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("Src.Index"))
    # Inline read(): locc reads memory directly.
    operator.apply("hoist_call", at=operator.expr("read()"), temp="tch")
    operator.apply(
        "inline_call", at=operator.stmt("tch <- read();"), temp="rv"
    )
    operator.apply(
        "retarget_assignment", at=operator.stmt("tch <- rv;")
    )
    operator.apply(
        "remove_unused_routine", at=operator.routine_decl("read")
    )
    operator.apply("eliminate_dead_variable", at=operator.decl("rv"))
    # Re-express the post-loop discriminator through the flag.
    operator.apply(
        "exit_discriminator_to_flag",
        at=operator.stmt(
            """
            if cnt = 0 then
                output (0);
            else
                output (ptr - origin);
            end_if;
            """
        ),
    )
    operator.apply(
        "reverse_conditional",
        at=operator.stmt(
            """
            if not found then
                output (0);
            else
                output (ptr - origin);
            end_if;
            """
        ),
    )
    # Finish the in-place-test shape: compute the flag from Mb[ptr]
    # directly, then advance only after the found-exit.
    operator.apply("swap_statements", at=operator.stmt("ptr <- ptr + 1;"))
    operator.apply("forward_substitute", at=operator.expr("tch"))
    operator.apply("eliminate_dead_variable", at=operator.decl("tch"))
    operator.apply(
        "swap_increment_with_exit",
        at=operator.stmt("ptr <- ptr + 1;"),
        direction="after",
    )
    operator.apply("shift_sub", at=operator.expr("(ptr + 1) - origin"))


def script(session: AnalysisSession) -> None:
    augment_locc(session)
    transform_index(session)


def run(
    verify: bool = True,
    trials: int = 120,
    engine: Optional[ExecutionEngine] = None,
) -> AnalysisOutcome:
    return run_analysis(
        INFO, OPERATOR(), INSTRUCTION(), script, SCENARIO, verify, trials, engine=engine
    )
