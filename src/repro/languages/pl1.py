"""PL/1 operators: the guarded string move.

PL/1 strings carry their length at run time and may legally be empty,
so the runtime's move routine guards the copy loop with a length test —
the extra wrapper EXTRA must discharge (via a range assertion on the
length) before the loop can match the machine's string move.  The body
is the same indexed copy as Pascal's; the descriptions deliberately
come from different "sources" with different styles (paper §5 stresses
style independence).
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

STRMOVE_TEXT = """
strmove.operation := begin
    ** SOURCE.ACCESS **
        Src.Base: integer,              ! source base address
        Dst.Base: integer,              ! destination base address
        Len: integer,                   ! characters to move (may be zero)
        i: integer                      ! copy index
    ** STRING.PROCESS **
        strmove.execute() := begin
            input (Src.Base, Dst.Base, Len);
            i <- 0;
            if (Len > 0)
            then                        ! runtime guards empty strings
                repeat
                    exit_when (i = Len);
                    Mb[ Dst.Base + i ] <- Mb[ Src.Base + i ];
                    i <- i + 1;
                end_repeat;
            end_if;
        end
end
"""


@lru_cache(maxsize=None)
def strmove() -> ast.Description:
    """PL/1 string move (guarded runtime copy)."""
    return parse_description(STRMOVE_TEXT)

SPAN_TEXT = """
span.operation := begin
    ! count of leading occurrences of a character (the runtime kernel
    ! behind PL/1's VERIFY against a single-character set)
    ** ARGUMENTS **
        C: character,                   ! character to span
        Max: integer,                   ! string length
        S: integer,                     ! string base address
        n: integer                      ! cursor
    ** SCAN.PROCESS **
        span.execute() := begin
            input (C, Max, S);
            n <- 0;
            repeat
                exit_when (n = Max);
                exit_when (Mb[ S + n ] <> C);
                n <- n + 1;
            end_repeat;
            output (n);
        end
end
"""


@lru_cache(maxsize=None)
def span() -> ast.Description:
    """PL/1 span: length of the leading run of one character."""
    return parse_description(SPAN_TEXT)
