"""CLU operators: ``string$indexc`` (find character in string).

CLU's library routine returns the 1-based index of the first occurrence
of a character, or 0 when absent — the same contract as Rigel's
``index``, but the description's *style* differs (paper §5: the
descriptions "have come from a variety of sources to eliminate bias
caused by a single style"): CLU iterates a cursor upward to a limit and
peeks at elements without advancing (``elem()``), where Rigel counts a
length down and advances inside ``read()``.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

INDEXC_TEXT = """
indexc.operation := begin
    ** SOURCE.ACCESS **
        S.Base: integer,                ! string base address
        S.Limit: integer,               ! string length
        i: integer,                     ! cursor
        elem(): integer := begin        ! peek at the current element
            elem <- Mb[ S.Base + i ];
        end
    ** STATE **
        c: character                    ! character sought
    ** STRING.PROCESS **
        indexc.execute() := begin
            input (c, S.Limit, S.Base);
            i <- 0;
            repeat
                exit_when (i = S.Limit);    ! cursor reached the limit
                exit_when (c = elem());     ! found
                i <- i + 1;
            end_repeat;
            if i = S.Limit
            then
                output (0);             ! char not found
            else
                output (i + 1);         ! 1-based index of the char
            end_if;
        end
end
"""


@lru_cache(maxsize=None)
def indexc() -> ast.Description:
    """CLU ``string$indexc``."""
    return parse_description(INDEXC_TEXT)
