"""PC2 runtime routines: block copy and block clear.

"PC2 is the Berkeley Pascal runtime system (written in C)" (paper §6
footnote).  ``blkcpy`` mirrors a C memory-copy with overlap handling —
it chooses a copy direction by comparing the pointers, exactly the
protocol movc3 implements, which is why the movc3/PC2 analysis succeeds
where movc3/Pascal-sassign fails.  ``blkclr`` zeroes a region.

The descriptions copy their arguments into working locals first, the
way the C routines do — the same structure the VAX instructions have
with their dedicated registers.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

BLKCPY_TEXT = """
blkcpy.operation := begin
    ** ARGUMENTS **
        count: integer,                 ! bytes to copy
        from: integer,                  ! source address
        to: integer                     ! destination address
    ** LOCALS **
        n: integer,                     ! working count
        f: integer,                     ! working source pointer
        t: integer,                     ! working destination pointer
        k: integer                      ! backward-copy index
    ** BLOCK.PROCESS **
        blkcpy.execute() := begin
            input (count, from, to);
            n <- count;
            f <- from;
            t <- to;
            if (t > f)
            then                        ! regions may overlap: copy high-to-low
                k <- n;
                repeat
                    exit_when (k = 0);
                    k <- k - 1;
                    Mb[ t + k ] <- Mb[ f + k ];
                end_repeat;
                f <- f + n;
                t <- t + n;
                n <- 0;
            else                        ! copy low-to-high
                repeat
                    exit_when (n = 0);
                    Mb[ t ] <- Mb[ f ];
                    t <- t + 1;
                    f <- f + 1;
                    n <- n - 1;
                end_repeat;
            end_if;
        end
end
"""

BLKCLR_TEXT = """
blkclr.operation := begin
    ** ARGUMENTS **
        count: integer,                 ! bytes to clear
        addr: integer                   ! region address
    ** BLOCK.PROCESS **
        blkclr.execute() := begin
            input (count, addr);
            repeat
                exit_when (count = 0);
                Mb[ addr ] <- 0;
                addr <- addr + 1;
                count <- count - 1;
            end_repeat;
        end
end
"""


@lru_cache(maxsize=None)
def blkcpy() -> ast.Description:
    """PC2 block copy (overlap-aware, like C's memmove)."""
    return parse_description(BLKCPY_TEXT)


@lru_cache(maxsize=None)
def blkclr() -> ast.Description:
    """PC2 block clear."""
    return parse_description(BLKCLR_TEXT)
