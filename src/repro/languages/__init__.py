"""Language-operator descriptions: Pascal, PL/1, Rigel, CLU, PC2."""

from . import clu, listops, pascal, pc2, pl1, rigel

__all__ = ["clu", "listops", "pascal", "pc2", "pl1", "rigel"]
