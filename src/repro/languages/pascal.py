"""Pascal operators: string assignment and string comparison.

``sassign`` "is actually present only in the compiler internal form and
not in the Pascal language" (paper §4.2): the compiler lowers
assignments between packed character arrays to it.  The description is
derived from the obvious indexed copy a Pascal runtime performs —
Pascal strings are arrays, so the natural rendering indexes both with
one counter.  Pascal strings cannot overlap (§4.3), which is *not*
expressible in the description — that gap is the movc3 failure.

``sequal`` is the internal-form comparison behind ``=`` on packed
arrays of char: scan until a mismatch, true when none.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

SASSIGN_TEXT = """
sassign.operation := begin
    ** SOURCE.ACCESS **
        Src.Base: integer,              ! source base address
        Dst.Base: integer,              ! destination base address
        Len: integer,                   ! characters to move
        i: integer                      ! copy index
    ** STRING.PROCESS **
        sassign.execute() := begin
            input (Src.Base, Dst.Base, Len);
            i <- 0;
            repeat
                exit_when (i = Len);
                Mb[ Dst.Base + i ] <- Mb[ Src.Base + i ];
                i <- i + 1;
            end_repeat;
        end
end
"""

SEQUAL_TEXT = """
sequal.operation := begin
    ** SOURCE.ACCESS **
        A.Base: integer,                ! first string base address
        B.Base: integer,                ! second string base address
        Len: integer                    ! characters to compare
    ** STATE **
        eq<>                            ! comparison result
    ** STRING.PROCESS **
        sequal.execute() := begin
            input (A.Base, B.Base, Len);
            eq <- 1;                    ! empty strings are equal
            repeat
                exit_when (Len = 0);
                eq <- (Mb[ A.Base ] = Mb[ B.Base ]);
                exit_when (not eq);
                A.Base <- A.Base + 1;
                B.Base <- B.Base + 1;
                Len <- Len - 1;
            end_repeat;
            output (eq);
        end
end
"""


@lru_cache(maxsize=None)
def sassign() -> ast.Description:
    """Pascal string assignment (compiler internal form)."""
    return parse_description(SASSIGN_TEXT)


@lru_cache(maxsize=None)
def sequal() -> ast.Description:
    """Pascal string equality comparison (compiler internal form)."""
    return parse_description(SEQUAL_TEXT)

TRANSLATE_TEXT = """
translate.operation := begin
    ! in-place translation of a string through a 256-byte table — the
    ! runtime kernel behind case conversion and character-set mapping
    ** SOURCE.ACCESS **
        S: integer,                     ! string base address
        T: integer,                     ! table base address
        Len: integer,                   ! characters to translate
        i: integer                      ! cursor
    ** STRING.PROCESS **
        translate.execute() := begin
            input (S, T, Len);
            i <- 0;
            repeat
                exit_when (i = Len);
                Mb[ S + i ] <- Mb[ T + Mb[ S + i ] ];
                i <- i + 1;
            end_repeat;
        end
end
"""


@lru_cache(maxsize=None)
def translate() -> ast.Description:
    """Pascal translate: map a string through a table, in place."""
    return parse_description(TRANSLATE_TEXT)
