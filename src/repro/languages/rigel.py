"""Rigel language operators (paper figure 2).

Rigel is "an experimental language designed for research into the
development of interactive data base applications" (Rowe et al., 1981).
Its ``index`` operator searches a string for a character and returns
the 1-based index of the first occurrence, or 0 when the character is
absent.  The description below is the paper's figure 2, transcribed:
the ``read()`` access routine fetches ``Mb[Src.Base + Src.Index]`` and
advances the index (advance-then-test style).
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

INDEX_TEXT = """
index.operation := begin
    ** SOURCE.ACCESS **
        Src.Base: integer,              ! string base address
        Src.Index: integer,             ! string index
        Src.Length: integer,            ! string length
        read(): integer := begin
            read <- Mb[ Src.Base + Src.Index ];
            Src.Index <- Src.Index + 1;
        end
    ** STATE **
        ch: character                   ! character sought
    ** STRING.PROCESS **
        index.execute() := begin
            input (Src.Base, Src.Length, ch);
            Src.Index <- 0;
            repeat
                exit_when (Src.Length = 0);     ! exit when string exhausted
                exit_when (ch = read());        ! exit if char is found
                Src.Length <- Src.Length - 1;
            end_repeat;
            if Src.Length = 0
            then
                output (0);             ! char not found
            else
                output (Src.Index);     ! char found
            end_if;
        end
end
"""


@lru_cache(maxsize=None)
def index() -> ast.Description:
    """The Rigel ``index`` operator (paper figure 2)."""
    return parse_description(INDEX_TEXT)
