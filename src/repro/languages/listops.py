"""Generic linked-list operators.

The paper's §1 motivates constraints with the Burroughs B4800 list
search: a language-level list search takes the offsets of the link and
key fields as parameters, while the B4800 instruction hard-wires the
link field to offset zero.  The description below is such a generic
runtime routine; nodes live in byte memory, with one cell holding the
link (so demo scenarios keep lists in the first 256 bytes).
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, parse_description

LSEARCH_TEXT = """
lsearch.operation := begin
    ** ARGUMENTS **
        Head: integer,                  ! first record (0 for empty list)
        Key: character,                 ! field value sought
        KeyOff: integer,                ! offset of the key field
        LinkOff: integer                ! offset of the link field
    ** LIST.PROCESS **
        lsearch.execute() := begin
            input (Head, Key, KeyOff, LinkOff);
            repeat
                exit_when (Head = 0);
                exit_when (Mb[ Head + KeyOff ] = Key);
                Head <- Mb[ Head + LinkOff ];
            end_repeat;
            output (Head);
        end
end
"""


@lru_cache(maxsize=None)
def lsearch() -> ast.Description:
    """Generic list search: record with the key, or 0."""
    return parse_description(LSEARCH_TEXT)
