"""Target-level assembly representation shared by emitters and simulators.

The three targets (Intel 8086, VAX-11, IBM 370) use the same structural
vocabulary — registers, immediates, runtime parameters, register-indirect
memory references, label references — with machine-specific mnemonics and
cost models.  Programs are flat instruction lists with interspersed
labels, which is all the generated code needs (no sections, no
relocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Reg:
    """A machine register operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ParamRef:
    """A runtime parameter, bound when the program is simulated.

    Stands in for addressing a compiler-allocated home location; the
    simulators charge it like an immediate/memory load.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class MemRef:
    """A register-indirect memory reference, optionally displaced."""

    base: Reg
    disp: int = 0

    def __str__(self) -> str:
        if self.disp:
            return f"{self.disp}({self.base})"
        return f"({self.base})"


@dataclass(frozen=True)
class LabelRef:
    """A reference to a label (branch target)."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, ParamRef, MemRef, LabelRef]


@dataclass(frozen=True)
class Instr:
    """One machine instruction."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()
    comment: Optional[str] = None

    def __str__(self) -> str:
        text = self.mnemonic
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        if self.comment:
            text = f"{text:<32}; {self.comment}"
        return text


@dataclass(frozen=True)
class Label:
    """A branch target in the instruction stream."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


Line = Union[Instr, Label]


@dataclass
class AsmProgram:
    """A generated program for one target machine."""

    machine: str
    lines: List[Line] = field(default_factory=list)

    def emit(
        self,
        mnemonic: str,
        *operands: Operand,
        comment: Optional[str] = None,
    ) -> None:
        self.lines.append(Instr(mnemonic, tuple(operands), comment))

    def label(self, name: str) -> None:
        self.lines.append(Label(name))

    def instructions(self) -> List[Instr]:
        return [line for line in self.lines if isinstance(line, Instr)]

    def listing(self) -> str:
        rendered = [f"; target: {self.machine}"]
        for line in self.lines:
            if isinstance(line, Label):
                rendered.append(str(line))
            else:
                rendered.append(f"    {line}")
        return "\n".join(rendered) + "\n"

    def __len__(self) -> int:
        return len(self.instructions())
