"""The exotic-instruction catalog behind the paper's Table 1.

"In a sample of 6 machines, representing 6 different manufacturers, 67
string and list processing exotic instructions were identified" (§2).
This module reproduces that catalog: six machines, their string/list
exotic instructions, and the per-machine counts (8086: 6, Eclipse: 5,
Univac 1100: 21, IBM 370: 7, B4800: 16, VAX-11: 12; total 67).

Where the paper names instructions (scasb, mvc, movc3, the B4800 list
search, the Eclipse string moves) or where the machine's reference
manual makes the string/list set well known (VAX-11, IBM 370, 8086),
real mnemonics are used.  The paper reports only *counts* for the rest;
those entries carry representative mnemonics flagged
``reconstructed=True`` so downstream users can tell documented fact
from reconstruction.

The catalog is no longer hand-maintained: every :class:`Machine` here
is generated from its declarative :class:`~repro.machines.spec.MachineSpec`
(see :mod:`repro.machines.registry`), the same data source that
generates the simulators, the lint coverage rows, and the
differential-fuzz matrix.  Machines added beyond the paper's sample
(Z80, M68000) appear in :data:`EXTENSION_MACHINES` and the lookup
functions, but never in :data:`MACHINES` or Table 1 — the paper's
counts are a fixed historical fact.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from . import registry
from .spec import MachineSpec


@dataclass(frozen=True)
class ExoticInstruction:
    """One catalog entry."""

    name: str
    operation: str
    #: instructions this reproduction fully models with an ISDL
    #: description (and, for Table 2 rows, an analysis script).
    modeled: bool = False
    #: True when the mnemonic is a representative reconstruction —
    #: Table 1 gives only the per-machine count.
    reconstructed: bool = False


@dataclass(frozen=True)
class Machine:
    """One catalogued machine."""

    name: str
    manufacturer: str
    instructions: Tuple[ExoticInstruction, ...]

    @property
    def count(self) -> int:
        return len(self.instructions)


def machine_from_spec(spec: MachineSpec) -> Machine:
    """Project a machine spec onto its catalog record."""
    return Machine(
        name=spec.name,
        manufacturer=spec.manufacturer,
        instructions=tuple(
            ExoticInstruction(
                name=instruction.mnemonic,
                operation=instruction.operation,
                modeled=instruction.modeled,
                reconstructed=instruction.reconstructed,
            )
            for instruction in spec.instructions
        ),
    )


INTEL_8086 = machine_from_spec(registry.machine_spec("i8086"))
DG_ECLIPSE = machine_from_spec(registry.machine_spec("eclipse"))
UNIVAC_1100 = machine_from_spec(registry.machine_spec("univac1100"))
IBM_370 = machine_from_spec(registry.machine_spec("ibm370"))
BURROUGHS_B4800 = machine_from_spec(registry.machine_spec("b4800"))
VAX_11 = machine_from_spec(registry.machine_spec("vax11"))

ZILOG_Z80 = machine_from_spec(registry.machine_spec("z80"))
MOTOROLA_68000 = machine_from_spec(registry.machine_spec("m68000"))

#: The paper's six machines, in Table 1 order.
MACHINES: Tuple[Machine, ...] = (
    INTEL_8086,
    DG_ECLIPSE,
    UNIVAC_1100,
    IBM_370,
    BURROUGHS_B4800,
    VAX_11,
)

#: Machines added beyond the paper's sample, as pure spec data.
EXTENSION_MACHINES: Tuple[Machine, ...] = (ZILOG_Z80, MOTOROLA_68000)

#: Every catalogued machine, paper sample first.
ALL_MACHINES: Tuple[Machine, ...] = MACHINES + EXTENSION_MACHINES

#: Table 1's per-machine counts, as printed in the paper.
PAPER_COUNTS: Dict[str, int] = {
    "Intel 8086": 6,
    "DG Eclipse": 5,
    "Univac 1100": 21,
    "IBM 370": 7,
    "Burroughs B4800": 16,
    "VAX-11": 12,
}

PAPER_TOTAL = 67


def table1_rows():
    """Rows of Table 1: (machine, our count, paper count)."""
    return [
        (machine.name, machine.count, PAPER_COUNTS[machine.name])
        for machine in MACHINES
    ]


def total_count() -> int:
    return sum(machine.count for machine in MACHINES)


# -- memoized catalog lookups ------------------------------------------
#
# The batch runner, the differential tests, and the code generators all
# resolve (machine, mnemonic) pairs repeatedly.  These lookups memoize
# both the name resolution and the elaborated ISDL description behind
# it (the parse itself is additionally content-keyed — repro.isdl.cache
# — so even distinct loaders of identical sources share one AST).

#: machine key -> module holding its ISDL description loaders.
DESCRIPTION_MODULES: Dict[str, str] = {
    spec.key: spec.description_module
    for spec in registry.all_specs()
    if spec.description_module is not None
}

#: machine key -> catalog machine name (Table 1 names plus extensions).
MACHINE_KEYS: Dict[str, str] = {
    spec.key: spec.name for spec in registry.all_specs()
}


@lru_cache(maxsize=None)
def machine_named(name: str) -> Machine:
    """The catalog entry for a machine name or a short machine key."""
    full = MACHINE_KEYS.get(name, name)
    for machine in ALL_MACHINES:
        if machine.name == full:
            return machine
    raise KeyError(f"unknown machine {name!r}")


@lru_cache(maxsize=None)
def instruction_named(machine: str, mnemonic: str) -> ExoticInstruction:
    """The catalog entry for one exotic instruction."""
    for instruction in machine_named(machine).instructions:
        if instruction.name == mnemonic:
            return instruction
    raise KeyError(f"{machine}: no instruction {mnemonic!r}")


@lru_cache(maxsize=None)
def load_description(machine: str, mnemonic: str):
    """The elaborated ISDL description of a modeled instruction.

    Memoized per (machine, mnemonic); raises ``KeyError`` for machines
    without a description module or mnemonics without a loader.
    """
    try:
        module_name = DESCRIPTION_MODULES[machine]
    except KeyError:
        raise KeyError(f"no description module for machine {machine!r}")
    module = importlib.import_module(module_name)
    loader = getattr(module, mnemonic, None)
    if loader is None:
        raise KeyError(f"{machine}: no ISDL description for {mnemonic!r}")
    return loader()


def modeled_mnemonics(machine: str) -> Tuple[str, ...]:
    """Mnemonics of ``machine`` that carry a full ISDL description."""
    return tuple(
        instruction.name
        for instruction in machine_named(machine).instructions
        if instruction.modeled
    )
