"""The exotic-instruction catalog behind the paper's Table 1.

"In a sample of 6 machines, representing 6 different manufacturers, 67
string and list processing exotic instructions were identified" (§2).
This module reproduces that catalog: six machines, their string/list
exotic instructions, and the per-machine counts (8086: 6, Eclipse: 5,
Univac 1100: 21, IBM 370: 7, B4800: 16, VAX-11: 12; total 67).

Where the paper names instructions (scasb, mvc, movc3, the B4800 list
search, the Eclipse string moves) or where the machine's reference
manual makes the string/list set well known (VAX-11, IBM 370, 8086),
real mnemonics are used.  The paper reports only *counts* for the rest;
those entries carry representative mnemonics flagged
``reconstructed=True`` so downstream users can tell documented fact
from reconstruction.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ExoticInstruction:
    """One catalog entry."""

    name: str
    operation: str
    #: instructions this reproduction fully models with an ISDL
    #: description (and, for Table 2 rows, an analysis script).
    modeled: bool = False
    #: True when the mnemonic is a representative reconstruction —
    #: Table 1 gives only the per-machine count.
    reconstructed: bool = False


@dataclass(frozen=True)
class Machine:
    """One of the six sampled machines."""

    name: str
    manufacturer: str
    instructions: Tuple[ExoticInstruction, ...]

    @property
    def count(self) -> int:
        return len(self.instructions)


def _instr(name, operation, modeled=False, reconstructed=False):
    return ExoticInstruction(name, operation, modeled, reconstructed)


INTEL_8086 = Machine(
    name="Intel 8086",
    manufacturer="Intel",
    instructions=(
        _instr("movsb", "string move", modeled=True),
        _instr("cmpsb", "string compare", modeled=True),
        _instr("scasb", "string search", modeled=True),
        _instr("lodsb", "string load"),
        _instr("stosb", "string store / fill", modeled=True),
        _instr("xlat", "table translate"),
    ),
)

DG_ECLIPSE = Machine(
    name="DG Eclipse",
    manufacturer="Data General",
    instructions=(
        _instr("cmv", "character move (sign-encoded direction)", modeled=True),
        _instr("cmp", "character compare"),
        _instr("ctr", "character translate"),
        _instr("cmt", "character move until true"),
        _instr("edit", "string edit"),
    ),
)

UNIVAC_1100 = Machine(
    name="Univac 1100",
    manufacturer="Sperry Univac",
    instructions=tuple(
        _instr(name, operation, reconstructed=True)
        for name, operation in (
            ("bt", "block transfer"),
            ("btt", "block transfer and translate"),
            ("bim", "byte incremental move"),
            ("bimt", "byte incremental move and translate"),
            ("bicl", "byte incremental compare limit"),
            ("bde", "byte decimal edit"),
            ("bdsub", "byte decimal subtract"),
            ("bdadd", "byte decimal add"),
            ("sfs", "search forward for sentinel"),
            ("sfc", "search forward for character"),
            ("sne", "search not equal"),
            ("se", "search equal"),
            ("sle", "search less or equal"),
            ("sg", "search greater"),
            ("sw", "search within limits"),
            ("snw", "search not within limits"),
            ("mse", "masked search equal"),
            ("msne", "masked search not equal"),
            ("msle", "masked search less or equal"),
            ("msg", "masked search greater"),
            ("bf", "byte fill"),
        )
    ),
)

IBM_370 = Machine(
    name="IBM 370",
    manufacturer="IBM",
    instructions=(
        _instr("mvc", "move characters", modeled=True),
        _instr("mvcl", "move characters long"),
        _instr("clc", "compare logical characters", modeled=True),
        _instr("clcl", "compare logical characters long"),
        _instr("tr", "translate", modeled=True),
        _instr("trt", "translate and test"),
        _instr("ed", "edit"),
    ),
)

BURROUGHS_B4800 = Machine(
    name="Burroughs B4800",
    manufacturer="Burroughs",
    instructions=(
        _instr("srl", "search linked list", modeled=True),
        _instr("mva", "move alphanumeric (length encoded minus one)", modeled=True),
        _instr("lnk", "link list element", reconstructed=True),
        _instr("ulnk", "unlink list element", reconstructed=True),
    )
    + tuple(
        _instr(name, operation, reconstructed=True)
        for name, operation in (
            ("mvn", "move numeric"),
            
            ("mvr", "move repeated"),
            ("mvl", "move with length"),
            ("cmn", "compare numeric"),
            ("cma", "compare alphanumeric"),
            ("sea", "search for character equal"),
            ("sne", "search for character not equal"),
            ("tws", "translate while searching"),
            ("trn", "translate"),
            ("edt", "edit"),
            ("mfd", "move with format and delimiters"),
            ("scn", "scan string"),
        )
    ),
)

VAX_11 = Machine(
    name="VAX-11",
    manufacturer="DEC",
    instructions=(
        _instr("movc3", "move character 3-operand", modeled=True),
        _instr("movc5", "move character 5-operand (with fill)", modeled=True),
        _instr("cmpc3", "compare characters 3-operand", modeled=True),
        _instr("cmpc5", "compare characters 5-operand"),
        _instr("locc", "locate character", modeled=True),
        _instr("skpc", "skip character", modeled=True),
        _instr("scanc", "scan for character in set"),
        _instr("spanc", "span characters in set"),
        _instr("matchc", "match characters"),
        _instr("movtc", "move translated characters"),
        _instr("movtuc", "move translated until character"),
        _instr("crc", "cyclic redundancy check"),
    ),
)

#: All six machines, in the paper's Table 1 order.
MACHINES: Tuple[Machine, ...] = (
    INTEL_8086,
    DG_ECLIPSE,
    UNIVAC_1100,
    IBM_370,
    BURROUGHS_B4800,
    VAX_11,
)

#: Table 1's per-machine counts, as printed in the paper.
PAPER_COUNTS: Dict[str, int] = {
    "Intel 8086": 6,
    "DG Eclipse": 5,
    "Univac 1100": 21,
    "IBM 370": 7,
    "Burroughs B4800": 16,
    "VAX-11": 12,
}

PAPER_TOTAL = 67


def table1_rows():
    """Rows of Table 1: (machine, our count, paper count)."""
    return [
        (machine.name, machine.count, PAPER_COUNTS[machine.name])
        for machine in MACHINES
    ]


def total_count() -> int:
    return sum(machine.count for machine in MACHINES)


# -- memoized catalog lookups ------------------------------------------
#
# The batch runner, the differential tests, and the code generators all
# resolve (machine, mnemonic) pairs repeatedly.  These lookups memoize
# both the name resolution and the elaborated ISDL description behind
# it (the parse itself is additionally content-keyed — repro.isdl.cache
# — so even distinct loaders of identical sources share one AST).

#: machine key -> module holding its ISDL description loaders.
DESCRIPTION_MODULES: Dict[str, str] = {
    "i8086": "repro.machines.i8086.descriptions",
    "vax11": "repro.machines.vax11.descriptions",
    "ibm370": "repro.machines.ibm370.descriptions",
    "b4800": "repro.machines.b4800.descriptions",
    "eclipse": "repro.machines.eclipse.descriptions",
}

#: machine key -> Table 1 machine name.
MACHINE_KEYS: Dict[str, str] = {
    "i8086": "Intel 8086",
    "eclipse": "DG Eclipse",
    "univac1100": "Univac 1100",
    "ibm370": "IBM 370",
    "b4800": "Burroughs B4800",
    "vax11": "VAX-11",
}


@lru_cache(maxsize=None)
def machine_named(name: str) -> Machine:
    """The catalog entry for a Table 1 name or a short machine key."""
    full = MACHINE_KEYS.get(name, name)
    for machine in MACHINES:
        if machine.name == full:
            return machine
    raise KeyError(f"unknown machine {name!r}")


@lru_cache(maxsize=None)
def instruction_named(machine: str, mnemonic: str) -> ExoticInstruction:
    """The catalog entry for one exotic instruction."""
    for instruction in machine_named(machine).instructions:
        if instruction.name == mnemonic:
            return instruction
    raise KeyError(f"{machine}: no instruction {mnemonic!r}")


@lru_cache(maxsize=None)
def load_description(machine: str, mnemonic: str):
    """The elaborated ISDL description of a modeled instruction.

    Memoized per (machine, mnemonic); raises ``KeyError`` for machines
    without a description module or mnemonics without a loader.
    """
    try:
        module_name = DESCRIPTION_MODULES[machine]
    except KeyError:
        raise KeyError(f"no description module for machine {machine!r}")
    module = importlib.import_module(module_name)
    loader = getattr(module, mnemonic, None)
    if loader is None:
        raise KeyError(f"{machine}: no ISDL description for {mnemonic!r}")
    return loader()


def modeled_mnemonics(machine: str) -> Tuple[str, ...]:
    """Mnemonics of ``machine`` that carry a full ISDL description."""
    return tuple(
        instruction.name
        for instruction in machine_named(machine).instructions
        if instruction.modeled
    )
