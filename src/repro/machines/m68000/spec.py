"""Declarative spec for the Motorola 68000.

Like the Z80, the 68000 is added as pure data: ``cmpm`` runs on the
shared ``mem_compare_step`` kind and ``tas`` on ``test_and_set``; no
68000-specific simulator code exists.  The catalog also records the
68000 exotica the analyses do not yet transform — ``movem``'s
register-mask operand, ``movep``'s alternate-byte transfers, the
``dbra`` loop primitive, and ``chk``'s trapping bound check — as
``modeled=False`` so coverage reporting stays honest.

Cycle figures are the published best-case timings (``cmpm`` 12,
``tas`` 14 register-indirect).  ``paper=False``: the 68000 postdates
the paper's Table 1 sample.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="m68000",
    name="Motorola 68000",
    manufacturer="Motorola",
    word_bits=32,
    registers=(
        "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7",
        "a0", "a1", "a2", "a3", "a4", "a5", "a6",
    ),
    paper=False,
    sim_name="68000",
    load_op="move",
    description_module="repro.machines.m68000.descriptions",
    instructions=(
        InstructionSpec(
            "cmpm",
            "compare memory, postincrement",
            modeled=True,
            sim_op="cmpm",
        ),
        InstructionSpec(
            "tas", "test and set, indivisible", modeled=True, sim_op="tas"
        ),
        InstructionSpec("movem", "move multiple registers (mask operand)"),
        InstructionSpec("movep", "move peripheral (alternate bytes)"),
        InstructionSpec("dbra", "decrement and branch"),
        InstructionSpec("chk", "check register against bounds, trap"),
    ),
    operations=(
        OpSpec("move", "move", CostSpec(4)),
        OpSpec("cmp", "compare", CostSpec(4)),
        OpSpec("bra", "jump", CostSpec(10)),
        OpSpec("beq", "branch", CostSpec(10), {"flag": "z", "want": 1}),
        OpSpec("bne", "branch", CostSpec(10), {"flag": "z", "want": 0}),
        OpSpec("cmpm", "mem_compare_step", CostSpec(12), {"step": 1}),
        OpSpec("tas", "test_and_set", CostSpec(14)),
    ),
    fuzz=(
        FuzzCase(
            name="cmpm",
            sim_op="cmpm",
            vars=(
                ("a0addr", ("choice", (16, 17, 18, 19))),
                ("a1addr", ("choice", (300, 301, 302, 303))),
            ),
            # mirror biases the compared bytes toward equality.
            memory=(("string", 16, 8), ("mirror_maybe", 300, 16, 8)),
            isdl_inputs=(
                ("a0", ("var", "a0addr")),
                ("a1", ("var", "a1addr")),
            ),
            params=(
                ("a0", ("var", "a0addr")),
                ("a1", ("var", "a1addr")),
            ),
            setup=(("a0", ("param", "a0")), ("a1", ("param", "a1"))),
            operands=(("reg", "a0"), ("reg", "a1")),
            outputs=(("flag", "z"), ("reg", "a0"), ("reg", "a1")),
        ),
        FuzzCase(
            name="tas",
            sim_op="tas",
            vars=(
                ("addr", ("int", 16, 31)),
                # bias the byte toward the decision boundaries: zero
                # (sets Z) and values with bit 7 already set.
                ("val", ("choice", (0, 0, 5, 127, 128, 200, 255))),
            ),
            memory=(("cell", ("var", "addr"), ("var", "val")),),
            isdl_inputs=(("addr", ("var", "addr")),),
            params=(("addr", ("var", "addr")),),
            setup=(("a0", ("param", "addr")),),
            operands=(("mem", "a0"),),
            outputs=(("flag", "z"),),
        ),
    ),
)
