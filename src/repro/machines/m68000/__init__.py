"""Motorola 68000: exotic-instruction descriptions and spec-generated
simulator — added as pure data (no machine-specific simulator code)."""

from ..specsim import spec_simulator
from .descriptions import cmpm, tas
from .spec import SPEC

#: Executes the 68000 subset, generated entirely from the spec.
M68000Simulator = spec_simulator(SPEC)

__all__ = ["SPEC", "M68000Simulator", "cmpm", "tas"]
