"""ISDL descriptions of the Motorola 68000 exotica we model.

The 68000's exotic instructions are mostly *addressing-mode* exotica
(``movem``'s register masks, ``movep``'s alternate-byte transfers)
that the catalog records but the analyses do not yet transform.  The
two modeled here are the ones the paper's machinery speaks to
directly:

* ``cmpm`` — the string-compare *step*: compare two memory bytes
  through address registers and post-increment both.  It is the body
  of the ``dbra``-driven compare loop, i.e. the 68000's answer to
  ``cmpsb`` without the repeat prefix.
* ``tas`` — test-and-set: an indivisible read-modify-write that tests
  a byte and sets its high bit.  The read/decide/write shape is the
  minimal case of the paper's "state observed then conditionally
  rewritten" pattern.
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

CMPM_TEXT = """
cmpm.instruction := begin
    ! compare memory byte to memory byte, postincrement both
    ** SOURCE.ACCESS **
        a0<31:0>,                       ! first operand address
        a1<31:0>                        ! second operand address
    ** STATE **
        zf<>                            ! zero (equal) flag
    ** STRING.PROCESS **
        cmpm.execute() := begin
            input (a0, a1);
            if (Mb[ a0 ] - Mb[ a1 ]) = 0
            then
                zf <- 1;
            else
                zf <- 0;
            end_if;
            a0 <- a0 + 1;               ! postincrement addressing
            a1 <- a1 + 1;
            output (zf, a0, a1);
        end
end
"""

TAS_TEXT = """
tas.instruction := begin
    ! test a byte and set its high bit, indivisibly
    ** SOURCE.ACCESS **
        addr<31:0>                      ! operand address
    ** STATE **
        val<7:0>,                       ! the byte under test
        zf<>                            ! zero flag from the test
    ** STRING.PROCESS **
        tas.execute() := begin
            input (addr);
            val <- Mb[ addr ];
            if val = 0
            then
                zf <- 1;
            else
                zf <- 0;
            end_if;
            if val < 128
            then
                Mb[ addr ] <- val + 128;    ! set bit 7
            else
                Mb[ addr ] <- val;          ! already set
            end_if;
            output (zf);
        end
end
"""


@lru_cache(maxsize=None)
def cmpm() -> ast.Description:
    """The cmpm (compare memory, postincrement) instruction."""
    return parse_description(CMPM_TEXT)


@lru_cache(maxsize=None)
def tas() -> ast.Description:
    """The tas (test and set) instruction."""
    return parse_description(TAS_TEXT)
