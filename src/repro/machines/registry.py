"""The machine-spec registry: one place that knows every machine.

``catalog.py``, the lint engine, the fuzz matrix, and the ``repro
machines`` surface all iterate this registry rather than keeping their
own machine lists — adding a machine means adding one spec module and
one row here.

Loading a spec re-validates it (structure at import of the spec
module, ISDL description resolution here), so a spec whose modeled
instruction lost its loader fails at first use with the instruction's
exact field path, not at some later lint run.
"""

from __future__ import annotations

import importlib
from functools import lru_cache
from typing import Dict, Tuple

from .spec import MachineSpec, validate_descriptions

#: machine key -> module holding its ``SPEC``.
SPEC_MODULES: Dict[str, str] = {
    "i8086": "repro.machines.i8086.spec",
    "eclipse": "repro.machines.eclipse.spec",
    "univac1100": "repro.machines.univac1100.spec",
    "ibm370": "repro.machines.ibm370.spec",
    "b4800": "repro.machines.b4800.spec",
    "vax11": "repro.machines.vax11.spec",
    "z80": "repro.machines.z80.spec",
    "m68000": "repro.machines.m68000.spec",
}

#: the paper's Table 1 sample, in Table 1 row order.
PAPER_KEYS: Tuple[str, ...] = (
    "i8086",
    "eclipse",
    "univac1100",
    "ibm370",
    "b4800",
    "vax11",
)

#: machines added beyond the paper's sample, as pure spec data.
EXTENSION_KEYS: Tuple[str, ...] = ("z80", "m68000")

#: every machine key, paper sample first.
ALL_KEYS: Tuple[str, ...] = PAPER_KEYS + EXTENSION_KEYS


@lru_cache(maxsize=None)
def machine_spec(key: str) -> MachineSpec:
    """Load, validate, and cache the spec for ``key``."""
    try:
        module_name = SPEC_MODULES[key]
    except KeyError:
        raise KeyError(f"no machine spec for {key!r}") from None
    module = importlib.import_module(module_name)
    spec: MachineSpec = module.SPEC
    if spec.key != key:
        raise KeyError(
            f"machines.{key}: spec module {module_name!r} declares "
            f"key {spec.key!r}"
        )
    validate_descriptions(spec)
    return spec


def all_specs() -> Tuple[MachineSpec, ...]:
    """Every registered spec, paper sample first."""
    return tuple(machine_spec(key) for key in ALL_KEYS)


def paper_specs() -> Tuple[MachineSpec, ...]:
    """The Table 1 sample, in row order."""
    return tuple(machine_spec(key) for key in PAPER_KEYS)
