"""Target machines: declarative specs, Table 1 catalog, generated simulators."""

from .catalog import (
    ALL_MACHINES,
    EXTENSION_MACHINES,
    MACHINES,
    PAPER_COUNTS,
    PAPER_TOTAL,
    Machine,
    instruction_named,
    load_description,
    machine_named,
    modeled_mnemonics,
    table1_rows,
    total_count,
)
from .registry import all_specs, machine_spec
from .simbase import SimResult, SimulationError, Simulator
from .spec import MachineSpec, SpecError

__all__ = [
    "ALL_MACHINES",
    "EXTENSION_MACHINES",
    "MACHINES",
    "PAPER_COUNTS",
    "PAPER_TOTAL",
    "Machine",
    "MachineSpec",
    "SpecError",
    "all_specs",
    "instruction_named",
    "load_description",
    "machine_named",
    "machine_spec",
    "modeled_mnemonics",
    "table1_rows",
    "total_count",
    "SimResult",
    "SimulationError",
    "Simulator",
]
