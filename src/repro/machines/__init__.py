"""Target machines: instruction descriptions, Table 1 catalog, simulators."""

from .catalog import (
    MACHINES,
    PAPER_COUNTS,
    PAPER_TOTAL,
    Machine,
    instruction_named,
    load_description,
    machine_named,
    modeled_mnemonics,
    table1_rows,
    total_count,
)
from .simbase import SimResult, SimulationError, Simulator

__all__ = [
    "MACHINES",
    "PAPER_COUNTS",
    "PAPER_TOTAL",
    "Machine",
    "instruction_named",
    "load_description",
    "machine_named",
    "modeled_mnemonics",
    "table1_rows",
    "total_count",
    "SimResult",
    "SimulationError",
    "Simulator",
]
