"""Declarative spec for the Zilog Z80 — the "adding a machine is a
data exercise" demonstration (docs/machines.md walks through it).

No Z80-specific simulator code exists: the block instructions run on
the shared ``rep_move``/``rep_scan`` kinds, parameterized with the
Z80's register protocol (HL source, DE destination, BC counter) and
step direction.  Cycle figures are the documented T-state counts
(21 per repeated iteration; ``ld r, n`` is 7).

The Z80 postdates the paper's sample, so ``paper=False``: it extends
the catalog without disturbing Table 1's counts.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="z80",
    name="Zilog Z80",
    manufacturer="Zilog",
    word_bits=16,
    # Register pairs are modeled as single 16-bit registers; A rides
    # along for the compare forms' key byte.
    registers=("a", "bc", "de", "hl"),
    paper=False,
    sim_name="Z80",
    load_op="ld",
    description_module="repro.machines.z80.descriptions",
    instructions=(
        InstructionSpec("ldi", "block move step, ascending"),
        InstructionSpec(
            "ldir", "block move, ascending", modeled=True, sim_op="ldir"
        ),
        InstructionSpec("ldd", "block move step, descending"),
        InstructionSpec(
            "lddr", "block move, descending", modeled=True, sim_op="lddr"
        ),
        InstructionSpec("cpi", "block scan step, ascending"),
        InstructionSpec(
            "cpir", "block scan, ascending", modeled=True, sim_op="cpir"
        ),
        InstructionSpec("cpd", "block scan step, descending"),
        InstructionSpec(
            "cpdr", "block scan, descending", modeled=True, sim_op="cpdr"
        ),
    ),
    operations=(
        OpSpec("ld", "move", CostSpec(7)),
        OpSpec("inc", "step", CostSpec(6), {"delta": 1}),
        OpSpec("dec", "step", CostSpec(6), {"delta": -1}),
        OpSpec("cp", "compare", CostSpec(4)),
        OpSpec("jp", "jump", CostSpec(10)),
        OpSpec("jr_z", "branch", CostSpec(12), {"flag": "z", "want": 1}),
        OpSpec("jr_nz", "branch", CostSpec(12), {"flag": "z", "want": 0}),
        OpSpec(
            "ldir",
            "rep_move",
            CostSpec(16, per_unit=21, unit="rep"),
            {"src": "hl", "dst": "de", "count": "bc", "step": 1},
        ),
        OpSpec(
            "lddr",
            "rep_move",
            CostSpec(16, per_unit=21, unit="rep"),
            {"src": "hl", "dst": "de", "count": "bc", "step": -1},
        ),
        OpSpec(
            "cpir",
            "rep_scan",
            CostSpec(16, per_unit=21, unit="rep"),
            {"ptr": "hl", "count": "bc", "key": "a", "step": 1},
        ),
        OpSpec(
            "cpdr",
            "rep_scan",
            CostSpec(16, per_unit=21, unit="rep"),
            {"ptr": "hl", "count": "bc", "key": "a", "step": -1},
        ),
    ),
    fuzz=(
        FuzzCase(
            name="ldir",
            sim_op="ldir",
            vars=(("bc", ("int", 0, 12)),),
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(
                ("hl", 16),
                ("de", 300),
                ("bc", ("var", "bc")),
            ),
            params=(("hl", 16), ("de", 300), ("bc", ("var", "bc"))),
            setup=(
                ("hl", ("param", "hl")),
                ("de", ("param", "de")),
                ("bc", ("param", "bc")),
            ),
            outputs=(("reg", "hl"), ("reg", "de"), ("reg", "bc")),
        ),
        FuzzCase(
            name="lddr",
            sim_op="lddr",
            vars=(("bc", ("int", 0, 12)),),
            # descending: start at the high end of each region.
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(
                ("hl", 31),
                ("de", 315),
                ("bc", ("var", "bc")),
            ),
            params=(("hl", 31), ("de", 315), ("bc", ("var", "bc"))),
            setup=(
                ("hl", ("param", "hl")),
                ("de", ("param", "de")),
                ("bc", ("param", "bc")),
            ),
            outputs=(("reg", "hl"), ("reg", "de"), ("reg", "bc")),
        ),
        FuzzCase(
            name="cpir",
            sim_op="cpir",
            vars=(
                ("bc", ("int", 0, 12)),
                ("a", ("byte_from", 16, 16)),
            ),
            memory=(("string", 16, 16),),
            isdl_inputs=(
                ("a", ("var", "a")),
                ("zf", 0),
                ("hl", 16),
                ("bc", ("var", "bc")),
            ),
            params=(("a", ("var", "a")), ("hl", 16), ("bc", ("var", "bc"))),
            setup=(
                ("a", ("param", "a")),
                ("hl", ("param", "hl")),
                ("bc", ("param", "bc")),
            ),
            outputs=(("flag", "z"), ("reg", "hl"), ("reg", "bc")),
        ),
        FuzzCase(
            name="cpdr",
            sim_op="cpdr",
            vars=(
                ("bc", ("int", 0, 12)),
                ("a", ("byte_from", 16, 16)),
            ),
            memory=(("string", 16, 16),),
            isdl_inputs=(
                ("a", ("var", "a")),
                ("zf", 0),
                ("hl", 31),
                ("bc", ("var", "bc")),
            ),
            params=(("a", ("var", "a")), ("hl", 31), ("bc", ("var", "bc"))),
            setup=(
                ("a", ("param", "a")),
                ("hl", ("param", "hl")),
                ("bc", ("param", "bc")),
            ),
            outputs=(("flag", "z"), ("reg", "hl"), ("reg", "bc")),
        ),
    ),
)
