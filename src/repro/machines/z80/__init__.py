"""Zilog Z80: block-instruction descriptions and spec-generated
simulator — added as pure data (no machine-specific simulator code)."""

from ..specsim import spec_simulator
from .descriptions import cpdr, cpir, lddr, ldir
from .spec import SPEC

#: Executes the Z80 subset, generated entirely from the spec.
Z80Simulator = spec_simulator(SPEC)

__all__ = ["SPEC", "Z80Simulator", "cpdr", "cpir", "lddr", "ldir"]
