"""ISDL descriptions of the Zilog Z80 block instructions.

The Z80's block group (``ldir``/``lddr``/``cpir``/``cpdr``) is the
microprocessor generation's take on the paper's repeat-prefixed string
instructions: HL is the source/scan pointer, DE the destination, BC
the counter, and the R suffix repeats until BC reaches zero (the
compare forms also stop on a match, like ``repne scasb``).  The
descriptions follow the style of the 8086 figures — ``fetch`` access
routines that advance their pointer — without the 8086's
direction-flag machinery, since direction is part of the opcode
(``ldir`` vs ``lddr``).
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

LDIR_TEXT = """
ldir.instruction := begin
    ! block move, ascending addresses, repeat until bc = 0
    ** SOURCE.ACCESS **
        hl<15:0>,                       ! source string address
        de<15:0>,                       ! destination string address
        bc<15:0>,                       ! byte counter
        fetch()<7:0> := begin           ! fetch source character
            fetch <- Mb[ hl ];
            hl <- hl + 1;               ! ascending addresses
        end
    ** STRING.PROCESS **
        ldir.execute() := begin
            input (hl, de, bc);
            repeat
                exit_when (bc = 0);
                bc <- bc - 1;
                Mb[ de ] <- fetch();
                de <- de + 1;
            end_repeat;
            output (hl, de, bc);
        end
end
"""

LDDR_TEXT = """
lddr.instruction := begin
    ! block move, descending addresses, repeat until bc = 0
    ** SOURCE.ACCESS **
        hl<15:0>,                       ! source string address
        de<15:0>,                       ! destination string address
        bc<15:0>,                       ! byte counter
        fetch()<7:0> := begin           ! fetch source character
            fetch <- Mb[ hl ];
            hl <- hl - 1;               ! descending addresses
        end
    ** STRING.PROCESS **
        lddr.execute() := begin
            input (hl, de, bc);
            repeat
                exit_when (bc = 0);
                bc <- bc - 1;
                Mb[ de ] <- fetch();
                de <- de - 1;
            end_repeat;
            output (hl, de, bc);
        end
end
"""

CPIR_TEXT = """
cpir.instruction := begin
    ! block scan for the accumulator byte, ascending addresses
    ** SOURCE.ACCESS **
        hl<15:0>,                       ! scan pointer
        bc<15:0>,                       ! byte counter
        fetch()<7:0> := begin           ! fetch scanned character
            fetch <- Mb[ hl ];
            hl <- hl + 1;
        end
    ** STATE **
        a<7:0>,                         ! character sought
        zf<>                            ! last compare zero flag
    ** STRING.PROCESS **
        cpir.execute() := begin
            input (a, zf, hl, bc);
            repeat
                exit_when (bc = 0);
                bc <- bc - 1;
                if (a - fetch()) = 0
                then
                    zf <- 1;
                else
                    zf <- 0;
                end_if;
                exit_when (zf = 1);     ! stop on match
            end_repeat;
            output (zf, hl, bc);
        end
end
"""

CPDR_TEXT = """
cpdr.instruction := begin
    ! block scan for the accumulator byte, descending addresses
    ** SOURCE.ACCESS **
        hl<15:0>,                       ! scan pointer
        bc<15:0>,                       ! byte counter
        fetch()<7:0> := begin           ! fetch scanned character
            fetch <- Mb[ hl ];
            hl <- hl - 1;
        end
    ** STATE **
        a<7:0>,                         ! character sought
        zf<>                            ! last compare zero flag
    ** STRING.PROCESS **
        cpdr.execute() := begin
            input (a, zf, hl, bc);
            repeat
                exit_when (bc = 0);
                bc <- bc - 1;
                if (a - fetch()) = 0
                then
                    zf <- 1;
                else
                    zf <- 0;
                end_if;
                exit_when (zf = 1);     ! stop on match
            end_repeat;
            output (zf, hl, bc);
        end
end
"""


@lru_cache(maxsize=None)
def ldir() -> ast.Description:
    """The ldir (block move, ascending) instruction."""
    return parse_description(LDIR_TEXT)


@lru_cache(maxsize=None)
def lddr() -> ast.Description:
    """The lddr (block move, descending) instruction."""
    return parse_description(LDDR_TEXT)


@lru_cache(maxsize=None)
def cpir() -> ast.Description:
    """The cpir (block scan, ascending) instruction."""
    return parse_description(CPIR_TEXT)


@lru_cache(maxsize=None)
def cpdr() -> ast.Description:
    """The cpdr (block scan, descending) instruction."""
    return parse_description(CPDR_TEXT)
