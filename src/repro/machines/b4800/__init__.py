"""Burroughs B4800: the linked-list search of the paper's introduction."""

from .descriptions import mva, srl
from .sim import B4800Simulator

__all__ = ["mva", "srl", "B4800Simulator"]
