"""Declarative spec for the Burroughs B4800.

A small accumulator-style subset sufficient for the list-search
codegen, plus the paper's §1 showpiece: ``srl``, search linked list
(link field at offset 0).  Cycle figures are representative of a
mid-1970s mid-range machine — slowish primitive operations, a
microcoded search that beats the equivalent loop comfortably.  Table 1
reports 16 string/list instructions for the B4800; beyond the two
modeled ones and the two named in the paper's prose (``lnk``/
``ulnk``), the entries are representative reconstructions.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="b4800",
    name="Burroughs B4800",
    manufacturer="Burroughs",
    word_bits=16,
    registers=("ra", "rb", "rc", "rd", "re", "rf"),
    sim_name="B4800",
    load_op="ld",
    description_module="repro.machines.b4800.descriptions",
    instructions=(
        InstructionSpec("srl", "search linked list", modeled=True, sim_op="srl"),
        InstructionSpec(
            "mva",
            "move alphanumeric (length encoded minus one)",
            modeled=True,
            sim_op="mva",
        ),
        InstructionSpec("lnk", "link list element", reconstructed=True),
        InstructionSpec("ulnk", "unlink list element", reconstructed=True),
        InstructionSpec("mvn", "move numeric", reconstructed=True),
        InstructionSpec("mvr", "move repeated", reconstructed=True),
        InstructionSpec("mvl", "move with length", reconstructed=True),
        InstructionSpec("cmn", "compare numeric", reconstructed=True),
        InstructionSpec("cma", "compare alphanumeric", reconstructed=True),
        InstructionSpec("sea", "search for character equal", reconstructed=True),
        InstructionSpec("sne", "search for character not equal", reconstructed=True),
        InstructionSpec("tws", "translate while searching", reconstructed=True),
        InstructionSpec("trn", "translate", reconstructed=True),
        InstructionSpec("edt", "edit", reconstructed=True),
        InstructionSpec("mfd", "move with format and delimiters", reconstructed=True),
        InstructionSpec("scn", "scan string", reconstructed=True),
    ),
    operations=(
        # load register (immediate / register / memory byte)
        OpSpec("ld", "move", CostSpec(6)),
        OpSpec("st", "byte_store", CostSpec(8)),
        OpSpec("add", "alu", CostSpec(6), {"op": "add"}),
        OpSpec("sub", "alu", CostSpec(6), {"op": "sub"}),
        OpSpec("cmp", "compare", CostSpec(6)),
        OpSpec("br", "jump", CostSpec(8)),
        OpSpec("brz", "branch", CostSpec(8), {"flag": "z", "want": 1}),
        OpSpec("brnz", "branch", CostSpec(8), {"flag": "z", "want": 0}),
        OpSpec(
            "srl",
            "list_search",
            CostSpec(20, per_unit=12, unit="node"),
            {"result": "ra"},
        ),
        OpSpec("mva", "block_move_lc", CostSpec(14, per_unit=4, unit="byte")),
    ),
    fuzz=(
        FuzzCase(
            name="srl",
            sim_op="srl",
            # the linked_list directive injects head/key/offs vars.
            memory=(("linked_list",),),
            isdl_inputs=(
                ("ptr", ("var", "head")),
                ("key", ("var", "key")),
                ("offs", ("var", "offs")),
            ),
            params=(
                ("head", ("var", "head")),
                ("key", ("var", "key")),
                ("offs", ("var", "offs")),
            ),
            operands=(("param", "head"), ("param", "key"), ("param", "offs")),
            outputs=(("reg", "ra"),),
        ),
        FuzzCase(
            name="mva",
            sim_op="mva",
            # encoded length: moves code + 1 bytes
            vars=(("len", ("int", 0, 12)),),
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(("a1", 300), ("a2", 16), ("len", ("var", "len"))),
            params=(("dst", 300), ("src", 16), ("len", ("var", "len"))),
            operands=(("param", "dst"), ("param", "src"), ("param", "len")),
            outputs=(),
        ),
    ),
)
