"""ISDL description of the Burroughs B4800 linked-list search.

"The Burroughs B4800 has an instruction to search through a linked list
of records for a record with a specified field.  However, the
instruction assumes that the link field of the list is the first field
in the record.  Thus, the B4800 instruction can only be used to
implement a general list search operation if a specific constraint is
satisfied, namely, that the link field is the first field of the
record" (paper §1).

The description follows that contract: the link is read at offset 0
(``Mb[ptr]``), the key at an instruction-supplied offset.  Pointers are
stored in single memory cells, so the demo analyses keep list nodes in
the first 256 bytes of memory (one-cell links; noted in the analysis
scenario specs).
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

SRL_TEXT = """
srl.instruction := begin
    ** OPERANDS **
        ptr<15:0>,                      ! head of the list (0 terminates)
        key<7:0>,                       ! field value sought
        offs<7:0>                       ! offset of the key field
    ** STRING.PROCESS **
        srl.execute() := begin
            input (ptr, key, offs);
            repeat
                exit_when (ptr = 0);
                exit_when (Mb[ ptr + offs ] = key);
                ptr <- Mb[ ptr ];       ! link field must be FIRST in the record
            end_repeat;
            output (ptr);
        end
end
"""


@lru_cache(maxsize=None)
def srl() -> ast.Description:
    """srl: search linked list (link field at offset zero)."""
    return parse_description(SRL_TEXT)

MVA_TEXT = """
mva.instruction := begin
    ! Burroughs move alphanumeric: like the IBM 370 mvc, the length
    ! field encodes count - 1 (paper footnote 5: "this type of encoding
    ! ... also occurs on at least one other machine (the Burroughs
    ! B4800)").
    ** OPERANDS **
        a1<15:0>,                       ! destination address
        a2<15:0>,                       ! source address
        len<7:0>                        ! length code: moves len + 1 bytes
    ** STRING.PROCESS **
        mva.execute() := begin
            input (a1, a2, len);
            len <- len + 1;             ! moves length-code-plus-one bytes
            repeat
                Mb[ a1 ] <- Mb[ a2 ];
                a1 <- a1 + 1;
                a2 <- a2 + 1;
                len <- len - 1;
                exit_when (len = 0);
            end_repeat;
        end
end
"""


@lru_cache(maxsize=None)
def mva() -> ast.Description:
    """mva: move alphanumeric (length encoded minus one, footnote 5)."""
    return parse_description(MVA_TEXT)
