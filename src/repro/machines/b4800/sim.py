"""Burroughs B4800 simulator, generated from the declarative machine
spec.

``srl`` — search linked list, the paper's §1 showpiece — runs on the
shared ``list_search`` kind (:mod:`repro.machines.specsim`); the
B4800's register file, costs, and operation table are data in
:mod:`repro.machines.b4800.spec`.
"""

from __future__ import annotations

from ..specsim import spec_simulator
from .spec import SPEC

#: Executes the B4800 subset; drop-in for the old hand-written class.
B4800Simulator = spec_simulator(SPEC)
