"""Burroughs B4800 subset simulator.

A small accumulator-style subset sufficient for the list-search
codegen: address/register loads, byte memory access, branches, and the
``srl`` search-linked-list instruction itself (link field at offset 0,
as the paper's §1 describes).  Cycle figures are representative of a
mid-1970s mid-range machine: slowish primitive operations, a
microcoded search that beats the equivalent loop comfortably.
"""

from __future__ import annotations

from ...asm import Imm, Instr, MemRef, Reg
from ..simbase import SimulationError, Simulator


class B4800Simulator(Simulator):
    """Executes the B4800 subset."""

    REGISTERS = ("ra", "rb", "rc", "rd", "re", "rf")
    WIDTH_BITS = 16

    COSTS = {
        "ld": 6,  # load register (immediate / register / memory byte)
        "st": 8,  # store byte
        "add": 6,
        "sub": 6,
        "cmp": 6,
        "br": 8,
        "brz": 8,
        "brnz": 8,
        "srl": 20,  # search linked list: setup
        "mva": 14,  # move alphanumeric: setup
    }

    SRL_PER_NODE = 12
    MVA_PER_BYTE = 4

    def execute(self, instr: Instr, state) -> None:
        mnemonic = instr.mnemonic
        regs = state["regs"]
        flags = state["flags"]
        memory = state["memory"]

        if mnemonic == "ld":
            dst, src = instr.operands
            if isinstance(src, MemRef):
                addr = regs[src.base.name] + src.disp
                self.write_reg(dst, memory.read(addr), state)
            else:
                self.write_reg(dst, self.read(src, state), state)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "st":
            src, dst = instr.operands
            if not isinstance(dst, MemRef):
                raise SimulationError("st needs a memory destination")
            addr = regs[dst.base.name] + dst.disp
            memory.write(addr, self.read(src, state) & 0xFF)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic in ("add", "sub"):
            dst, src = instr.operands
            left = self.read(dst, state)
            right = self.read(src, state)
            value = left + right if mnemonic == "add" else left - right
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "cmp":
            left, right = instr.operands
            flags["z"] = (
                1 if self.read(left, state) == self.read(right, state) else 0
            )
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "br":
            state["cycles"] += self.cost(mnemonic)
            self.branch(instr.operands[0], state)
            return
        if mnemonic in ("brz", "brnz"):
            state["cycles"] += self.cost(mnemonic)
            taken = flags["z"] == 1 if mnemonic == "brz" else flags["z"] == 0
            if taken:
                self.branch(instr.operands[0], state)
            return
        if mnemonic == "srl":
            # srl head_reg, key_reg, offset_reg: follows links at offset
            # 0 until the byte at (node + offset) equals the key; leaves
            # the found node (or 0) in ra.
            head_op, key_op, offset_op = instr.operands
            node = self.read(head_op, state)
            key = self.read(key_op, state)
            offset = self.read(offset_op, state)
            state["cycles"] += self.cost(mnemonic)
            while node != 0:
                state["cycles"] += self.SRL_PER_NODE
                if memory.read(node + offset) == key:
                    break
                node = memory.read(node)  # link field FIRST in the record
            regs["ra"] = node & self._mask
            flags["z"] = 1 if node == 0 else 0
            return
        if mnemonic == "mva":
            # mva dst, src, lencode: moves (lencode & 0xFF) + 1 bytes —
            # the length field encodes count - 1, like the IBM 370 mvc
            # (paper footnote 5).
            dst_op, src_op, len_op = instr.operands
            dst = self.read(dst_op, state)
            src = self.read(src_op, state)
            count = (self.read(len_op, state) & 0xFF) + 1
            state["cycles"] += self.cost(mnemonic) + self.MVA_PER_BYTE * count
            for offset in range(count):
                memory.write(dst + offset, memory.read(src + offset))
            return
        raise SimulationError(f"B4800: unknown mnemonic {mnemonic!r}")
