"""IBM 370 simulator, generated from the declarative machine spec.

``mvc`` moves ``field + 1`` bytes for an encoded length field — the
quirk the paper's §4.2 coding constraint exists for — via the shared
``block_move_lc`` kind (:mod:`repro.machines.specsim`); the 370's
costs and operation table are data in
:mod:`repro.machines.ibm370.spec`.
"""

from __future__ import annotations

from ..specsim import spec_simulator
from .spec import SPEC

#: Executes the IBM 370 subset; drop-in for the old hand-written class.
Ibm370Simulator = spec_simulator(SPEC)
