"""IBM 370 subset simulator with a representative cycle model.

Covers register loads/arithmetic, byte insert/store (``ic``/``stc``),
branches (including ``bct``, branch-on-count — the natural decomposed
loop shape on the 370), and ``mvc`` with its length-code-minus-one
field: the instruction operand carries the encoded field value and the
simulator moves ``field + 1`` bytes, exactly the quirk the §4.2 coding
constraint exists for.
"""

from __future__ import annotations

from ...asm import Imm, Instr, MemRef, Reg
from ..simbase import SimulationError, Simulator


class Ibm370Simulator(Simulator):
    """Executes the IBM 370 subset."""

    REGISTERS = tuple(f"r{i}" for i in range(16))
    WIDTH_BITS = 32

    COSTS = {
        "la": 3,  # load address (constant/parameter into register)
        "lr": 2,  # register move
        "ar": 2,
        "sr": 2,
        "ic": 8,  # insert character (byte load)
        "stc": 8,  # store character
        "cr": 3,
        "ltr": 2,  # load and test
        "b": 5,
        "bz": 5,
        "bnz": 5,
        "bct": 6,  # decrement and branch if nonzero
        "mvc": 12,
        "clc": 10,
        "tr": 15,
    }

    MVC_PER_BYTE = 2
    CLC_PER_BYTE = 2
    TR_PER_BYTE = 3

    def execute(self, instr: Instr, state) -> None:
        mnemonic = instr.mnemonic
        regs = state["regs"]
        flags = state["flags"]
        memory = state["memory"]

        if mnemonic in ("la", "lr"):
            dst, src = instr.operands
            self.write_reg(dst, self.read(src, state), state)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic in ("ar", "sr"):
            dst, src = instr.operands
            left = self.read(dst, state)
            right = self.read(src, state)
            value = left + right if mnemonic == "ar" else left - right
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "ic":
            dst, src = instr.operands
            if not isinstance(src, MemRef):
                raise SimulationError("ic needs a memory source")
            addr = regs[src.base.name] + src.disp
            self.write_reg(dst, memory.read(addr), state)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "stc":
            src, dst = instr.operands
            if not isinstance(dst, MemRef):
                raise SimulationError("stc needs a memory destination")
            addr = regs[dst.base.name] + dst.disp
            memory.write(addr, self.read(src, state) & 0xFF)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "cr":
            left, right = instr.operands
            flags["z"] = (
                1 if self.read(left, state) == self.read(right, state) else 0
            )
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "ltr":
            dst, src = instr.operands
            value = self.read(src, state)
            self.write_reg(dst, value, state)
            flags["z"] = 1 if value == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "b":
            state["cycles"] += self.cost(mnemonic)
            self.branch(instr.operands[0], state)
            return
        if mnemonic in ("bz", "bnz"):
            state["cycles"] += self.cost(mnemonic)
            taken = flags["z"] == 1 if mnemonic == "bz" else flags["z"] == 0
            if taken:
                self.branch(instr.operands[0], state)
            return
        if mnemonic == "bct":
            counter, target = instr.operands
            value = (self.read(counter, state) - 1) & self._mask
            self.write_reg(counter, value, state)
            state["cycles"] += self.cost(mnemonic)
            if value != 0:
                self.branch(target, state)
            return
        if mnemonic == "tr":
            d1_op, d2_op, length_op = instr.operands
            d1 = self.read(d1_op, state)
            d2 = self.read(d2_op, state)
            count = (self.read(length_op, state) & 0xFF) + 1
            state["cycles"] += self.cost(mnemonic) + self.TR_PER_BYTE * count
            for offset in range(count):
                byte = memory.read(d1 + offset)
                memory.write(d1 + offset, memory.read(d2 + byte))
            return
        if mnemonic == "clc":
            c1_op, c2_op, length_op = instr.operands
            c1 = self.read(c1_op, state)
            c2 = self.read(c2_op, state)
            count = (self.read(length_op, state) & 0xFF) + 1
            equal = True
            compared = 0
            for offset in range(count):
                compared += 1
                if memory.read(c1 + offset) != memory.read(c2 + offset):
                    equal = False
                    break
            state["cycles"] += self.cost(mnemonic) + self.CLC_PER_BYTE * compared
            flags["z"] = 1 if equal else 0
            return
        if mnemonic == "mvc":
            dst_op, src_op, length_op = instr.operands
            dst = self.read(dst_op, state)
            src = self.read(src_op, state)
            # The operand is the encoded length field: moves field + 1.
            field_value = self.read(length_op, state)
            count = (field_value & 0xFF) + 1
            state["cycles"] += self.cost(mnemonic) + self.MVC_PER_BYTE * count
            for offset in range(count):
                memory.write(dst + offset, memory.read(src + offset))
            return
        raise SimulationError(f"IBM 370: unknown mnemonic {mnemonic!r}")
