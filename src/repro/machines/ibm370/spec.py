"""Declarative spec for the IBM 370.

``mvc`` carries its length-code-minus-one field: the instruction
operand is the encoded field value and the simulator moves
``field + 1`` bytes — exactly the quirk the paper's §4.2 coding
constraint exists for.  ``bct`` (branch on count) is the natural
decomposed-loop shape on the 370, so it rides in the operation table
alongside the exotic block instructions.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="ibm370",
    name="IBM 370",
    manufacturer="IBM",
    word_bits=32,
    registers=tuple(f"r{i}" for i in range(16)),
    sim_name="IBM 370",
    load_op="la",
    description_module="repro.machines.ibm370.descriptions",
    instructions=(
        InstructionSpec("mvc", "move characters", modeled=True, sim_op="mvc"),
        InstructionSpec("mvcl", "move characters long"),
        InstructionSpec(
            "clc", "compare logical characters", modeled=True, sim_op="clc"
        ),
        InstructionSpec("clcl", "compare logical characters long"),
        InstructionSpec("tr", "translate", modeled=True, sim_op="tr"),
        InstructionSpec("trt", "translate and test"),
        InstructionSpec("ed", "edit"),
    ),
    operations=(
        # load address (constant/parameter into register)
        OpSpec("la", "move", CostSpec(3)),
        OpSpec("lr", "move", CostSpec(2)),
        OpSpec("ar", "alu", CostSpec(2), {"op": "add"}),
        OpSpec("sr", "alu", CostSpec(2), {"op": "sub"}),
        OpSpec("ic", "byte_load", CostSpec(8)),
        OpSpec("stc", "byte_store", CostSpec(8)),
        OpSpec("cr", "compare", CostSpec(3)),
        OpSpec("ltr", "move_test", CostSpec(2)),
        OpSpec("b", "jump", CostSpec(5)),
        OpSpec("bz", "branch", CostSpec(5), {"flag": "z", "want": 1}),
        OpSpec("bnz", "branch", CostSpec(5), {"flag": "z", "want": 0}),
        # decrement and branch if nonzero
        OpSpec("bct", "count_branch", CostSpec(6)),
        OpSpec("mvc", "block_move_lc", CostSpec(12, per_unit=2, unit="byte")),
        OpSpec(
            "clc", "block_compare_lc", CostSpec(10, per_unit=2, unit="byte")
        ),
        OpSpec("tr", "translate_lc", CostSpec(15, per_unit=3, unit="byte")),
    ),
    fuzz=(
        FuzzCase(
            name="mvc",
            sim_op="mvc",
            # encoded length: moves code + 1 bytes
            vars=(("len", ("int", 0, 12)),),
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(("d1", 300), ("d2", 16), ("len", ("var", "len"))),
            params=(("dst", 300), ("src", 16), ("len", ("var", "len"))),
            operands=(("param", "dst"), ("param", "src"), ("param", "len")),
            outputs=(),
        ),
        FuzzCase(
            name="clc",
            sim_op="clc",
            vars=(("len", ("int", 0, 12)),),
            memory=(
                ("string", 16, 16),
                ("string", 300, 16),
                ("mirror_maybe", 300, 16, 16),
            ),
            isdl_inputs=(("c1", 16), ("c2", 300), ("len", ("var", "len"))),
            params=(("c1", 16), ("c2", 300), ("len", ("var", "len"))),
            operands=(("param", "c1"), ("param", "c2"), ("param", "len")),
            outputs=(("flag", "z"),),
        ),
        FuzzCase(
            name="tr",
            sim_op="tr",
            vars=(("len", ("int", 0, 12)),),
            # 256-byte translate table at 1024, string at 16.
            memory=(("string", 16, 16), ("table", 1024)),
            isdl_inputs=(("d1", 16), ("d2", 1024), ("len", ("var", "len"))),
            params=(("d1", 16), ("d2", 1024), ("len", ("var", "len"))),
            operands=(("param", "d1"), ("param", "d2"), ("param", "len")),
            outputs=(),
        ),
    ),
)
