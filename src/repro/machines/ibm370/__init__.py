"""IBM 370: mvc description and simulator."""

from .descriptions import mvc
from .sim import Ibm370Simulator

__all__ = ["mvc", "Ibm370Simulator"]
