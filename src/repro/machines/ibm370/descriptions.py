"""ISDL description of the IBM 370 ``mvc`` instruction.

``mvc`` moves *length-code-plus-one* bytes: "a length value of zero
means that one character is to be moved" (paper §4.2).  The description
models that by bumping the 8-bit length register before the move loop —
the bump wraps for a length code of 255, and the do-while loop then
runs exactly 256 times, matching the hardware.  Base-displacement
addressing is resolved outside the description, as the paper does for
all addressing calculations.
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

MVC_TEXT = """
mvc.instruction := begin
    ! base-displacement addressing resolved; effective addresses shown
    ** OPERANDS **
        d1<23:0>,                       ! destination address
        d2<23:0>,                       ! source address
        len<7:0>                        ! length code: moves len + 1 bytes
    ** STRING.PROCESS **
        mvc.execute() := begin
            input (d1, d2, len);
            len <- len + 1;             ! the 370 moves length-code-plus-one bytes
            repeat
                Mb[ d1 ] <- Mb[ d2 ];
                d1 <- d1 + 1;
                d2 <- d2 + 1;
                len <- len - 1;
                exit_when (len = 0);
            end_repeat;
        end
end
"""


@lru_cache(maxsize=None)
def mvc() -> ast.Description:
    """mvc: move characters (length encoded minus one, §4.2)."""
    return parse_description(MVC_TEXT)

CLC_TEXT = """
clc.instruction := begin
    ! compare logical characters: like mvc, the length field encodes
    ! count - 1; the Z condition code reports equality
    ** OPERANDS **
        c1<23:0>,                       ! first operand address
        c2<23:0>,                       ! second operand address
        len<7:0>                        ! length code: compares len + 1 bytes
    ** STATE **
        z<>                             ! Z condition code: operands equal
    ** STRING.PROCESS **
        clc.execute() := begin
            input (c1, c2, len);
            len <- len + 1;             ! compares length-code-plus-one bytes
            repeat
                z <- ((Mb[ c1 ] - Mb[ c2 ]) = 0);
                exit_when (not z);
                c1 <- c1 + 1;
                c2 <- c2 + 1;
                len <- len - 1;
                exit_when (len = 0);
            end_repeat;
            output (z);
        end
end
"""


@lru_cache(maxsize=None)
def clc() -> ast.Description:
    """clc: compare logical characters (length encoded minus one)."""
    return parse_description(CLC_TEXT)

TR_TEXT = """
tr.instruction := begin
    ! translate: replace each byte of the first operand by the byte the
    ! table (second operand) holds at that index; length encodes
    ! count - 1 like mvc and clc
    ** OPERANDS **
        d1<23:0>,                       ! string address (translated in place)
        d2<23:0>,                       ! translate table address (256 bytes)
        len<7:0>                        ! length code: translates len + 1 bytes
    ** STRING.PROCESS **
        tr.execute() := begin
            input (d1, d2, len);
            len <- len + 1;             ! translates length-code-plus-one bytes
            repeat
                Mb[ d1 ] <- Mb[ d2 + Mb[ d1 ] ];
                d1 <- d1 + 1;
                len <- len - 1;
                exit_when (len = 0);
            end_repeat;
        end
end
"""


@lru_cache(maxsize=None)
def tr() -> ast.Description:
    """tr: translate through a 256-byte table (length encoded minus one)."""
    return parse_description(TR_TEXT)
