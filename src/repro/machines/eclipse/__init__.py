"""Data General Eclipse: the sign-encoded-direction string move (§5)."""

from .descriptions import cmv

__all__ = ["cmv"]
