"""ISDL description of the Data General Eclipse character-move quirk.

"Instead of encoding the direction in a specific flag the direction is
encoded in the length operand for each string.  If the length is
greater than zero then the string is processed from low addresses to
high.  Otherwise, the string is processed in the reverse order.  The
problem is that the length operand is now used for two unrelated
purposes and it is difficult to formulate transformations to separate
the two functions" (paper §5).

The accumulators are 16-bit; "negative" means the top bit is set, so
the direction tests appear as ``> 32767`` comparisons.  That entangling
of sign and magnitude is precisely what defeats the analysis — see
:mod:`repro.analyses.eclipse_failure`.
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

CMV_TEXT = """
cmv.instruction := begin
    ! ac0: destination length (sign selects direction)
    ! ac1: source length (sign selects direction)
    ! ac2: destination address,  ac3: source address
    ** ACCUMULATORS **
        ac0<15:0>,
        ac1<15:0>,
        ac2<15:0>,
        ac3<15:0>
    ** STRING.PROCESS **
        cmv.execute() := begin
            input (ac0, ac1, ac2, ac3);
            repeat
                exit_when (ac0 = 0);
                Mb[ ac2 ] <- Mb[ ac3 ];
                if (ac0 > 32767)
                then                    ! negative dest length: high-to-low
                    ac2 <- ac2 - 1;
                    ac0 <- ac0 + 1;
                else                    ! positive dest length: low-to-high
                    ac2 <- ac2 + 1;
                    ac0 <- ac0 - 1;
                end_if;
                if (ac1 > 32767)
                then
                    ac3 <- ac3 - 1;
                    ac1 <- ac1 + 1;
                else
                    ac3 <- ac3 + 1;
                    ac1 <- ac1 - 1;
                end_if;
            end_repeat;
            output (ac0, ac1, ac2, ac3);
        end
end
"""


@lru_cache(maxsize=None)
def cmv() -> ast.Description:
    """cmv: Eclipse character move with sign-encoded direction."""
    return parse_description(CMV_TEXT)
