"""Declarative spec for the Data General Eclipse.

The Eclipse is catalog-and-descriptions only: ``cmv`` (character move
with sign-encoded direction — the paper's §4.1 example of an operand
*encoding* exotic behaviour) carries a full ISDL description the
analyses transform, but no generated code targets the Eclipse, so the
spec defines no simulator operation table.  The remaining Table 1
entries are the paper's named Eclipse string instructions, catalogued
``modeled=False`` so lint coverage and ``repro stats`` report them
honestly.
"""

from __future__ import annotations

from ..spec import InstructionSpec, MachineSpec

SPEC = MachineSpec(
    key="eclipse",
    name="DG Eclipse",
    manufacturer="Data General",
    word_bits=16,
    registers=("ac0", "ac1", "ac2", "ac3"),
    description_module="repro.machines.eclipse.descriptions",
    instructions=(
        InstructionSpec(
            "cmv", "character move (sign-encoded direction)", modeled=True
        ),
        InstructionSpec("cmp", "character compare"),
        InstructionSpec("ctr", "character translate"),
        InstructionSpec("cmt", "character move until true"),
        InstructionSpec("edit", "string edit"),
    ),
)
