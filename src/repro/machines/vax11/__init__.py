"""VAX-11: character-string instruction descriptions and simulator."""

from .descriptions import cmpc3, locc, movc3, movc5
from .sim import Vax11Simulator

__all__ = ["cmpc3", "locc", "movc3", "movc5", "Vax11Simulator"]
