"""ISDL descriptions of the VAX-11 character-string instructions.

All four Table 2 instructions are modeled: ``movc3`` (block copy with
overlap protection — the §4.3 failure case against Pascal ``sassign``),
``movc5`` (move with fill, simplifiable to a block clear), ``locc``
(locate character), and ``cmpc3`` (compare characters).

Notes on fidelity:

* length operands are 16-bit words, which is where the paper's
  "string lengths are limited to 16 bits … a non-trivial constraint
  since the word size is 32 bits" comes from;
* the instructions leave their final state in the dedicated registers
  R0/R1/R3 (the §6 register-allocation optimization exploits this);
* ``movc3`` chooses its copy direction by comparing source and
  destination addresses, guarding against overlap — the extra branch
  that simple language operators cannot match without the no-overlap
  constraint;
* ``movc5``'s move phase is written without the overlap branch (the
  block-clear analysis fixes the source length to zero, removing the
  move phase entirely, so the omission is not exercised).
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

MOVC3_TEXT = """
movc3.instruction := begin
    ** OPERANDS **
        len<15:0>,                      ! byte count (word operand)
        srcaddr<31:0>,                  ! source address
        dstaddr<31:0>                   ! destination address
    ** SOURCE.ACCESS **
        r0<31:0>,                       ! working count, 0 at completion
        r1<31:0>,                       ! source pointer
        r3<31:0>,                       ! destination pointer
        cnt<31:0>                       ! backward-copy index
    ** STRING.PROCESS **
        movc3.execute() := begin
            input (len, srcaddr, dstaddr);
            r0 <- len;
            r1 <- srcaddr;
            r3 <- dstaddr;
            if (r1 < r3)
            then                        ! destination above source: copy high-to-low to guard overlap
                cnt <- r0;
                repeat
                    exit_when (cnt = 0);
                    cnt <- cnt - 1;
                    Mb[ r3 + cnt ] <- Mb[ r1 + cnt ];
                end_repeat;
                r1 <- r1 + r0;          ! canonical final register values
                r3 <- r3 + r0;
                r0 <- 0;
            else                        ! copy low-to-high
                repeat
                    exit_when (r0 = 0);
                    r0 <- r0 - 1;
                    Mb[ r3 ] <- Mb[ r1 ];
                    r1 <- r1 + 1;
                    r3 <- r3 + 1;
                end_repeat;
            end_if;
            output (r0, r1, r3);
        end
end
"""

MOVC5_TEXT = """
movc5.instruction := begin
    ** OPERANDS **
        srclen<15:0>,                   ! source byte count
        srcaddr<31:0>,                  ! source address
        fill<7:0>,                      ! fill character
        dstlen<15:0>,                   ! destination byte count
        dstaddr<31:0>                   ! destination address
    ** STRING.PROCESS **
        movc5.execute() := begin
            input (srclen, srcaddr, fill, dstlen, dstaddr);
            repeat                      ! phase 1: move min(srclen, dstlen) bytes
                exit_when (srclen = 0);
                exit_when (dstlen = 0);
                Mb[ dstaddr ] <- Mb[ srcaddr ];
                srcaddr <- srcaddr + 1;
                dstaddr <- dstaddr + 1;
                srclen <- srclen - 1;
                dstlen <- dstlen - 1;
            end_repeat;
            repeat                      ! phase 2: fill the remainder
                exit_when (dstlen = 0);
                Mb[ dstaddr ] <- fill;
                dstaddr <- dstaddr + 1;
                dstlen <- dstlen - 1;
            end_repeat;
            output (srclen, srcaddr, dstlen, dstaddr);
        end
end
"""

LOCC_TEXT = """
locc.instruction := begin
    ** OPERANDS **
        char<7:0>,                      ! character sought
        len<15:0>,                      ! byte count (word operand)
        addr<31:0>                      ! string address
    ** SOURCE.ACCESS **
        r0<31:0>,                       ! bytes remaining; 0 if not found
        r1<31:0>                        ! address of located byte
    ** STATE **
        found<>                         ! condition-code state (Z clear when found)
    ** STRING.PROCESS **
        locc.execute() := begin
            input (char, len, addr);
            r0 <- len;
            r1 <- addr;
            found <- 0;
            repeat
                exit_when (r0 = 0);
                found <- ((char - Mb[ r1 ]) = 0);
                exit_when (found);
                r1 <- r1 + 1;
                r0 <- r0 - 1;
            end_repeat;
            output (r0, r1);
        end
end
"""

CMPC3_TEXT = """
cmpc3.instruction := begin
    ** OPERANDS **
        len<15:0>,                      ! byte count (word operand)
        addr1<31:0>,                    ! first string address
        addr2<31:0>                     ! second string address
    ** SOURCE.ACCESS **
        r0<31:0>,                       ! bytes remaining in first string
        r1<31:0>,                       ! pointer into first string
        r3<31:0>                        ! pointer into second string
    ** STATE **
        z<>                             ! Z condition code: strings equal
    ** STRING.PROCESS **
        cmpc3.execute() := begin
            input (len, addr1, addr2);
            r0 <- len;
            r1 <- addr1;
            r3 <- addr2;
            z <- 1;
            repeat
                exit_when (r0 = 0);
                z <- ((Mb[ r1 ] - Mb[ r3 ]) = 0);
                exit_when (not z);
                r1 <- r1 + 1;
                r3 <- r3 + 1;
                r0 <- r0 - 1;
            end_repeat;
            output (z, r0, r1, r3);
        end
end
"""


@lru_cache(maxsize=None)
def movc3() -> ast.Description:
    """movc3: 3-operand block copy with overlap protection."""
    return parse_description(MOVC3_TEXT)


@lru_cache(maxsize=None)
def movc5() -> ast.Description:
    """movc5: 5-operand move with fill."""
    return parse_description(MOVC5_TEXT)


@lru_cache(maxsize=None)
def locc() -> ast.Description:
    """locc: locate character in a string."""
    return parse_description(LOCC_TEXT)


@lru_cache(maxsize=None)
def cmpc3() -> ast.Description:
    """cmpc3: 3-operand character-string compare."""
    return parse_description(CMPC3_TEXT)

SKPC_TEXT = """
skpc.instruction := begin
    ! skip character: advance past leading occurrences of char; the
    ! complement of locc (locc stops AT char, skpc stops past it)
    ** OPERANDS **
        char<7:0>,                      ! character to skip
        len<15:0>,                      ! byte count (word operand)
        addr<31:0>                      ! string address
    ** SOURCE.ACCESS **
        r0<31:0>,                       ! bytes remaining
        r1<31:0>                        ! address of first unequal byte
    ** STRING.PROCESS **
        skpc.execute() := begin
            input (char, len, addr);
            r0 <- len;
            r1 <- addr;
            repeat
                exit_when (r0 = 0);
                exit_when (Mb[ r1 ] <> char);
                r1 <- r1 + 1;
                r0 <- r0 - 1;
            end_repeat;
            output (r0, r1);
        end
end
"""


@lru_cache(maxsize=None)
def skpc() -> ast.Description:
    """skpc: skip character (span of a repeated character)."""
    return parse_description(SKPC_TEXT)
