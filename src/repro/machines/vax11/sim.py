"""VAX-11 subset simulator with a representative cycle model.

Covers register moves/arithmetic, byte memory access, branches, and the
four character-string instructions the bindings target.  The string
instructions implement their architected register protocol — movc3
leaves R0 = 0, R1 = src + len, R3 = dst + len — which is what the §6
dedicated-register optimization exploits.  Setup costs are substantial
(the VAX microcode sequences were long) and per-byte costs low, so the
crossover against decomposed loops appears at realistic sizes.
"""

from __future__ import annotations

from ...asm import Imm, Instr, MemRef, Reg
from ..simbase import SimulationError, Simulator


class Vax11Simulator(Simulator):
    """Executes the VAX-11 subset."""

    REGISTERS = tuple(f"r{i}" for i in range(12))
    WIDTH_BITS = 32

    COSTS = {
        "movl": 4,
        "movb_load": 6,
        "movb_store": 6,
        "addl3": 5,
        "subl3": 5,
        "incl": 4,
        "decl": 4,
        "cmpl": 4,
        "tstl": 3,
        "brb": 4,
        "beql": 5,
        "bneq": 5,
        "blss": 5,
        "bgeq": 5,
        "movc3": 40,
        "movc5": 50,
        "locc": 30,
        "cmpc3": 35,
    }

    MOVC_PER_BYTE = 3
    LOCC_PER_BYTE = 4
    CMPC_PER_BYTE = 5

    def execute(self, instr: Instr, state) -> None:
        mnemonic = instr.mnemonic
        regs = state["regs"]
        flags = state["flags"]
        memory = state["memory"]

        if mnemonic == "movl":
            dst, src = instr.operands
            self.write_reg(dst, self.read(src, state), state)
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "movb":
            dst, src = instr.operands
            if isinstance(dst, MemRef):
                addr = regs[dst.base.name] + dst.disp
                memory.write(addr, self.read(src, state))
                state["cycles"] += self.COSTS["movb_store"]
                return
            state["cycles"] += self.COSTS["movb_load"]
            self.write_reg(dst, self.read(src, state), state)
            return
        if mnemonic in ("addl3", "subl3"):
            dst, left, right = instr.operands
            a = self.read(left, state)
            b = self.read(right, state)
            value = a + b if mnemonic == "addl3" else a - b
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic in ("incl", "decl"):
            (dst,) = instr.operands
            delta = 1 if mnemonic == "incl" else -1
            value = self.read(dst, state) + delta
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "cmpl":
            left, right = instr.operands
            a = self.read(left, state)
            b = self.read(right, state)
            flags["z"] = 1 if a == b else 0
            flags["l"] = 1 if a < b else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "tstl":
            (operand,) = instr.operands
            flags["z"] = 1 if self.read(operand, state) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "brb":
            state["cycles"] += self.cost(mnemonic)
            self.branch(instr.operands[0], state)
            return
        if mnemonic in ("beql", "bneq", "blss", "bgeq"):
            state["cycles"] += self.cost(mnemonic)
            if mnemonic == "beql":
                taken = flags["z"] == 1
            elif mnemonic == "bneq":
                taken = flags["z"] == 0
            elif mnemonic == "blss":
                taken = flags.get("l", 0) == 1
            else:
                taken = flags.get("l", 0) == 0
            if taken:
                self.branch(instr.operands[0], state)
            return
        if mnemonic == "movc3":
            length_op, src_op, dst_op = instr.operands
            length = self.read(length_op, state)
            src = self.read(src_op, state)
            dst = self.read(dst_op, state)
            state["cycles"] += self.cost(mnemonic) + self.MOVC_PER_BYTE * length
            if src < dst:
                for offset in range(length - 1, -1, -1):
                    memory.write(dst + offset, memory.read(src + offset))
            else:
                for offset in range(length):
                    memory.write(dst + offset, memory.read(src + offset))
            regs["r0"] = 0
            regs["r1"] = (src + length) & self._mask
            regs["r2"] = 0
            regs["r3"] = (dst + length) & self._mask
            flags["z"] = 1
            return
        if mnemonic == "movc5":
            srclen_op, src_op, fill_op, dstlen_op, dst_op = instr.operands
            srclen = self.read(srclen_op, state)
            src = self.read(src_op, state)
            fill = self.read(fill_op, state)
            dstlen = self.read(dstlen_op, state)
            dst = self.read(dst_op, state)
            moved = min(srclen, dstlen)
            state["cycles"] += self.cost(mnemonic) + self.MOVC_PER_BYTE * dstlen
            for offset in range(moved):
                memory.write(dst + offset, memory.read(src + offset))
            for offset in range(moved, dstlen):
                memory.write(dst + offset, fill & 0xFF)
            regs["r0"] = max(0, srclen - moved)
            regs["r1"] = (src + moved) & self._mask
            regs["r2"] = 0
            regs["r3"] = (dst + dstlen) & self._mask
            return
        if mnemonic == "locc":
            char_op, length_op, addr_op = instr.operands
            char = self.read(char_op, state)
            length = self.read(length_op, state)
            addr = self.read(addr_op, state)
            state["cycles"] += self.cost(mnemonic)
            remaining = length
            pointer = addr
            while remaining != 0:
                state["cycles"] += self.LOCC_PER_BYTE
                if memory.read(pointer) == char:
                    break
                pointer += 1
                remaining -= 1
            regs["r0"] = remaining & self._mask
            regs["r1"] = pointer & self._mask
            flags["z"] = 1 if remaining == 0 else 0
            return
        if mnemonic == "cmpc3":
            length_op, addr1_op, addr2_op = instr.operands
            length = self.read(length_op, state)
            addr1 = self.read(addr1_op, state)
            addr2 = self.read(addr2_op, state)
            state["cycles"] += self.cost(mnemonic)
            remaining = length
            p1, p2 = addr1, addr2
            equal = True
            while remaining != 0:
                state["cycles"] += self.CMPC_PER_BYTE
                if memory.read(p1) != memory.read(p2):
                    equal = False
                    break
                p1 += 1
                p2 += 1
                remaining -= 1
            regs["r0"] = remaining & self._mask
            regs["r1"] = p1 & self._mask
            regs["r3"] = p2 & self._mask
            flags["z"] = 1 if equal else 0
            return
        raise SimulationError(f"VAX-11: unknown mnemonic {mnemonic!r}")
