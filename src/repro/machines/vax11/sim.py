"""VAX-11 simulator, generated from the declarative machine spec.

The character-string instructions implement their architected register
protocol — movc3 leaves R0 = 0, R1 = src + len, R3 = dst + len — which
is what the §6 dedicated-register optimization exploits.  The
semantics live in the shared kind library
(:mod:`repro.machines.specsim`); the VAX-specific costs and register
protocol bindings are data in :mod:`repro.machines.vax11.spec`.
"""

from __future__ import annotations

from ..specsim import spec_simulator
from .spec import SPEC

#: Executes the VAX-11 subset; drop-in for the old hand-written class.
Vax11Simulator = spec_simulator(SPEC)
