"""Declarative spec for the VAX-11.

The character-string instructions carry their architected register
protocol (movc3 leaves R0 = 0, R1 = src + len, R3 = dst + len — what
the §6 dedicated-register optimization exploits).  Setup costs are
substantial (the VAX microcode sequences were long) and per-byte costs
low, so the crossover against decomposed loops appears at realistic
sizes.

``skpc`` is modeled as ISDL only (``sim_op=None``): the analyses
transform its description, but no generated code targets it, so the
simulator operation table omits it.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="vax11",
    name="VAX-11",
    manufacturer="DEC",
    word_bits=32,
    registers=tuple(f"r{i}" for i in range(12)),
    sim_name="VAX-11",
    load_op="movl",
    description_module="repro.machines.vax11.descriptions",
    instructions=(
        InstructionSpec(
            "movc3", "move character 3-operand", modeled=True, sim_op="movc3"
        ),
        InstructionSpec(
            "movc5",
            "move character 5-operand (with fill)",
            modeled=True,
            sim_op="movc5",
        ),
        InstructionSpec(
            "cmpc3", "compare characters 3-operand", modeled=True, sim_op="cmpc3"
        ),
        InstructionSpec("cmpc5", "compare characters 5-operand"),
        InstructionSpec("locc", "locate character", modeled=True, sim_op="locc"),
        InstructionSpec("skpc", "skip character", modeled=True),
        InstructionSpec("scanc", "scan for character in set"),
        InstructionSpec("spanc", "span characters in set"),
        InstructionSpec("matchc", "match characters"),
        InstructionSpec("movtc", "move translated characters"),
        InstructionSpec("movtuc", "move translated until character"),
        InstructionSpec("crc", "cyclic redundancy check"),
    ),
    operations=(
        OpSpec("movl", "move", CostSpec(4)),
        OpSpec("movb", "move", CostSpec(6), {"store_cost": 6}),
        OpSpec("addl3", "alu", CostSpec(5), {"op": "add", "form": "3op"}),
        OpSpec("subl3", "alu", CostSpec(5), {"op": "sub", "form": "3op"}),
        OpSpec("incl", "step", CostSpec(4), {"delta": 1}),
        OpSpec("decl", "step", CostSpec(4), {"delta": -1}),
        OpSpec("cmpl", "compare", CostSpec(4), {"less_flag": True}),
        OpSpec("tstl", "test", CostSpec(3)),
        OpSpec("brb", "jump", CostSpec(4)),
        OpSpec("beql", "branch", CostSpec(5), {"flag": "z", "want": 1}),
        OpSpec("bneq", "branch", CostSpec(5), {"flag": "z", "want": 0}),
        OpSpec("blss", "branch", CostSpec(5), {"flag": "l", "want": 1}),
        OpSpec("bgeq", "branch", CostSpec(5), {"flag": "l", "want": 0}),
        OpSpec("movc3", "movc3", CostSpec(40, per_unit=3, unit="byte")),
        OpSpec("movc5", "movc5", CostSpec(50, per_unit=3, unit="byte")),
        OpSpec("locc", "locc", CostSpec(30, per_unit=4, unit="byte")),
        OpSpec("cmpc3", "cmpc3", CostSpec(35, per_unit=5, unit="byte")),
    ),
    fuzz=(
        FuzzCase(
            name="movc3",
            sim_op="movc3",
            vars=(
                ("len", ("int", 0, 12)),
                ("src", ("choice", (16, 20, 300))),
                ("dst", ("choice", (16, 20, 24, 400))),
            ),
            # Sometimes overlapping: both sides must take the same
            # direction.
            memory=(
                ("string", ("var", "src"), 16),
                ("string", ("var", "dst"), 16),
            ),
            isdl_inputs=(
                ("len", ("var", "len")),
                ("srcaddr", ("var", "src")),
                ("dstaddr", ("var", "dst")),
            ),
            params=(
                ("len", ("var", "len")),
                ("src", ("var", "src")),
                ("dst", ("var", "dst")),
            ),
            operands=(("param", "len"), ("param", "src"), ("param", "dst")),
            outputs=(("reg", "r0"), ("reg", "r1"), ("reg", "r3")),
        ),
        FuzzCase(
            name="movc5",
            sim_op="movc5",
            vars=(
                ("srclen", ("int", 0, 12)),
                ("dstlen", ("int", 0, 12)),
                ("fill", ("byte",)),
            ),
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(
                ("srclen", ("var", "srclen")),
                ("srcaddr", 16),
                ("fill", ("var", "fill")),
                ("dstlen", ("var", "dstlen")),
                ("dstaddr", 300),
            ),
            params=(
                ("srclen", ("var", "srclen")),
                ("src", 16),
                ("fill", ("var", "fill")),
                ("dstlen", ("var", "dstlen")),
                ("dst", 300),
            ),
            operands=(
                ("param", "srclen"),
                ("param", "src"),
                ("param", "fill"),
                ("param", "dstlen"),
                ("param", "dst"),
            ),
            # ISDL outputs (srclen, srcaddr, dstlen, dstaddr) land in
            # the architected result registers R0-R3.
            outputs=(
                ("reg", "r0"),
                ("reg", "r1"),
                ("reg", "r2"),
                ("reg", "r3"),
            ),
        ),
        FuzzCase(
            name="locc",
            sim_op="locc",
            vars=(
                ("len", ("int", 0, 12)),
                ("char", ("byte_from", 16, 16)),
            ),
            memory=(("string", 16, 16),),
            isdl_inputs=(
                ("char", ("var", "char")),
                ("len", ("var", "len")),
                ("addr", 16),
            ),
            params=(
                ("char", ("var", "char")),
                ("len", ("var", "len")),
                ("addr", 16),
            ),
            operands=(("param", "char"), ("param", "len"), ("param", "addr")),
            outputs=(("reg", "r0"), ("reg", "r1")),
        ),
        FuzzCase(
            name="cmpc3",
            sim_op="cmpc3",
            vars=(("len", ("int", 0, 12)),),
            memory=(
                ("string", 16, 16),
                ("string", 300, 16),
                ("mirror_maybe", 300, 16, 16),
            ),
            isdl_inputs=(
                ("len", ("var", "len")),
                ("addr1", 16),
                ("addr2", 300),
            ),
            params=(("len", ("var", "len")), ("a1", 16), ("a2", 300)),
            operands=(("param", "len"), ("param", "a1"), ("param", "a2")),
            outputs=(
                ("flag", "z"),
                ("reg", "r0"),
                ("reg", "r1"),
                ("reg", "r3"),
            ),
        ),
    ),
)
