"""Spec-driven differential fuzzing: ISDL executors vs. spec simulators.

Every modeled-and-simulated instruction exists twice: as an ISDL
description (what the analyses transform and verify) and as a row in
the machine spec's operation table (what generated code runs on).
The spec's :class:`~repro.machines.spec.FuzzCase` records describe how
to exercise both on the same randomized state; this module is the
single driver that interprets those records — adding a machine to the
differential matrix means writing fuzz cases, not fuzz code.

A trial is deterministic in ``(machine, case, engine, trial)`` via
:func:`repro.semantics.derive_seed`, so a reported mismatch replays
exactly.  Disagreements raise :class:`FuzzMismatch` carrying the full
trial context (inputs, both sides' outputs, the memory delta).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, Optional, Tuple, Type

from ..asm import AsmProgram, Imm, Instr, MemRef, ParamRef, Reg
from ..semantics import ExecutionEngine, derive_seed
from .catalog import load_description
from .registry import ALL_KEYS, machine_spec
from .simbase import Simulator
from .spec import FuzzCase, MachineSpec
from .specsim import spec_simulator

#: seed namespace for the spec-driven matrix (distinct from the
#: hand-written differential suite's 20260805).
SEED_EPOCH = 20260807


class FuzzMismatch(AssertionError):
    """The ISDL executor and the spec simulator disagreed."""


@lru_cache(maxsize=None)
def simulator_class(key: str) -> Type[Simulator]:
    """The generated simulator class for a machine key (cached)."""
    return spec_simulator(machine_spec(key))


def fuzz_targets() -> Tuple[Tuple[str, str], ...]:
    """Every ``(machine key, case name)`` pair in the registry."""
    pairs = []
    for key in ALL_KEYS:
        for case in machine_spec(key).fuzz:
            pairs.append((key, case.name))
    return tuple(pairs)


# ---------------------------------------------------------------------------
# Randomized state materialization


def _resolve(source, bindings: Dict[str, int]) -> int:
    if isinstance(source, int):
        return source
    if isinstance(source, tuple) and source[0] == "var":
        return bindings[source[1]]
    raise ValueError(f"unresolvable source {source!r}")


def _gen_var(generator, rng: random.Random, memory: Dict[int, int]) -> int:
    tag = generator[0]
    if tag == "int":
        return rng.randint(generator[1], generator[2])
    if tag == "byte":
        return rng.randrange(256)
    if tag == "byte_from":
        base, length = generator[1], generator[2]
        if rng.random() < 0.5:
            return memory[base + rng.randrange(length)]
        return rng.randrange(256)
    if tag == "choice":
        return rng.choice(generator[1])
    raise ValueError(f"unknown variable generator {generator!r}")


def _linked_list(rng: random.Random, memory: Dict[int, int]):
    """A random single-byte-cell linked list; returns (head, key, offs)."""
    offs = rng.randint(1, 6)
    node_count = rng.randint(0, 5)
    nodes = [16 + index * 8 for index in range(node_count)]
    for index, node in enumerate(nodes):
        link = nodes[index + 1] if index + 1 < len(nodes) else 0
        memory[node] = link
        memory[node + offs] = rng.randrange(256)
    head = nodes[0] if nodes else 0
    if nodes and rng.random() < 0.5:
        key = memory[rng.choice(nodes) + offs]  # present in the list
    else:
        key = rng.randrange(256)
    return head, key, offs


def _apply_memory(directive, rng, memory, bindings) -> None:
    # Address and length arguments are sources: int literals or
    # ("var", name) references to already-evaluated plain variables.
    tag = directive[0]
    if tag == "string":
        base, length = (_resolve(arg, bindings) for arg in directive[1:])
        for offset in range(length):
            memory[base + offset] = rng.randrange(256)
    elif tag == "mirror_maybe":
        dst, src, length = (_resolve(arg, bindings) for arg in directive[1:])
        if rng.random() < 0.5:
            for offset in range(length):
                memory[dst + offset] = memory[src + offset]
    elif tag == "table":
        base = _resolve(directive[1], bindings)
        for index in range(256):
            memory[base + index] = rng.randrange(256)
    elif tag == "linked_list":
        head, key, offs = _linked_list(rng, memory)
        bindings.update(head=head, key=key, offs=offs)
    elif tag == "cell":
        _, addr_source, value_source = directive
        addr = _resolve(addr_source, bindings)
        memory[addr] = _resolve(value_source, bindings) & 0xFF
    else:
        raise ValueError(f"unknown memory directive {directive!r}")


def materialize(
    case: FuzzCase, rng: random.Random
) -> Tuple[Dict[str, int], Dict[int, int]]:
    """Evaluate a case's generators: returns (bindings, memory).

    Order: plain variables, then memory directives (``linked_list``
    injects bindings), then ``byte_from`` variables — which may sample
    bytes the directives just wrote.
    """
    bindings: Dict[str, int] = {}
    memory: Dict[int, int] = {}
    deferred = []
    for name, generator in case.vars:
        if generator[0] == "byte_from":
            deferred.append((name, generator))
        else:
            bindings[name] = _gen_var(generator, rng, memory)
    for directive in case.memory:
        _apply_memory(directive, rng, memory, bindings)
    for name, generator in deferred:
        bindings[name] = _gen_var(generator, rng, memory)
    return bindings, memory


# ---------------------------------------------------------------------------
# One differential trial


def _operand(shape, bindings):
    kind, value = shape
    if kind == "reg":
        return Reg(value)
    if kind == "param":
        return ParamRef(value)
    if kind == "imm":
        return Imm(_resolve(value, bindings))
    if kind == "mem":
        return MemRef(Reg(value), 0)
    raise ValueError(f"unknown operand shape {shape!r}")


def _build_program(
    spec: MachineSpec, case: FuzzCase, bindings: Dict[str, int]
) -> AsmProgram:
    lines = []
    for register, source in case.setup:
        if isinstance(source, tuple) and source[0] == "param":
            operand = ParamRef(source[1])
        else:
            operand = Imm(_resolve(source, bindings))
        lines.append(Instr(spec.load_op, (Reg(register), operand)))
    lines.append(
        Instr(
            case.sim_op,
            tuple(_operand(shape, bindings) for shape in case.operands),
        )
    )
    return AsmProgram(spec.key, lines)


def run_trial(
    machine: str,
    case_name: str,
    trial: int,
    engine: Optional[ExecutionEngine] = None,
) -> None:
    """One differential trial; raises :class:`FuzzMismatch` on drift."""
    spec = machine_spec(machine)
    case = next(c for c in spec.fuzz if c.name == case_name)
    engine = engine or ExecutionEngine()
    rng = random.Random(
        derive_seed(SEED_EPOCH, machine, case_name, engine.name, trial)
    )
    bindings, memory = materialize(case, rng)

    inputs = {
        name: _resolve(source, bindings) for name, source in case.isdl_inputs
    }
    run = engine.executor(load_description(machine, case.name)).run(
        inputs, memory
    )

    params = {
        name: _resolve(source, bindings) for name, source in case.params
    }
    program = _build_program(spec, case, bindings)
    sim = simulator_class(machine)().run(program, params, memory)

    expected = tuple(
        sim.registers[name] if kind == "reg" else sim.flags[name]
        for kind, name in case.outputs
    )
    context = (
        f"{machine}/{case_name} engine={engine.name} trial={trial} "
        f"inputs={inputs} params={params}"
    )
    if run.outputs != expected:
        raise FuzzMismatch(
            f"{context}: isdl outputs {run.outputs} != sim {expected}"
        )
    sim_memory = sim.memory.snapshot()
    if run.memory != sim_memory:
        delta = {
            addr: (run.memory.get(addr), sim_memory.get(addr))
            for addr in sorted(set(run.memory) | set(sim_memory))
            if run.memory.get(addr) != sim_memory.get(addr)
        }
        raise FuzzMismatch(f"{context}: memory drift {delta}")


def run_campaign(
    machine: str,
    case_name: str,
    trials: int,
    engine: Optional[ExecutionEngine] = None,
) -> int:
    """Run ``trials`` trials of one case; returns the count run."""
    engine = engine or ExecutionEngine()
    for trial in range(trials):
        run_trial(machine, case_name, trial, engine)
    return trials
