"""Declarative machine specifications.

The paper's premise is retargetability: §2 samples six machines and
argues that recognising exotic instructions should be a matter of
*describing* a machine, not programming one.  Before this module the
repo contradicted that premise — each machine was hand-smeared across
four layers (a bespoke ``execute()`` dispatch in ``sim.py``, ISDL
loaders in ``descriptions.py``, catalog literals in ``catalog.py``,
and lint coverage rows) and two Table 1 machines stayed stubs because
writing a simulator by hand was the bottleneck.

A :class:`MachineSpec` is the single data source.  From one frozen,
validated object the rest of the system *generates*:

* the simulator — :func:`repro.machines.specsim.spec_simulator` builds
  a :class:`~repro.machines.simbase.Simulator` subclass that interprets
  the spec's operation table through a shared kind library;
* the Table 1 catalog — ``catalog.py`` turns ``instructions`` records
  into :class:`~repro.machines.catalog.ExoticInstruction` objects;
* lint coverage rows — modeled instructions become lint targets, and
  machines with no descriptions report ``no-descriptions`` honestly;
* the differential-fuzz matrix — ``fuzz`` cases drive the ISDL
  executors against the generated simulator on randomized states.

Validation is eager and precise: a defective spec raises
:class:`SpecError` at construction (structure, operand shapes, cost
rows) or at registry load (ISDL description resolution), and every
message carries the exact field path — ``machines.z80.word_bits``,
``machines.i8086.operations[3].params.count`` — so a typo'd cost-table
key can never again be silently dead.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Register widths the semantics layer models (wrap-around masks).
#: 36 is catalog-only honesty for the Univac 1100 — no simulator
#: models it, but its spec should not have to lie about word size.
ALLOWED_WIDTHS = (8, 16, 32, 36, 64)


class SpecError(ValueError):
    """A machine spec failed validation.

    The message always starts with the exact field path of the
    offending value (``machines.<key>.<field>[...]``).
    """


@dataclass(frozen=True)
class CostSpec:
    """Cycle cost of one operation: a base charge plus an optional
    per-iteration term (``per_unit`` cycles per ``unit``)."""

    base: int
    per_unit: int = 0
    #: what the per-iteration term is charged per: "byte", "rep",
    #: "node", ... — documentation only, surfaced by ``repro machines``.
    unit: str = ""


@dataclass(frozen=True)
class OpSpec:
    """One row of the simulator operation table.

    ``kind`` selects a handler from the shared kind library
    (:data:`repro.machines.specsim.KINDS`); ``params`` fills the
    handler's declared parameter signature (register names, step
    directions, sub-costs).  The validator rejects unknown kinds,
    missing or unknown params, and register params that name no
    register of the machine.
    """

    mnemonic: str
    kind: str
    cost: CostSpec
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class InstructionSpec:
    """One Table 1 catalog record.

    ``sim_op`` links the catalog entry to the operation-table mnemonic
    that executes it (``movsb`` -> ``rep_movsb``); ``None`` means the
    instruction is catalogued but has no executable semantics (either
    ``modeled=False``, or modeled as ISDL only, like the VAX ``skpc``).
    """

    mnemonic: str
    operation: str
    modeled: bool = False
    reconstructed: bool = False
    sim_op: Optional[str] = None


@dataclass(frozen=True)
class FuzzCase:
    """One differential-fuzz scenario, as pure data.

    The fuzz driver (:mod:`repro.machines.fuzz`) evaluates ``vars`` and
    ``memory`` with a seeded RNG, runs the ISDL description named
    ``name`` under an execution engine with ``isdl_inputs``, runs the
    spec simulator on a program of ``setup`` loads plus one ``sim_op``
    instruction, and requires the declared ``outputs`` and the final
    memories to agree.

    Sources (``isdl_inputs`` values, ``params`` values, ``setup``
    values) are either an ``int`` literal or ``("var", name)``.
    Variable generators:

    * ``("int", lo, hi)`` — uniform integer (counts, length codes);
    * ``("byte",)`` — uniform byte;
    * ``("byte_from", base, length)`` — 50% a byte already present in
      ``memory[base:base+length]``, else uniform (biases searches
      toward hits);
    * ``("choice", (a, b, ...))`` — one of the listed literals.

    Memory directives, evaluated in order before ``byte_from`` vars:

    * ``("string", base, length)`` — random bytes;
    * ``("mirror_maybe", dst, src, length)`` — with probability 0.5
      copy the src region over the dst region (biases compares toward
      equal prefixes);
    * ``("table", base)`` — a random 256-entry translate table;
    * ``("linked_list",)`` — a random single-byte-cell linked list;
      injects the vars ``head``, ``key``, and ``offs``;
    * ``("cell", addr_source, value_source)`` — a single byte cell at
      an evaluated address (biases read-modify-write instructions like
      ``tas`` toward interesting values).

    Operands on the simulated instruction are ``("reg", name)``,
    ``("param", name)``, ``("imm", value)``, or ``("mem", regname)``
    — a memory reference through a register.

    Outputs are ``("reg", name)`` or ``("flag", name)`` and are
    compared positionally against the ISDL run's ``outputs`` tuple.
    """

    name: str
    sim_op: str
    isdl_inputs: Tuple[Tuple[str, object], ...]
    vars: Tuple[Tuple[str, Tuple], ...] = ()
    memory: Tuple[Tuple, ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()
    setup: Tuple[Tuple[str, object], ...] = ()
    operands: Tuple[Tuple[str, object], ...] = ()
    outputs: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class MachineSpec:
    """One machine, fully described as data.

    ``instructions`` is the ordered exotic-instruction catalog (Table 1
    order); ``operations`` is the simulator operation table, including
    the support operations (moves, ALU, branches) generated code needs
    around the exotic ones.  Machines that are catalog-only (Eclipse,
    Univac 1100) simply leave ``operations`` empty and ``sim_name``
    unset — they still get honest catalog, lint, and stats rows.
    """

    key: str
    name: str
    manufacturer: str
    word_bits: int
    registers: Tuple[str, ...] = ()
    #: True for the six machines of the paper's Table 1 sample.
    paper: bool = True
    #: prefix for simulator error messages ("8086", "VAX-11"); None
    #: means the machine has no simulator.
    sim_name: Optional[str] = None
    #: the operation the fuzz driver uses to load parameters into
    #: registers ("mov", "movl", "la", "ld").
    load_op: Optional[str] = None
    #: dotted module holding the ISDL description loaders, or None.
    description_module: Optional[str] = None
    instructions: Tuple[InstructionSpec, ...] = ()
    operations: Tuple[OpSpec, ...] = ()
    fuzz: Tuple[FuzzCase, ...] = ()

    def __post_init__(self) -> None:
        validate_spec(self)

    # -- derived views --------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.instructions)

    def operation(self, mnemonic: str) -> OpSpec:
        for op in self.operations:
            if op.mnemonic == mnemonic:
                return op
        raise KeyError(f"{self.key}: no operation {mnemonic!r}")

    def modeled(self) -> Tuple[InstructionSpec, ...]:
        return tuple(i for i in self.instructions if i.modeled)

    def reconstructed(self) -> Tuple[InstructionSpec, ...]:
        return tuple(i for i in self.instructions if i.reconstructed)

    def simulated(self) -> Tuple[InstructionSpec, ...]:
        """Catalog instructions with executable spec semantics."""
        return tuple(i for i in self.instructions if i.sim_op is not None)


# ---------------------------------------------------------------------------
# Validation


def _fail(path: str, problem: str) -> None:
    raise SpecError(f"{path}: {problem}")


def _check_int(path: str, value: object, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(path, f"expected an integer, got {value!r}")
    if value < minimum:
        _fail(path, f"must be >= {minimum}, got {value}")


def validate_spec(spec: MachineSpec) -> None:
    """Structural validation; raises :class:`SpecError` with field paths.

    Runs at construction time (``MachineSpec.__post_init__``), so a
    defective spec module cannot even be imported.  ISDL description
    resolution needs imports and is checked separately by
    :func:`validate_descriptions` (the registry runs it at load).
    """
    from .specsim import KINDS  # deferred: specsim imports this module

    root = f"machines.{spec.key}"
    if not spec.key or not spec.key.isidentifier():
        _fail(f"{root}.key", f"not a valid machine key: {spec.key!r}")
    if spec.word_bits not in ALLOWED_WIDTHS:
        _fail(
            f"{root}.word_bits",
            f"unsupported register width {spec.word_bits!r} "
            f"(choose from {', '.join(map(str, ALLOWED_WIDTHS))})",
        )

    seen_regs = set()
    for index, register in enumerate(spec.registers):
        path = f"{root}.registers[{index}]"
        if not isinstance(register, str) or not register:
            _fail(path, f"expected a register name, got {register!r}")
        if register in seen_regs:
            _fail(path, f"duplicate register {register!r}")
        seen_regs.add(register)

    if spec.operations and spec.sim_name is None:
        _fail(f"{root}.sim_name", "required when operations are defined")
    if spec.operations and not spec.registers:
        _fail(f"{root}.registers", "required when operations are defined")

    op_names = set()
    for index, op in enumerate(spec.operations):
        path = f"{root}.operations[{index}]"
        if op.mnemonic in op_names:
            _fail(f"{path}.mnemonic", f"duplicate operation {op.mnemonic!r}")
        if op.mnemonic == "setres":
            _fail(f"{path}.mnemonic", "'setres' is reserved by the simulator")
        op_names.add(op.mnemonic)
        kind = KINDS.get(op.kind)
        if kind is None:
            _fail(
                f"{path}.kind",
                f"unknown kind {op.kind!r} "
                f"(choose from {', '.join(sorted(KINDS))})",
            )
        _check_int(f"{path}.cost.base", op.cost.base)
        _check_int(f"{path}.cost.per_unit", op.cost.per_unit)
        for name in op.params:
            if name not in kind.params:
                _fail(
                    f"{path}.params.{name}",
                    f"kind {op.kind!r} takes no parameter {name!r}",
                )
        for name, (typename, required) in sorted(kind.params.items()):
            if name not in op.params:
                if required:
                    _fail(
                        f"{path}.params.{name}",
                        f"kind {op.kind!r} requires parameter {name!r}",
                    )
                continue
            value = op.params[name]
            ppath = f"{path}.params.{name}"
            if typename == "reg":
                if value not in seen_regs:
                    _fail(ppath, f"unknown register {value!r}")
            elif typename == "int":
                if not isinstance(value, int) or isinstance(value, bool):
                    _fail(ppath, f"expected an integer, got {value!r}")
            elif typename == "str":
                if not isinstance(value, str):
                    _fail(ppath, f"expected a string, got {value!r}")
            elif typename == "bool":
                if not isinstance(value, bool):
                    _fail(ppath, f"expected a bool, got {value!r}")
        for register in kind.regs:
            if register not in seen_regs:
                _fail(
                    f"{path}.kind",
                    f"kind {op.kind!r} needs register {register!r}, "
                    f"which {spec.key} does not define",
                )

    if spec.load_op is not None and spec.load_op not in op_names:
        _fail(f"{root}.load_op", f"unknown operation {spec.load_op!r}")

    instr_names = set()
    for index, instruction in enumerate(spec.instructions):
        path = f"{root}.instructions[{index}]"
        if instruction.mnemonic in instr_names:
            _fail(
                f"{path}.mnemonic",
                f"duplicate instruction {instruction.mnemonic!r}",
            )
        instr_names.add(instruction.mnemonic)
        if instruction.modeled and instruction.reconstructed:
            _fail(
                f"{path}.modeled",
                "an instruction cannot be both modeled and reconstructed",
            )
        if instruction.modeled and spec.description_module is None:
            _fail(
                f"{path}.modeled",
                f"modeled instruction {instruction.mnemonic!r} needs a "
                "description_module",
            )
        if instruction.sim_op is not None and instruction.sim_op not in op_names:
            _fail(
                f"{path}.sim_op",
                f"unknown operation {instruction.sim_op!r}",
            )

    for index, case in enumerate(spec.fuzz):
        path = f"{root}.fuzz[{index}]"
        if case.name not in instr_names:
            _fail(f"{path}.name", f"unknown instruction {case.name!r}")
        if case.sim_op not in op_names:
            _fail(f"{path}.sim_op", f"unknown operation {case.sim_op!r}")
        if case.setup and spec.load_op is None:
            _fail(f"{path}.setup", "machine defines no load_op")
        for sindex, (register, _) in enumerate(case.setup):
            if register not in seen_regs:
                _fail(
                    f"{path}.setup[{sindex}]",
                    f"unknown register {register!r}",
                )
        for oindex, (kind_tag, value) in enumerate(case.outputs):
            opath = f"{path}.outputs[{oindex}]"
            if kind_tag == "reg":
                if value not in seen_regs:
                    _fail(opath, f"unknown register {value!r}")
            elif kind_tag != "flag":
                _fail(opath, f"unknown output kind {kind_tag!r}")
        for oindex, operand in enumerate(case.operands):
            opath = f"{path}.operands[{oindex}]"
            if operand[0] in ("reg", "mem") and operand[1] not in seen_regs:
                _fail(opath, f"unknown register {operand[1]!r}")
            elif operand[0] not in ("reg", "param", "imm", "mem"):
                _fail(opath, f"unknown operand kind {operand[0]!r}")


def validate_descriptions(spec: MachineSpec) -> None:
    """Every modeled instruction resolves to an ISDL loader.

    Import-level validation: catches a modeled catalog entry whose
    description module lacks the loader (or whose loader is not
    callable) with the exact instruction's field path.
    """
    if spec.description_module is None:
        return
    root = f"machines.{spec.key}"
    try:
        module = importlib.import_module(spec.description_module)
    except ImportError as error:
        _fail(
            f"{root}.description_module",
            f"cannot import {spec.description_module!r}: {error}",
        )
    for index, instruction in enumerate(spec.instructions):
        if not instruction.modeled:
            continue
        loader = getattr(module, instruction.mnemonic, None)
        if not callable(loader):
            _fail(
                f"{root}.instructions[{index}].description",
                f"module {spec.description_module!r} has no loader "
                f"{instruction.mnemonic!r}",
            )


def cost_summary(spec: MachineSpec) -> Dict[str, object]:
    """A queryable summary of the machine's cost model.

    Feeds ``repro machines`` and the ROADMAP's cost-driven-selection
    work: base-cost range over the operation table plus the
    per-iteration rows (the exotic instructions' asymptotic terms).
    """
    bases = [op.cost.base for op in spec.operations]
    iterated = {
        op.mnemonic: {"per_unit": op.cost.per_unit, "unit": op.cost.unit}
        for op in spec.operations
        if op.cost.per_unit
    }
    return {
        "operations": len(spec.operations),
        "base_min": min(bases) if bases else None,
        "base_max": max(bases) if bases else None,
        "iterated": iterated,
    }
