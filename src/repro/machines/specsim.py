"""Table-driven simulator: interprets a :class:`MachineSpec` operation
table through the existing :class:`~repro.machines.simbase.Simulator`
base.

Every machine used to carry a bespoke ``execute()`` dispatch; the
semantics those dispatches implemented fall into a small number of
*kinds* (register moves, two- and three-operand ALU, flag branches,
repeat-prefixed string operations, length-code block moves, the list
search).  This module implements each kind once, with the
machine-specific details — which register is the counter, which way
the pointer steps, what the per-iteration cycle charge is — read from
the spec's :class:`~repro.machines.spec.OpSpec` rows.

Adding a machine therefore requires no new simulator code: Z80 and
M68000 run entirely on the kind library below (``rep_move``,
``rep_scan``, ``mem_compare_step``, ``test_and_set``).  Cycle charging
replicates the original hand-written simulators exactly — the order of
charges relative to memory traffic matters to none of the observable
results, but byte-identical ``repro batch`` output requires identical
totals, so each handler documents its charging discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple, Type

from ..asm import Instr, MemRef
from .simbase import SimulationError, Simulator
from .spec import MachineSpec, OpSpec, SpecError


@dataclass(frozen=True)
class Kind:
    """One semantics family of the kind library.

    ``params`` declares the handler's signature — name to
    ``(type, required)`` where type is ``reg``/``int``/``str``/``bool``
    — and ``regs`` the register names the handler hard-codes (the VAX
    string-instruction register protocol).  The spec validator checks
    operation rows against both.
    """

    handler: Callable
    params: Dict[str, Tuple[str, bool]] = field(default_factory=dict)
    regs: Tuple[str, ...] = ()


def _mem_addr(state, operand: MemRef) -> int:
    return state["regs"][operand.base.name] + operand.disp


# ---------------------------------------------------------------------------
# Register transfer, ALU, and control kinds


def _move(sim, op: OpSpec, instr: Instr, state) -> None:
    """Register move; optional byte load/store forms.

    ``store_cost`` enables the memory-destination form (8086 ``mov``,
    VAX ``movb``); ``load_cost`` charges memory sources differently
    from the base cost (8086 ``mov``).  Without them, memory sources
    cost the base charge (VAX ``movl``, B4800 ``ld``) and memory
    destinations are rejected by ``write_reg``.
    """
    dst, src = instr.operands
    params = op.params
    if isinstance(dst, MemRef) and "store_cost" in params:
        state["memory"].write(_mem_addr(state, dst), sim.read(src, state))
        state["cycles"] += params["store_cost"]
        return
    if isinstance(src, MemRef) and "load_cost" in params:
        state["cycles"] += params["load_cost"]
    else:
        state["cycles"] += op.cost.base
    sim.write_reg(dst, sim.read(src, state), state)


def _alu(sim, op: OpSpec, instr: Instr, state) -> None:
    """Add/subtract, two-operand (dst op= src) or three-operand."""
    if op.params.get("form") == "3op":
        dst, left, right = instr.operands
        a = sim.read(left, state)
        b = sim.read(right, state)
    else:
        dst, src = instr.operands
        a = sim.read(dst, state)
        b = sim.read(src, state)
    value = a + b if op.params["op"] == "add" else a - b
    sim.write_reg(dst, value, state)
    state["flags"]["z"] = 1 if (value & sim._mask) == 0 else 0
    state["cycles"] += op.cost.base


def _step(sim, op: OpSpec, instr: Instr, state) -> None:
    """Increment/decrement by ``delta``, setting Z."""
    (dst,) = instr.operands
    value = sim.read(dst, state) + op.params["delta"]
    sim.write_reg(dst, value, state)
    state["flags"]["z"] = 1 if (value & sim._mask) == 0 else 0
    state["cycles"] += op.cost.base


def _compare(sim, op: OpSpec, instr: Instr, state) -> None:
    """Compare, setting Z (and L when ``less_flag`` — VAX ``cmpl``)."""
    left, right = instr.operands
    a = sim.read(left, state)
    b = sim.read(right, state)
    state["flags"]["z"] = 1 if a == b else 0
    if op.params.get("less_flag"):
        state["flags"]["l"] = 1 if a < b else 0
    state["cycles"] += op.cost.base


def _test(sim, op: OpSpec, instr: Instr, state) -> None:
    """Test against zero (VAX ``tstl``)."""
    (operand,) = instr.operands
    state["flags"]["z"] = 1 if sim.read(operand, state) == 0 else 0
    state["cycles"] += op.cost.base


def _move_test(sim, op: OpSpec, instr: Instr, state) -> None:
    """Move and test (IBM 370 ``ltr``)."""
    dst, src = instr.operands
    value = sim.read(src, state)
    sim.write_reg(dst, value, state)
    state["flags"]["z"] = 1 if value == 0 else 0
    state["cycles"] += op.cost.base


def _jump(sim, op: OpSpec, instr: Instr, state) -> None:
    state["cycles"] += op.cost.base
    sim.branch(instr.operands[0], state)


def _branch(sim, op: OpSpec, instr: Instr, state) -> None:
    """Conditional branch on a flag value."""
    state["cycles"] += op.cost.base
    if state["flags"].get(op.params["flag"], 0) == op.params["want"]:
        sim.branch(instr.operands[0], state)


def _count_branch(sim, op: OpSpec, instr: Instr, state) -> None:
    """Decrement and branch if nonzero (IBM 370 ``bct``)."""
    counter, target = instr.operands
    value = (sim.read(counter, state) - 1) & sim._mask
    sim.write_reg(counter, value, state)
    state["cycles"] += op.cost.base
    if value != 0:
        sim.branch(target, state)


def _set_flag(sim, op: OpSpec, instr: Instr, state) -> None:
    """Set a flag to a constant (8086 ``cld``)."""
    state["flags"][op.params["flag"]] = op.params["value"]
    state["cycles"] += op.cost.base


def _byte_load(sim, op: OpSpec, instr: Instr, state) -> None:
    """Byte load from memory (IBM 370 ``ic``)."""
    dst, src = instr.operands
    if not isinstance(src, MemRef):
        raise SimulationError(f"{op.mnemonic} needs a memory source")
    sim.write_reg(dst, state["memory"].read(_mem_addr(state, src)), state)
    state["cycles"] += op.cost.base


def _byte_store(sim, op: OpSpec, instr: Instr, state) -> None:
    """Byte store to memory (IBM 370 ``stc``, B4800 ``st``)."""
    src, dst = instr.operands
    if not isinstance(dst, MemRef):
        raise SimulationError(f"{op.mnemonic} needs a memory destination")
    state["memory"].write(
        _mem_addr(state, dst), sim.read(src, state) & 0xFF
    )
    state["cycles"] += op.cost.base


# ---------------------------------------------------------------------------
# Repeat-prefixed string kinds (8086 rep group, Z80 block group)


def _rep_move(sim, op: OpSpec, instr: Instr, state) -> None:
    """Repeat string move: base charged once, per-rep inside the loop."""
    params = op.params
    regs = state["regs"]
    memory = state["memory"]
    step = params["step"]
    state["cycles"] += op.cost.base
    while regs[params["count"]] != 0:
        memory.write(regs[params["dst"]], memory.read(regs[params["src"]]))
        regs[params["src"]] = (regs[params["src"]] + step) & sim._mask
        regs[params["dst"]] = (regs[params["dst"]] + step) & sim._mask
        regs[params["count"]] = (regs[params["count"]] - 1) & sim._mask
        state["cycles"] += op.cost.per_unit


def _rep_fill(sim, op: OpSpec, instr: Instr, state) -> None:
    """Repeat store of a register byte (8086 ``rep stosb``)."""
    params = op.params
    regs = state["regs"]
    memory = state["memory"]
    step = params["step"]
    state["cycles"] += op.cost.base
    while regs[params["count"]] != 0:
        memory.write(regs[params["dst"]], regs[params["value"]])
        regs[params["dst"]] = (regs[params["dst"]] + step) & sim._mask
        regs[params["count"]] = (regs[params["count"]] - 1) & sim._mask
        state["cycles"] += op.cost.per_unit


def _rep_scan(sim, op: OpSpec, instr: Instr, state) -> None:
    """Repeat scan for a key byte, stopping on match (``repne scasb``,
    Z80 ``cpir``/``cpdr``)."""
    params = op.params
    regs = state["regs"]
    memory = state["memory"]
    flags = state["flags"]
    step = params["step"]
    state["cycles"] += op.cost.base
    while regs[params["count"]] != 0:
        regs[params["count"]] = (regs[params["count"]] - 1) & sim._mask
        byte = memory.read(regs[params["ptr"]])
        regs[params["ptr"]] = (regs[params["ptr"]] + step) & sim._mask
        flags["z"] = 1 if byte == regs[params["key"]] else 0
        state["cycles"] += op.cost.per_unit
        if flags["z"]:
            break


def _rep_compare(sim, op: OpSpec, instr: Instr, state) -> None:
    """Repeat compare of two strings, stopping on mismatch
    (``repe cmpsb``)."""
    params = op.params
    regs = state["regs"]
    memory = state["memory"]
    flags = state["flags"]
    step = params["step"]
    state["cycles"] += op.cost.base
    while regs[params["count"]] != 0:
        regs[params["count"]] = (regs[params["count"]] - 1) & sim._mask
        first = memory.read(regs[params["src"]])
        second = memory.read(regs[params["dst"]])
        regs[params["src"]] = (regs[params["src"]] + step) & sim._mask
        regs[params["dst"]] = (regs[params["dst"]] + step) & sim._mask
        flags["z"] = 1 if first == second else 0
        state["cycles"] += op.cost.per_unit
        if not flags["z"]:
            break


# ---------------------------------------------------------------------------
# VAX character-string kinds (architected register protocol)


def _movc3(sim, op: OpSpec, instr: Instr, state) -> None:
    """VAX ``movc3``: overlap-safe move, R0-R3 protocol, Z set."""
    regs = state["regs"]
    memory = state["memory"]
    length_op, src_op, dst_op = instr.operands
    length = sim.read(length_op, state)
    src = sim.read(src_op, state)
    dst = sim.read(dst_op, state)
    state["cycles"] += op.cost.base + op.cost.per_unit * length
    if src < dst:
        for offset in range(length - 1, -1, -1):
            memory.write(dst + offset, memory.read(src + offset))
    else:
        for offset in range(length):
            memory.write(dst + offset, memory.read(src + offset))
    regs["r0"] = 0
    regs["r1"] = (src + length) & sim._mask
    regs["r2"] = 0
    regs["r3"] = (dst + length) & sim._mask
    state["flags"]["z"] = 1
    return


def _movc5(sim, op: OpSpec, instr: Instr, state) -> None:
    """VAX ``movc5``: move with fill; per-byte cost over the
    destination length."""
    regs = state["regs"]
    memory = state["memory"]
    srclen_op, src_op, fill_op, dstlen_op, dst_op = instr.operands
    srclen = sim.read(srclen_op, state)
    src = sim.read(src_op, state)
    fill = sim.read(fill_op, state)
    dstlen = sim.read(dstlen_op, state)
    dst = sim.read(dst_op, state)
    moved = min(srclen, dstlen)
    state["cycles"] += op.cost.base + op.cost.per_unit * dstlen
    for offset in range(moved):
        memory.write(dst + offset, memory.read(src + offset))
    for offset in range(moved, dstlen):
        memory.write(dst + offset, fill & 0xFF)
    regs["r0"] = max(0, srclen - moved)
    regs["r1"] = (src + moved) & sim._mask
    regs["r2"] = 0
    regs["r3"] = (dst + dstlen) & sim._mask


def _locc(sim, op: OpSpec, instr: Instr, state) -> None:
    """VAX ``locc``: per-byte charge *before* each compare."""
    regs = state["regs"]
    memory = state["memory"]
    char_op, length_op, addr_op = instr.operands
    char = sim.read(char_op, state)
    length = sim.read(length_op, state)
    addr = sim.read(addr_op, state)
    state["cycles"] += op.cost.base
    remaining = length
    pointer = addr
    while remaining != 0:
        state["cycles"] += op.cost.per_unit
        if memory.read(pointer) == char:
            break
        pointer += 1
        remaining -= 1
    regs["r0"] = remaining & sim._mask
    regs["r1"] = pointer & sim._mask
    state["flags"]["z"] = 1 if remaining == 0 else 0


def _cmpc3(sim, op: OpSpec, instr: Instr, state) -> None:
    """VAX ``cmpc3``: R0/R1/R3 protocol, Z on full-length equality."""
    regs = state["regs"]
    memory = state["memory"]
    length_op, addr1_op, addr2_op = instr.operands
    length = sim.read(length_op, state)
    addr1 = sim.read(addr1_op, state)
    addr2 = sim.read(addr2_op, state)
    state["cycles"] += op.cost.base
    remaining = length
    p1, p2 = addr1, addr2
    equal = True
    while remaining != 0:
        state["cycles"] += op.cost.per_unit
        if memory.read(p1) != memory.read(p2):
            equal = False
            break
        p1 += 1
        p2 += 1
        remaining -= 1
    regs["r0"] = remaining & sim._mask
    regs["r1"] = p1 & sim._mask
    regs["r3"] = p2 & sim._mask
    state["flags"]["z"] = 1 if equal else 0


# ---------------------------------------------------------------------------
# Length-code block kinds (IBM 370 SS format, B4800)


def _block_move_lc(sim, op: OpSpec, instr: Instr, state) -> None:
    """Block move with count-minus-one length code (``mvc``, ``mva``):
    the operand carries ``count - 1`` (paper §4.2's coding constraint),
    and the whole cost is charged up front."""
    memory = state["memory"]
    dst_op, src_op, length_op = instr.operands
    dst = sim.read(dst_op, state)
    src = sim.read(src_op, state)
    count = (sim.read(length_op, state) & 0xFF) + 1
    state["cycles"] += op.cost.base + op.cost.per_unit * count
    for offset in range(count):
        memory.write(dst + offset, memory.read(src + offset))


def _block_compare_lc(sim, op: OpSpec, instr: Instr, state) -> None:
    """Block compare with length code (``clc``): per-byte cost over the
    bytes actually compared, charged after the loop."""
    memory = state["memory"]
    c1_op, c2_op, length_op = instr.operands
    c1 = sim.read(c1_op, state)
    c2 = sim.read(c2_op, state)
    count = (sim.read(length_op, state) & 0xFF) + 1
    equal = True
    compared = 0
    for offset in range(count):
        compared += 1
        if memory.read(c1 + offset) != memory.read(c2 + offset):
            equal = False
            break
    state["cycles"] += op.cost.base + op.cost.per_unit * compared
    state["flags"]["z"] = 1 if equal else 0


def _translate_lc(sim, op: OpSpec, instr: Instr, state) -> None:
    """Block translate with length code (``tr``)."""
    memory = state["memory"]
    d1_op, d2_op, length_op = instr.operands
    d1 = sim.read(d1_op, state)
    d2 = sim.read(d2_op, state)
    count = (sim.read(length_op, state) & 0xFF) + 1
    state["cycles"] += op.cost.base + op.cost.per_unit * count
    for offset in range(count):
        byte = memory.read(d1 + offset)
        memory.write(d1 + offset, memory.read(d2 + byte))


# ---------------------------------------------------------------------------
# List and cell kinds (B4800 srl, M68000 cmpm/tas)


def _list_search(sim, op: OpSpec, instr: Instr, state) -> None:
    """Follow links (at offset 0) until the byte at ``node + offset``
    equals the key; found node (or 0) lands in the ``result``
    register (B4800 ``srl``, paper §1)."""
    memory = state["memory"]
    head_op, key_op, offset_op = instr.operands
    node = sim.read(head_op, state)
    key = sim.read(key_op, state)
    offset = sim.read(offset_op, state)
    state["cycles"] += op.cost.base
    while node != 0:
        state["cycles"] += op.cost.per_unit
        if memory.read(node + offset) == key:
            break
        node = memory.read(node)  # link field FIRST in the record
    state["regs"][op.params["result"]] = node & sim._mask
    state["flags"]["z"] = 1 if node == 0 else 0


def _mem_compare_step(sim, op: OpSpec, instr: Instr, state) -> None:
    """Compare bytes at two register-held addresses, then step both
    pointers (M68000 ``cmpm (ax)+,(ay)+``)."""
    memory = state["memory"]
    first_op, second_op = instr.operands
    a1 = sim.read(first_op, state)
    a2 = sim.read(second_op, state)
    state["flags"]["z"] = 1 if memory.read(a1) == memory.read(a2) else 0
    step = op.params["step"]
    sim.write_reg(first_op, a1 + step, state)
    sim.write_reg(second_op, a2 + step, state)
    state["cycles"] += op.cost.base


def _test_and_set(sim, op: OpSpec, instr: Instr, state) -> None:
    """Read a byte, set Z from it, write it back with the high bit set
    (M68000 ``tas`` — the indivisible semaphore primitive)."""
    (dst,) = instr.operands
    if not isinstance(dst, MemRef):
        raise SimulationError(f"{op.mnemonic} needs a memory destination")
    memory = state["memory"]
    addr = _mem_addr(state, dst)
    byte = memory.read(addr)
    state["flags"]["z"] = 1 if byte == 0 else 0
    memory.write(addr, byte | 0x80)
    state["cycles"] += op.cost.base


# ---------------------------------------------------------------------------
# The kind registry

_REG = ("reg", True)
_INT = ("int", True)
_STR = ("str", True)
_OPT_INT = ("int", False)
_OPT_STR = ("str", False)
_OPT_BOOL = ("bool", False)

KINDS: Dict[str, Kind] = {
    "move": Kind(_move, {"load_cost": _OPT_INT, "store_cost": _OPT_INT}),
    "alu": Kind(_alu, {"op": _STR, "form": _OPT_STR}),
    "step": Kind(_step, {"delta": _INT}),
    "compare": Kind(_compare, {"less_flag": _OPT_BOOL}),
    "test": Kind(_test),
    "move_test": Kind(_move_test),
    "jump": Kind(_jump),
    "branch": Kind(_branch, {"flag": _STR, "want": _INT}),
    "count_branch": Kind(_count_branch),
    "set_flag": Kind(_set_flag, {"flag": _STR, "value": _INT}),
    "byte_load": Kind(_byte_load),
    "byte_store": Kind(_byte_store),
    "rep_move": Kind(
        _rep_move,
        {"src": _REG, "dst": _REG, "count": _REG, "step": _INT},
    ),
    "rep_fill": Kind(
        _rep_fill,
        {"dst": _REG, "count": _REG, "value": _REG, "step": _INT},
    ),
    "rep_scan": Kind(
        _rep_scan,
        {"ptr": _REG, "count": _REG, "key": _REG, "step": _INT},
    ),
    "rep_compare": Kind(
        _rep_compare,
        {"src": _REG, "dst": _REG, "count": _REG, "step": _INT},
    ),
    "movc3": Kind(_movc3, regs=("r0", "r1", "r2", "r3")),
    "movc5": Kind(_movc5, regs=("r0", "r1", "r2", "r3")),
    "locc": Kind(_locc, regs=("r0", "r1")),
    "cmpc3": Kind(_cmpc3, regs=("r0", "r1", "r3")),
    "block_move_lc": Kind(_block_move_lc),
    "block_compare_lc": Kind(_block_compare_lc),
    "translate_lc": Kind(_translate_lc),
    "list_search": Kind(_list_search, {"result": _REG}),
    "mem_compare_step": Kind(_mem_compare_step, {"step": _INT}),
    "test_and_set": Kind(_test_and_set),
}


class SpecSimulator(Simulator):
    """A :class:`Simulator` whose ``execute`` dispatches through the
    machine spec's operation table.  Subclasses are generated by
    :func:`spec_simulator`; the class attributes (``REGISTERS``,
    ``WIDTH_BITS``, ``COSTS``) are derived from the spec so existing
    callers see the same surface the hand-written simulators had."""

    SPEC: MachineSpec = None  # type: ignore[assignment]
    #: mnemonic -> (kind handler, OpSpec), built by spec_simulator.
    DISPATCH: Dict[str, Tuple[Callable, OpSpec]] = {}

    def execute(self, instr: Instr, state) -> None:
        entry = self.DISPATCH.get(instr.mnemonic)
        if entry is None:
            raise SimulationError(
                f"{self.SPEC.sim_name}: unknown mnemonic {instr.mnemonic!r}"
            )
        handler, op = entry
        handler(self, op, instr, state)


def spec_simulator(spec: MachineSpec) -> Type[SpecSimulator]:
    """Generate the simulator class for one machine spec.

    The returned class is a drop-in replacement for the hand-written
    simulators: same ``REGISTERS``/``WIDTH_BITS``/``COSTS`` surface,
    same error messages, same cycle accounting.
    """
    if not spec.operations:
        raise SpecError(
            f"machines.{spec.key}.operations: machine defines no "
            "operations, so no simulator can be generated"
        )
    dispatch = {
        op.mnemonic: (KINDS[op.kind].handler, op) for op in spec.operations
    }
    return type(
        f"{spec.key.capitalize()}SpecSimulator",
        (SpecSimulator,),
        {
            "__doc__": f"Generated simulator for the {spec.name} spec.",
            "SPEC": spec,
            "DISPATCH": dispatch,
            "REGISTERS": tuple(spec.registers),
            "WIDTH_BITS": spec.word_bits,
            "COSTS": {op.mnemonic: op.cost.base for op in spec.operations},
        },
    )
