"""Declarative spec for the Univac 1100.

Table 1 reports 21 string/list exotic instructions for the 1100 but
names none of them; every entry here is a representative
reconstruction (``reconstructed=True``, ``modeled=False``).  The spec
therefore defines no description module and no operation table — the
machine exists so the catalog counts match the paper and so lint
coverage and ``repro stats`` report the gap honestly
(``no-descriptions``) instead of skipping the machine.
"""

from __future__ import annotations

from ..spec import InstructionSpec, MachineSpec

SPEC = MachineSpec(
    key="univac1100",
    name="Univac 1100",
    manufacturer="Sperry Univac",
    word_bits=36,
    instructions=tuple(
        InstructionSpec(name, operation, reconstructed=True)
        for name, operation in (
            ("bt", "block transfer"),
            ("btt", "block transfer and translate"),
            ("bim", "byte incremental move"),
            ("bimt", "byte incremental move and translate"),
            ("bicl", "byte incremental compare limit"),
            ("bde", "byte decimal edit"),
            ("bdsub", "byte decimal subtract"),
            ("bdadd", "byte decimal add"),
            ("sfs", "search forward for sentinel"),
            ("sfc", "search forward for character"),
            ("sne", "search not equal"),
            ("se", "search equal"),
            ("sle", "search less or equal"),
            ("sg", "search greater"),
            ("sw", "search within limits"),
            ("snw", "search not within limits"),
            ("mse", "masked search equal"),
            ("msne", "masked search not equal"),
            ("msle", "masked search less or equal"),
            ("msg", "masked search greater"),
            ("bf", "byte fill"),
        )
    ),
)
