"""Univac 1100: catalog entries only (Table 1 reports 21 instructions)."""
