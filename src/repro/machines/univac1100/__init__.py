"""Univac 1100: spec-backed catalog entries (Table 1 reports 21
instructions; all are reconstructed, none modeled — the spec says so
explicitly instead of this package being an empty stub)."""

from .spec import SPEC

__all__ = ["SPEC"]
