"""Shared simulator core for the three target machines.

Each machine subclass supplies its register file, its cost table, and
an ``execute`` method for its mnemonics; this base handles label
resolution, the fetch loop, parameter binding, cycle accounting, and
the ``setres`` pseudo-instruction the benchmark harness uses to read
results out of a run.

Cycle costs are representative figures from the machines' timing
tables; absolute numbers are not the point (DESIGN.md) — the *relative*
cost of an exotic instruction versus its decomposed loop is what the §6
benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..asm import AsmProgram, Imm, Instr, Label, LabelRef, MemRef, ParamRef, Reg
from ..semantics.state import Memory


class SimulationError(Exception):
    """Bad program: unknown mnemonic, register, or label."""


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cycles: int
    instructions_executed: int
    registers: Dict[str, int]
    memory: Memory
    results: Dict[str, int] = field(default_factory=dict)
    #: condition flags at exit ("z", ...); lets differential checks
    #: compare flag outputs without materializing them through branches.
    flags: Dict[str, int] = field(default_factory=dict)


class Simulator:
    """Base class; subclasses define REGISTERS, WIDTH_BITS, and execute()."""

    #: register names the machine provides.
    REGISTERS: tuple = ()
    #: register width in bits (wrap-around on writes).
    WIDTH_BITS: int = 16
    #: mnemonic -> base cycle cost.  Per-iteration costs of the string
    #: instructions are charged inside execute().
    COSTS: Dict[str, int] = {}

    def __init__(self) -> None:
        self._mask = (1 << self.WIDTH_BITS) - 1

    # -- helpers for subclasses ----------------------------------------

    def read(self, operand, state) -> int:
        if isinstance(operand, Reg):
            try:
                return state["regs"][operand.name]
            except KeyError:
                raise SimulationError(f"unknown register {operand.name!r}")
        if isinstance(operand, Imm):
            return operand.value & self._mask
        if isinstance(operand, ParamRef):
            try:
                return state["params"][operand.name] & self._mask
            except KeyError:
                raise SimulationError(f"unbound parameter {operand.name!r}")
        if isinstance(operand, MemRef):
            addr = state["regs"][operand.base.name] + operand.disp
            return state["memory"].read(addr)
        raise SimulationError(f"cannot read operand {operand!r}")

    def write_reg(self, operand, value: int, state) -> None:
        if not isinstance(operand, Reg):
            raise SimulationError(f"destination must be a register: {operand!r}")
        if operand.name not in state["regs"]:
            raise SimulationError(f"unknown register {operand.name!r}")
        state["regs"][operand.name] = value & self._mask

    def cost(self, mnemonic: str) -> int:
        try:
            return self.COSTS[mnemonic]
        except KeyError:
            raise SimulationError(f"no cost defined for mnemonic {mnemonic!r}")

    # -- the fetch loop --------------------------------------------------

    def run(
        self,
        program: AsmProgram,
        params: Optional[Mapping[str, int]] = None,
        memory: Optional[Mapping[int, int]] = None,
        max_instructions: int = 5_000_000,
    ) -> SimResult:
        labels: Dict[str, int] = {}
        for index, line in enumerate(program.lines):
            if isinstance(line, Label):
                if line.name in labels:
                    raise SimulationError(f"duplicate label {line.name!r}")
                labels[line.name] = index
        state = {
            "regs": {name: 0 for name in self.REGISTERS},
            "params": dict(params or {}),
            "memory": Memory(dict(memory) if memory else {}),
            "flags": {"z": 0},
            "results": {},
            "cycles": 0,
            "labels": labels,
            "pc": 0,
        }
        executed = 0
        lines = program.lines
        while 0 <= state["pc"] < len(lines):
            line = lines[state["pc"]]
            state["pc"] += 1
            if isinstance(line, Label):
                continue
            executed += 1
            if executed > max_instructions:
                raise SimulationError("instruction budget exceeded (runaway loop?)")
            if line.mnemonic == "setres":
                name, src = line.operands
                state["results"][name.name] = self.read(src, state)
                continue
            self.execute(line, state)
        return SimResult(
            cycles=state["cycles"],
            instructions_executed=executed,
            registers=dict(state["regs"]),
            memory=state["memory"],
            results=dict(state["results"]),
            flags=dict(state["flags"]),
        )

    def branch(self, target, state) -> None:
        if not isinstance(target, LabelRef):
            raise SimulationError(f"branch target must be a label: {target!r}")
        try:
            state["pc"] = state["labels"][target.name]
        except KeyError:
            raise SimulationError(f"undefined label {target.name!r}")

    def execute(self, instr: Instr, state) -> None:
        raise NotImplementedError
