"""Intel 8086: string-instruction descriptions and simulator."""

from .descriptions import cmpsb, movsb, scasb
from .sim import I8086Simulator

__all__ = ["cmpsb", "movsb", "scasb", "I8086Simulator"]
