"""Declarative spec for the Intel 8086.

Everything the repo knows about the 8086 — Table 1 catalog entries,
simulator operation table with the documented base-plus-per-iteration
timings (8086 timing tables: movs 17/rep, scas 15/rep, cmps 22/rep,
9 cycles for the rep setup), and the differential-fuzz scenarios — in
one validated data object.
"""

from __future__ import annotations

from ..spec import CostSpec, FuzzCase, InstructionSpec, MachineSpec, OpSpec

SPEC = MachineSpec(
    key="i8086",
    name="Intel 8086",
    manufacturer="Intel",
    word_bits=16,
    registers=("ax", "bx", "cx", "dx", "si", "di", "bp", "al"),
    sim_name="8086",
    load_op="mov",
    description_module="repro.machines.i8086.descriptions",
    instructions=(
        InstructionSpec("movsb", "string move", modeled=True, sim_op="rep_movsb"),
        InstructionSpec("cmpsb", "string compare", modeled=True, sim_op="repe_cmpsb"),
        InstructionSpec("scasb", "string search", modeled=True, sim_op="repne_scasb"),
        InstructionSpec("lodsb", "string load"),
        InstructionSpec("stosb", "string store / fill", modeled=True, sim_op="rep_stosb"),
        InstructionSpec("xlat", "table translate"),
    ),
    operations=(
        # worst of reg,imm(4)/reg,reg(2); memory forms cost 10.
        OpSpec(
            "mov",
            "move",
            CostSpec(4),
            {"load_cost": 10, "store_cost": 10},
        ),
        OpSpec("add", "alu", CostSpec(3), {"op": "add"}),
        OpSpec("sub", "alu", CostSpec(3), {"op": "sub"}),
        OpSpec("inc", "step", CostSpec(2), {"delta": 1}),
        OpSpec("dec", "step", CostSpec(2), {"delta": -1}),
        OpSpec("cmp", "compare", CostSpec(3)),
        OpSpec("jmp", "jump", CostSpec(15)),
        OpSpec("jz", "branch", CostSpec(8), {"flag": "z", "want": 1}),
        OpSpec("jnz", "branch", CostSpec(8), {"flag": "z", "want": 0}),
        OpSpec("cld", "set_flag", CostSpec(2), {"flag": "d", "value": 0}),
        OpSpec(
            "rep_movsb",
            "rep_move",
            CostSpec(9, per_unit=17, unit="rep"),
            {"src": "si", "dst": "di", "count": "cx", "step": 1},
        ),
        OpSpec(
            "rep_stosb",
            "rep_fill",
            CostSpec(9, per_unit=10, unit="rep"),
            {"dst": "di", "count": "cx", "value": "al", "step": 1},
        ),
        OpSpec(
            "repne_scasb",
            "rep_scan",
            CostSpec(9, per_unit=15, unit="rep"),
            {"ptr": "di", "count": "cx", "key": "al", "step": 1},
        ),
        OpSpec(
            "repe_cmpsb",
            "rep_compare",
            CostSpec(9, per_unit=22, unit="rep"),
            {"src": "si", "dst": "di", "count": "cx", "step": 1},
        ),
    ),
    fuzz=(
        FuzzCase(
            name="movsb",
            sim_op="rep_movsb",
            vars=(("cx", ("int", 0, 12)),),
            memory=(("string", 16, 16), ("string", 300, 16)),
            isdl_inputs=(
                ("rf", 1),
                ("df", 0),
                ("si", 16),
                ("di", 300),
                ("cx", ("var", "cx")),
            ),
            params=(("si", 16), ("di", 300), ("cx", ("var", "cx"))),
            setup=(("si", ("param", "si")), ("di", ("param", "di")), ("cx", ("param", "cx"))),
            outputs=(("reg", "si"), ("reg", "di"), ("reg", "cx")),
        ),
        FuzzCase(
            name="scasb",
            sim_op="repne_scasb",
            vars=(
                ("cx", ("int", 0, 12)),
                ("al", ("byte_from", 16, 16)),
            ),
            memory=(("string", 16, 16),),
            isdl_inputs=(
                ("rf", 1),
                ("rfz", 0),
                ("df", 0),
                ("zf", 0),
                ("di", 16),
                ("cx", ("var", "cx")),
                ("al", ("var", "al")),
            ),
            params=(("di", 16), ("cx", ("var", "cx")), ("al", ("var", "al"))),
            setup=(("di", ("param", "di")), ("cx", ("param", "cx")), ("al", ("param", "al"))),
            outputs=(("flag", "z"), ("reg", "di"), ("reg", "cx")),
        ),
        FuzzCase(
            name="cmpsb",
            sim_op="repe_cmpsb",
            vars=(("cx", ("int", 0, 12)),),
            memory=(
                ("string", 16, 16),
                ("string", 300, 16),
                ("mirror_maybe", 300, 16, 16),
            ),
            isdl_inputs=(
                ("rf", 1),
                ("rfz", 1),
                ("df", 0),
                ("zf", 0),
                ("si", 16),
                ("di", 300),
                ("cx", ("var", "cx")),
            ),
            params=(("si", 16), ("di", 300), ("cx", ("var", "cx"))),
            setup=(("si", ("param", "si")), ("di", ("param", "di")), ("cx", ("param", "cx"))),
            outputs=(("flag", "z"), ("reg", "si"), ("reg", "di"), ("reg", "cx")),
        ),
        FuzzCase(
            name="stosb",
            sim_op="rep_stosb",
            vars=(("cx", ("int", 0, 12)), ("al", ("byte",))),
            memory=(("string", 40, 16),),
            isdl_inputs=(
                ("rf", 1),
                ("df", 0),
                ("al", ("var", "al")),
                ("cx", ("var", "cx")),
                ("di", 40),
            ),
            params=(("di", 40), ("cx", ("var", "cx")), ("al", ("var", "al"))),
            setup=(("di", ("param", "di")), ("cx", ("param", "cx")), ("al", ("param", "al"))),
            outputs=(("reg", "di"), ("reg", "cx")),
        ),
    ),
)
