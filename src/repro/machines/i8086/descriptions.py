"""ISDL descriptions of the Intel 8086 string instructions.

``scasb`` is transcribed from the paper's figure 3; ``movsb`` and
``cmpsb`` follow the same style (flag operands ``rf``/``df``/``rfz``
controlling repetition, direction, and the exit condition; ``fetch``
access routines that advance their pointer by the direction flag).
Segment addressing is ignored, as in the paper's figures.
"""

from __future__ import annotations

from functools import lru_cache

from ...isdl import ast, parse_description

SCASB_TEXT = """
scasb.instruction := begin
    ! segment addressing ignored in this description
    ** SOURCE.ACCESS **
        di<15:0>,                       ! source string address
        cx<15:0>,                       ! source string length
        fetch()<7:0> := begin           ! fetch source character
            fetch <- Mb[ di ];
            if df                       ! control direction of fetch
            then
                di <- di - 1;           ! high-to-low addresses
            else
                di <- di + 1;           ! low-to-high addresses
            end_if;
        end
    ** STATE **
        rf<>,                           ! repeat flag
        df<>,                           ! direction flag
        rfz<>,                          ! exit condition flag
        zf<>,                           ! last compare zero flag
        al<7:0>                         ! character sought
    ** STRING.PROCESS **
        scasb.execute() := begin
            input (rf, rfz, df, zf, di, cx, al);
            if (not rf)
            then                        ! no repetition
                if (al - fetch()) = 0
                then
                    zf <- 1;
                else
                    zf <- 0;
                end_if;
            else                        ! repeat mode
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    if (al - fetch()) = 0
                    then
                        zf <- 1;
                    else
                        zf <- 0;
                    end_if;
                    exit_when (rfz and (not zf)) or ((not rfz) and zf);  ! exit on condition
                end_repeat;
            end_if;
            output (zf, di, cx);
        end
end
"""

MOVSB_TEXT = """
movsb.instruction := begin
    ! segment addressing ignored in this description
    ** SOURCE.ACCESS **
        si<15:0>,                       ! source string address
        di<15:0>,                       ! destination string address
        cx<15:0>,                       ! string length
        fetch()<7:0> := begin           ! fetch source character
            fetch <- Mb[ si ];
            if df
            then
                si <- si - 1;           ! high-to-low addresses
            else
                si <- si + 1;           ! low-to-high addresses
            end_if;
        end
    ** STATE **
        rf<>,                           ! repeat flag
        df<>                            ! direction flag
    ** STRING.PROCESS **
        movsb.execute() := begin
            input (rf, df, si, di, cx);
            if (not rf)
            then                        ! no repetition
                Mb[ di ] <- fetch();
                if df
                then
                    di <- di - 1;
                else
                    di <- di + 1;
                end_if;
            else                        ! repeat mode
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    Mb[ di ] <- fetch();
                    if df
                    then
                        di <- di - 1;
                    else
                        di <- di + 1;
                    end_if;
                end_repeat;
            end_if;
            output (si, di, cx);
        end
end
"""

CMPSB_TEXT = """
cmpsb.instruction := begin
    ! segment addressing ignored in this description
    ** SOURCE.ACCESS **
        si<15:0>,                       ! first string address
        di<15:0>,                       ! second string address
        cx<15:0>,                       ! string length
        fetchs()<7:0> := begin          ! fetch from first string
            fetchs <- Mb[ si ];
            if df
            then
                si <- si - 1;
            else
                si <- si + 1;
            end_if;
        end,
        fetchd()<7:0> := begin          ! fetch from second string
            fetchd <- Mb[ di ];
            if df
            then
                di <- di - 1;
            else
                di <- di + 1;
            end_if;
        end
    ** STATE **
        rf<>,                           ! repeat flag
        df<>,                           ! direction flag
        rfz<>,                          ! exit condition flag
        zf<>                            ! last compare zero flag
    ** STRING.PROCESS **
        cmpsb.execute() := begin
            input (rf, rfz, df, zf, si, di, cx);
            if (not rf)
            then                        ! no repetition
                if (fetchs() - fetchd()) = 0
                then
                    zf <- 1;
                else
                    zf <- 0;
                end_if;
            else                        ! repeat mode
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    if (fetchs() - fetchd()) = 0
                    then
                        zf <- 1;
                    else
                        zf <- 0;
                    end_if;
                    exit_when (rfz and (not zf)) or ((not rfz) and zf);  ! exit on condition
                end_repeat;
            end_if;
            output (zf, si, di, cx);
        end
end
"""


STOSB_TEXT = """
stosb.instruction := begin
    ! segment addressing ignored in this description
    ** SOURCE.ACCESS **
        di<15:0>,                       ! destination string address
        cx<15:0>                        ! string length
    ** STATE **
        rf<>,                           ! repeat flag
        df<>,                           ! direction flag
        al<7:0>                         ! fill character
    ** STRING.PROCESS **
        stosb.execute() := begin
            input (rf, df, al, cx, di);
            if (not rf)
            then                        ! no repetition
                Mb[ di ] <- al;
                if df
                then
                    di <- di - 1;
                else
                    di <- di + 1;
                end_if;
            else                        ! repeat mode
                repeat
                    exit_when (cx = 0);
                    cx <- cx - 1;
                    Mb[ di ] <- al;
                    if df
                    then
                        di <- di - 1;
                    else
                        di <- di + 1;
                    end_if;
                end_repeat;
            end_if;
            output (di, cx);
        end
end
"""


@lru_cache(maxsize=None)
def stosb() -> ast.Description:
    """The stosb (repeatable string store / fill) instruction."""
    return parse_description(STOSB_TEXT)


@lru_cache(maxsize=None)
def scasb() -> ast.Description:
    """The scasb instruction (paper figure 3)."""
    return parse_description(SCASB_TEXT)


@lru_cache(maxsize=None)
def movsb() -> ast.Description:
    """The movsb (repeatable string move) instruction."""
    return parse_description(MOVSB_TEXT)


@lru_cache(maxsize=None)
def cmpsb() -> ast.Description:
    """The cmpsb (repeatable string compare) instruction."""
    return parse_description(CMPSB_TEXT)
