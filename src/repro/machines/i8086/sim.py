"""Intel 8086 subset simulator with a representative cycle model.

Covers the instructions the code generator emits: register moves and
arithmetic, byte loads/stores, conditional branches, the direction-flag
control, and the repeat-prefixed string instructions (``rep movsb``,
``repne scasb``, ``repe cmpsb``) with their documented
base-plus-per-iteration timings (8086 timing tables: movs 17/rep,
scas 15/rep, cmps 22/rep, 9 cycles for the rep setup).
"""

from __future__ import annotations

from ...asm import Imm, Instr, MemRef, Reg
from ..simbase import SimulationError, Simulator


class I8086Simulator(Simulator):
    """Executes the 8086 subset."""

    REGISTERS = ("ax", "bx", "cx", "dx", "si", "di", "bp", "al")
    WIDTH_BITS = 16

    COSTS = {
        "mov": 4,  # worst of reg,imm(4)/reg,reg(2); memory forms below
        "movb_load": 10,
        "movb_store": 10,
        "add": 3,
        "sub": 3,
        "inc": 2,
        "dec": 2,
        "cmp": 3,
        "jmp": 15,
        "jz": 8,
        "jnz": 8,
        "cld": 2,
        "rep_movsb": 9,
        "rep_stosb": 9,
        "repne_scasb": 9,
        "repe_cmpsb": 9,
    }

    MOVS_PER_REP = 17
    STOS_PER_REP = 10
    SCAS_PER_REP = 15
    CMPS_PER_REP = 22

    def execute(self, instr: Instr, state) -> None:
        mnemonic = instr.mnemonic
        regs = state["regs"]
        flags = state["flags"]
        memory = state["memory"]

        if mnemonic == "mov":
            dst, src = instr.operands
            if isinstance(dst, MemRef):
                addr = regs[dst.base.name] + dst.disp
                memory.write(addr, self.read(src, state))
                state["cycles"] += self.COSTS["movb_store"]
                return
            if isinstance(src, MemRef):
                state["cycles"] += self.COSTS["movb_load"]
            else:
                state["cycles"] += self.COSTS["mov"]
            self.write_reg(dst, self.read(src, state), state)
            return
        if mnemonic in ("add", "sub"):
            dst, src = instr.operands
            left = self.read(dst, state)
            right = self.read(src, state)
            value = left + right if mnemonic == "add" else left - right
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic in ("inc", "dec"):
            (dst,) = instr.operands
            delta = 1 if mnemonic == "inc" else -1
            value = self.read(dst, state) + delta
            self.write_reg(dst, value, state)
            flags["z"] = 1 if (value & self._mask) == 0 else 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "cmp":
            left, right = instr.operands
            flags["z"] = (
                1 if self.read(left, state) == self.read(right, state) else 0
            )
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "jmp":
            state["cycles"] += self.cost(mnemonic)
            self.branch(instr.operands[0], state)
            return
        if mnemonic in ("jz", "jnz"):
            state["cycles"] += self.cost(mnemonic)
            taken = flags["z"] == 1 if mnemonic == "jz" else flags["z"] == 0
            if taken:
                self.branch(instr.operands[0], state)
            return
        if mnemonic == "cld":
            flags["d"] = 0
            state["cycles"] += self.cost(mnemonic)
            return
        if mnemonic == "rep_movsb":
            state["cycles"] += self.cost(mnemonic)
            while regs["cx"] != 0:
                memory.write(regs["di"], memory.read(regs["si"]))
                regs["si"] = (regs["si"] + 1) & self._mask
                regs["di"] = (regs["di"] + 1) & self._mask
                regs["cx"] = (regs["cx"] - 1) & self._mask
                state["cycles"] += self.MOVS_PER_REP
            return
        if mnemonic == "rep_stosb":
            state["cycles"] += self.cost(mnemonic)
            while regs["cx"] != 0:
                memory.write(regs["di"], regs["al"])
                regs["di"] = (regs["di"] + 1) & self._mask
                regs["cx"] = (regs["cx"] - 1) & self._mask
                state["cycles"] += self.STOS_PER_REP
            return
        if mnemonic == "repne_scasb":
            state["cycles"] += self.cost(mnemonic)
            while regs["cx"] != 0:
                regs["cx"] = (regs["cx"] - 1) & self._mask
                byte = memory.read(regs["di"])
                regs["di"] = (regs["di"] + 1) & self._mask
                flags["z"] = 1 if byte == regs["al"] else 0
                state["cycles"] += self.SCAS_PER_REP
                if flags["z"]:
                    break
            return
        if mnemonic == "repe_cmpsb":
            state["cycles"] += self.cost(mnemonic)
            while regs["cx"] != 0:
                regs["cx"] = (regs["cx"] - 1) & self._mask
                first = memory.read(regs["si"])
                second = memory.read(regs["di"])
                regs["si"] = (regs["si"] + 1) & self._mask
                regs["di"] = (regs["di"] + 1) & self._mask
                flags["z"] = 1 if first == second else 0
                state["cycles"] += self.CMPS_PER_REP
                if not flags["z"]:
                    break
            return
        raise SimulationError(f"8086: unknown mnemonic {mnemonic!r}")
