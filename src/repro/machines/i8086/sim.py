"""Intel 8086 simulator, generated from the declarative machine spec.

The bespoke ``execute()`` dispatch this module used to carry lives in
the shared kind library now (:mod:`repro.machines.specsim`); the
8086-specific facts — register file, the documented
base-plus-per-iteration string timings (movs 17/rep, scas 15/rep,
cmps 22/rep, 9 cycles for the rep setup), which register is the
counter — are data in :mod:`repro.machines.i8086.spec`.
"""

from __future__ import annotations

from ..specsim import spec_simulator
from .spec import SPEC

#: Executes the 8086 subset; drop-in for the old hand-written class.
I8086Simulator = spec_simulator(SPEC)
