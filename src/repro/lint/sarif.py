"""SARIF 2.1.0 export for lint reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests; CI uploads the
output of ``repro lint --all --format sarif`` as a code-scanning
artifact so lint findings surface next to the diff instead of inside a
job log.

The document is deterministic: rules are every registered code in
sorted order (so the rule table is stable even when a run is clean),
results follow the report order :func:`repro.lint.engine.lint_all`
already fixes, and the JSON text is rendered with sorted keys.
Suppressed findings are carried as SARIF ``suppressions`` entries
rather than dropped, mirroring how :class:`~repro.lint.diagnostics\
.LintReport` keeps them visible.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .diagnostics import CODES, Diagnostic, LintReport

#: SARIF schema pin — part of the output contract, asserted by tests.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"warning": "warning", "error": "error"}


def _rules() -> List[Dict[str, object]]:
    return [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": "error" if code.startswith("E") else "warning"
            },
        }
        for code, summary in sorted(CODES.items())
    ]


def _result(
    diagnostic: Diagnostic,
    target: str,
    justification: Optional[str] = None,
) -> Dict[str, object]:
    message = diagnostic.message
    if diagnostic.routine:
        message += f" (in {diagnostic.routine})"
    location: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": target},
        },
        "logicalLocations": [
            {"name": diagnostic.description, "kind": "module"}
        ],
    }
    if diagnostic.location is not None:
        location["physicalLocation"]["region"] = {
            "startLine": max(1, diagnostic.location.line),
            "startColumn": max(1, diagnostic.location.column),
        }
    result: Dict[str, object] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity.value],
        "message": {"text": message},
        "locations": [location],
    }
    if justification is not None:
        result["suppressions"] = [
            {"kind": "inSource", "justification": justification}
        ]
    return result


def sarif_log(reports: Iterable[LintReport]) -> Dict[str, object]:
    """The SARIF document (as a JSON-ready dict) for a set of reports."""
    results: List[Dict[str, object]] = []
    for report in reports:
        for diagnostic in report.diagnostics:
            results.append(_result(diagnostic, report.target))
        for diagnostic, justification in report.suppressed:
            results.append(_result(diagnostic, report.target, justification))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": _rules(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def export_sarif(reports: Iterable[LintReport]) -> str:
    """Canonical SARIF text (sorted keys, two-space indent, ASCII)."""
    return json.dumps(
        sarif_log(reports), sort_keys=True, indent=2, ensure_ascii=True
    )
