"""Lint driver: passes, suppressions, the target catalog, binding checks.

Two entry points matter to the rest of the system:

* :func:`lint_description` — run every description-level pass (structure,
  widths, dataflow) over one AST and fold in suppressions, producing a
  :class:`~repro.lint.diagnostics.LintReport`;
* :func:`lint_binding` — the static pre-flight over an analysis result:
  constraint sanity (E301-E303) plus the interval abstract interpreter
  replaying the augmented instruction and the final operator under the
  constraint-implied input ranges (E304).  The verifier and the binding
  database call this before any dynamic work.

Suppressions let a description module acknowledge a finding instead of
fixing it: a ``LINT_SUPPRESS`` dict maps ``"target:CODE"`` or
``"target:CODE:routine"`` keys to one-line justifications.  Suppressed
findings still appear in reports (flagged), but stop failing gates.
"""

from __future__ import annotations

import importlib
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..isdl import ast
from ..semantics.values import width_bits
from .checks import check_dataflow, check_structure
from .diagnostics import Diagnostic, LintReport, make, sort_key
from .intervals import Interval, check_asserts
from .widths import check_widths

#: Suppression map: "CODE" or "CODE:routine" -> justification.
Suppressions = Dict[str, str]


def lint_description(
    description: ast.Description,
    suppress: Optional[Suppressions] = None,
    target: Optional[str] = None,
) -> LintReport:
    """Run all description-level lint passes over one AST."""
    suppress = suppress or {}
    diagnostics = (
        check_structure(description)
        + check_widths(description)
        + check_dataflow(description)
    )
    kept: List[Diagnostic] = []
    suppressed: List[Tuple[Diagnostic, str]] = []
    for diagnostic in sorted(diagnostics, key=sort_key):
        justification = suppress.get(
            f"{diagnostic.code}:{diagnostic.routine}"
        ) or suppress.get(diagnostic.code)
        if justification is not None:
            suppressed.append((diagnostic, justification))
        else:
            kept.append(diagnostic)
    return LintReport(
        target=target or description.name,
        diagnostics=tuple(kept),
        suppressed=tuple(suppressed),
    )


# ---------------------------------------------------------------------------
# Binding pre-flight (E301-E304)


def _net_offset(binding, operand: str, register: Optional[str]) -> int:
    """Net coding offset on an operand, under either of its names.

    Analyses record :class:`~repro.constraints.OffsetConstraint` against
    whichever namespace the transformation worked in — the operator
    operand (``Len``) or the instruction register it binds to (``len``);
    the encoded range must honour both.
    """
    names = {operand}
    if register is not None:
        names.add(register)
    return sum(
        constraint.offset
        for constraint in binding.offset_constraints()
        if constraint.operand in names
    )


def _encoded_interval(binding, operand: str) -> Optional[Interval]:
    """Instruction-level interval of an operator operand, if bounded."""
    constraint = binding.operand_range(operand)
    if constraint is None or constraint.lo > constraint.hi:
        return None
    offset = _net_offset(binding, operand, binding.operand_map.get(operand))
    return Interval(constraint.lo + offset, constraint.hi + offset)


def _input_intervals_for_instruction(binding) -> Dict[str, Interval]:
    """Input ranges for the augmented instruction's entry routine."""
    inputs: Dict[str, Interval] = {}
    for operand, register in binding.operand_map.items():
        interval = _encoded_interval(binding, operand)
        if interval is not None:
            inputs[register] = interval
    for constraint in binding.value_constraints():
        inputs[constraint.operand] = Interval.const(constraint.value)
    return inputs


def _input_intervals_for_operator(binding) -> Dict[str, Interval]:
    """Input ranges for the final operator's entry routine."""
    inputs: Dict[str, Interval] = {}
    for constraint in binding.range_constraints():
        if constraint.is_operand and constraint.lo <= constraint.hi:
            inputs[constraint.operand] = Interval(constraint.lo, constraint.hi)
    return inputs


#: Per-binding pre-flight memo: ``id(binding) -> (weakref, result)``.
#: Bindings are frozen dataclasses, so a binding object's diagnostics
#: never change; the weak reference both guards against id reuse and
#: evicts the entry when the binding is collected.  This keeps the
#: batch verifier's per-call pre-flight off the hot path — every
#: engine's trial loop calls :func:`lint_binding` once per
#: verification.
_BINDING_MEMO: Dict[int, Tuple["weakref.ref", Tuple[Diagnostic, ...]]] = {}

#: Content-keyed pre-flight cache: ``(code_epoch, binding_digest) ->
#: diagnostics``.  Where :data:`_BINDING_MEMO` only helps when the very
#: same binding *object* is re-linted, this layer recognises an
#: equivalent binding reconstructed from scratch — pooled batch shards
#: replay the same analyses per shard and used to re-run the full
#: pre-flight every time.  The ``code_epoch`` component ties entries to
#: the analysis source, so an edited checker never serves stale
#: diagnostics.
_CONTENT_CACHE: Dict[Tuple[str, str], Tuple[Diagnostic, ...]] = {}


def clear_lint_cache() -> None:
    """Drop the content-keyed pre-flight cache (tests, code reloads)."""
    _CONTENT_CACHE.clear()


def _content_key(binding) -> Optional[Tuple[str, str]]:
    """The (code epoch, binding digest) cache key, or None if unkeyable."""
    try:
        from ..analysis.binding import binding_digest
        from ..provenance import code_epoch

        return (code_epoch(), binding_digest(binding))
    except Exception:
        return None


def lint_binding(binding) -> List[Diagnostic]:
    """Statically check a binding's constraints against its descriptions.

    Returns error diagnostics only (the 3xx range has no warnings);
    an empty list means the binding passed the pre-flight.
    """
    key = id(binding)
    cached = _BINDING_MEMO.get(key)
    if cached is not None and cached[0]() is binding:
        return list(cached[1])
    content_key = _content_key(binding)
    if content_key is not None and content_key in _CONTENT_CACHE:
        obs.inc("repro_lint_cache_hits_total", kind="lint")
        diagnostics = list(_CONTENT_CACHE[content_key])
    else:
        if content_key is not None:
            obs.inc("repro_lint_cache_misses_total", kind="lint")
        diagnostics = _lint_binding_uncached(binding)
        if content_key is not None:
            _CONTENT_CACHE[content_key] = tuple(diagnostics)
    try:
        ref = weakref.ref(
            binding, lambda _ref, _key=key: _BINDING_MEMO.pop(_key, None)
        )
    except TypeError:
        return diagnostics
    _BINDING_MEMO[key] = (ref, tuple(diagnostics))
    return diagnostics


def lint_binding_symbolic(binding, spec, **budgets) -> List[Diagnostic]:
    """Symbolic equivalence findings for a binding (E401 / W402).

    Deliberately *not* part of :func:`lint_binding`: the default
    pre-flight gates (`verify_binding`, the batch runner) treat any
    diagnostic as fatal, and a W402 "unknown" must never block a
    binding that differential sampling can still cover.  Callers opt in
    explicitly (``repro lint --symbolic``, the prove CLI).

    Returns an empty list when the prover *proves* equivalence.
    """
    from ..symbolic import PROVED, REFUTED, prove_binding

    report = prove_binding(binding, spec, **budgets)
    name = binding.augmented_instruction.name
    if report.verdict == REFUTED:
        inputs = dict(sorted(report.counterexample.inputs.items()))
        return [
            make(
                "E401",
                f"symbolic divergence: {report.message} "
                f"(counterexample inputs {inputs})",
                name,
            )
        ]
    if report.verdict != PROVED:
        return [
            make(
                "W402",
                f"symbolic equivalence unknown: {report.reason}; "
                "differential sampling still applies",
                name,
            )
        ]
    return []


def _lint_binding_uncached(binding) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    instruction = binding.augmented_instruction
    name = instruction.name

    for constraint in binding.range_constraints():
        if constraint.lo > constraint.hi:
            diagnostics.append(
                make(
                    "E303",
                    f"empty range for {constraint.operand}: "
                    f"[{constraint.lo}, {constraint.hi}]",
                    name,
                )
            )
            continue
        if not constraint.is_operand:
            continue
        register = binding.operand_map.get(constraint.operand)
        if register is None or not instruction.has_register(register):
            continue
        bits = width_bits(instruction.register(register).width)
        if bits is None:
            continue
        offset = _net_offset(binding, constraint.operand, register)
        lo, hi = constraint.lo + offset, constraint.hi + offset
        if lo < 0 or hi >= (1 << bits):
            diagnostics.append(
                make(
                    "E301",
                    f"range [{constraint.lo}, {constraint.hi}] for "
                    f"{constraint.operand} encodes to [{lo}, {hi}], "
                    f"which does not fit {register} ({bits}-bit)",
                    name,
                )
            )

    for constraint in binding.value_constraints():
        if not instruction.has_register(constraint.operand):
            continue  # the fixed register was optimized away entirely.
        bits = width_bits(instruction.register(constraint.operand).width)
        if bits is not None and not 0 <= constraint.value < (1 << bits):
            diagnostics.append(
                make(
                    "E302",
                    f"fixed value {constraint.value} does not fit "
                    f"{constraint.operand} ({bits}-bit)",
                    name,
                )
            )

    if diagnostics:
        return diagnostics  # intervals below assume consistent ranges.

    diagnostics.extend(
        check_asserts(instruction, _input_intervals_for_instruction(binding))
    )
    diagnostics.extend(
        check_asserts(
            binding.final_operator, _input_intervals_for_operator(binding)
        )
    )
    return diagnostics


# ---------------------------------------------------------------------------
# Target catalog

#: A lint target: () -> (description, suppressions).
TargetLoader = Callable[[], Tuple[ast.Description, Suppressions]]

#: Language-operator lint targets: module name -> loader function names.
LANGUAGE_LOADERS: Dict[str, Tuple[str, ...]] = {
    "clu": ("indexc",),
    "listops": ("lsearch",),
    "pascal": ("sassign", "sequal", "translate"),
    "pc2": ("blkcpy", "blkclr"),
    "pl1": ("strmove", "span"),
    "rigel": ("index",),
}


def _module_suppressions(module, key: str) -> Suppressions:
    """Suppressions a module records for one of its targets.

    ``LINT_SUPPRESS`` keys are ``"<target>:CODE"`` or
    ``"<target>:CODE:routine"``; this strips the target prefix.
    """
    table = getattr(module, "LINT_SUPPRESS", {})
    prefix = key + ":"
    return {
        entry[len(prefix):]: justification
        for entry, justification in table.items()
        if entry.startswith(prefix)
    }


def lint_targets() -> Dict[str, TargetLoader]:
    """Every lintable description in the repo, by stable target name."""
    from ..machines import catalog

    targets: Dict[str, TargetLoader] = {}
    for machine in sorted(catalog.DESCRIPTION_MODULES):
        for mnemonic in catalog.modeled_mnemonics(machine):
            targets[f"{machine}:{mnemonic}"] = _machine_loader(
                machine, mnemonic
            )
    for module_name, loaders in sorted(LANGUAGE_LOADERS.items()):
        for loader in loaders:
            targets[f"{module_name}:{loader}"] = _language_loader(
                module_name, loader
            )
    return targets


def _machine_loader(machine: str, mnemonic: str) -> TargetLoader:
    def load() -> Tuple[ast.Description, Suppressions]:
        from ..machines import catalog

        module = importlib.import_module(
            catalog.DESCRIPTION_MODULES[machine]
        )
        return (
            catalog.load_description(machine, mnemonic),
            _module_suppressions(module, mnemonic),
        )

    return load


def _language_loader(module_name: str, loader: str) -> TargetLoader:
    def load() -> Tuple[ast.Description, Suppressions]:
        module = importlib.import_module(f"repro.languages.{module_name}")
        return (
            getattr(module, loader)(),
            _module_suppressions(module, loader),
        )

    return load


def lint_target(name: str) -> LintReport:
    """Lint one catalog target by name (``i8086:scasb``, ``rigel:index``)."""
    targets = lint_targets()
    try:
        loader = targets[name]
    except KeyError:
        raise KeyError(
            f"unknown lint target {name!r}; known targets: "
            + ", ".join(sorted(targets))
        )
    description, suppress = loader()
    return lint_description(description, suppress, target=name)


def lint_all() -> List[LintReport]:
    """Lint every catalog target, in stable name order."""
    return [lint_target(name) for name in sorted(lint_targets())]


def lint_coverage() -> List[Dict[str, object]]:
    """What ``lint --all`` covers, including what it *cannot* cover.

    One row per catalog machine and per language module, in stable
    order.  Machines that exist only as catalog stubs — a Table 1 entry
    with no ISDL description module, or a module with no modeled
    mnemonics — report ``status: "no-descriptions"`` instead of being
    silently absent from the target list (``repro lint --all`` and
    ``repro stats`` used to omit them entirely, which read as "clean"
    rather than "never checked").
    """
    from ..machines import catalog

    rows: List[Dict[str, object]] = []
    for machine in sorted(catalog.MACHINE_KEYS):
        if machine in catalog.DESCRIPTION_MODULES:
            targets = [
                f"{machine}:{mnemonic}"
                for mnemonic in catalog.modeled_mnemonics(machine)
            ]
        else:
            targets = []
        rows.append(
            {
                "name": machine,
                "kind": "machine",
                "status": "ok" if targets else "no-descriptions",
                "targets": targets,
            }
        )
    for module_name, loaders in sorted(LANGUAGE_LOADERS.items()):
        rows.append(
            {
                "name": module_name,
                "kind": "language",
                "status": "ok",
                "targets": [f"{module_name}:{loader}" for loader in loaders],
            }
        )
    return rows
