"""Diagnostic model for the ISDL static checker.

Every finding the linter can produce has a *stable* code: ``W###`` for
warnings (suspicious but executable descriptions) and ``E###`` for
errors (defects that make an analysis or a binding untrustworthy).  The
code registry below is the single source of truth — ``docs/lint.md``
documents each code with a minimal triggering example, and a docs-sync
test keeps the two aligned.

Code ranges:

* ``1xx`` — bit-width checks (:mod:`repro.lint.widths`),
* ``2xx`` — structural and dataflow checks (:mod:`repro.lint.checks`),
* ``3xx`` — interval-domain constraint prechecks
  (:mod:`repro.lint.intervals` / :func:`repro.lint.engine.lint_binding`),
* ``4xx`` — symbolic equivalence findings (:mod:`repro.symbolic` via
  :func:`repro.lint.engine.lint_binding` with ``symbolic=True``).

Diagnostics are plain frozen dataclasses anchored to the
:class:`~repro.isdl.errors.SourceLocation` the parser attached to the
offending AST node, so every message can point at description source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isdl.errors import SourceLocation


class Severity(enum.Enum):
    """How bad a finding is."""

    WARNING = "warning"
    ERROR = "error"


#: Stable diagnostic codes -> one-line summaries.  Codes are never
#: reused or renumbered; retired codes would be kept here as tombstones.
CODES: Dict[str, str] = {
    # -- bit-width checks (repro.lint.widths) --------------------------
    "W101": "truncating assignment: source is wider than the target register",
    "E102": "constant out of range for the register it is assigned to or compared with",
    "W103": "mixed-width comparison between registers of different widths",
    # -- structural and dataflow checks (repro.lint.checks) ------------
    "W201": "register read before any assignment reaches it (powers up as 0)",
    "W202": "dead store: value is overwritten on every path before being read",
    "W203": "unreachable statement",
    "W204": "input operand is never read",
    "W205": "output expression reads a register that is never written",
    "E206": "repeat loop has no reachable exit_when (cannot terminate)",
    "E207": "reference to an undeclared register, routine, or operand",
    "E208": "duplicate declaration",
    "E209": "description needs exactly one routine with an input() statement",
    "E210": "exit_when outside of any repeat loop",
    # -- interval-domain constraint prechecks (repro.lint.intervals) ---
    "E301": "range constraint does not fit the bound register's width",
    "E302": "fixed operand value does not fit the register's width",
    "E303": "empty range constraint (lo > hi)",
    "E304": "assert is statically violated for every value allowed by the constraints",
    # -- symbolic equivalence prover (repro.symbolic) -------------------
    "E401": "symbolic execution refuted the binding: a concrete counterexample scenario disagrees",
    "W402": "symbolic equivalence verdict is unknown (budget exceeded or unsupported construct); sampling still applies",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a description and (usually) a location."""

    code: str
    severity: Severity
    message: str
    #: name of the description the finding is in (``scasb.instruction``).
    description: str
    location: Optional[SourceLocation] = None
    #: routine the finding is in, when the check is routine-scoped.
    routine: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def format(self) -> str:
        where = self.description
        if self.location is not None:
            where += f":{self.location}"
        scope = f" (in {self.routine})" if self.routine else ""
        return f"{where}: {self.code} [{self.severity.value}] {self.message}{scope}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (deterministic: plain scalars only)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "description": self.description,
            "line": self.location.line if self.location else None,
            "column": self.location.column if self.location else None,
            "routine": self.routine,
        }


def make(
    code: str,
    message: str,
    description: str,
    location: Optional[SourceLocation] = None,
    routine: Optional[str] = None,
) -> Diagnostic:
    """Build a diagnostic, deriving severity from the code prefix.

    Rejects unregistered codes so a check cannot invent an undocumented
    diagnostic (the docs-sync test covers the registry, not call sites).
    """
    if code not in CODES:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    severity = Severity.ERROR if code.startswith("E") else Severity.WARNING
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        description=description,
        location=location,
        routine=routine,
    )


def sort_key(diagnostic: Diagnostic) -> Tuple:
    """Deterministic report order: position first, then code."""
    location = diagnostic.location
    return (
        diagnostic.description,
        location.line if location else 0,
        location.column if location else 0,
        diagnostic.code,
        diagnostic.message,
    )


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run over one description produced."""

    #: catalog target name (``i8086:scasb``) or description name.
    target: str
    diagnostics: Tuple[Diagnostic, ...]
    #: findings matched by a suppression, with their justifications.
    suppressed: Tuple[Tuple[Diagnostic, str], ...] = ()

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def clean(self) -> bool:
        """True when nothing unsuppressed was found."""
        return not self.diagnostics

    def format_lines(self) -> Tuple[str, ...]:
        lines = [d.format() for d in self.diagnostics]
        for diagnostic, justification in self.suppressed:
            lines.append(
                f"{diagnostic.format()} [suppressed: {justification}]"
            )
        return tuple(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [
                {**d.to_dict(), "justification": justification}
                for d, justification in self.suppressed
            ],
        }


class LintGateError(Exception):
    """Lint errors blocked an analysis or codegen pre-flight gate.

    Deliberately distinct from a verification timeout and from a
    :class:`~repro.analysis.verify.VerificationFailure`: the binding was
    rejected *statically*, before any fuzz trial ran.
    """

    def __init__(self, diagnostics: Tuple[Diagnostic, ...]):
        self.diagnostics = tuple(diagnostics)
        summary = "; ".join(f"{d.code} {d.message}" for d in self.diagnostics)
        super().__init__(f"lint gate rejected the binding: {summary}")
