"""Bit-width checking for ISDL descriptions (W101 / E102 / W103).

The interpreter's value model (:mod:`repro.semantics.values`) is exact
until a store, where values truncate to the target register's declared
width.  That is faithful to the modelled machines — and it means a
description can silently drop bits.  This pass infers a conservative
width for every expression and flags the three defect shapes the paper's
descriptions make possible:

* **W101** — assigning a source whose inferred width exceeds the target
  register's width (the store truncates),
* **E102** — a constant literal that cannot be represented by the
  register it is assigned to or compared against (the comparison is
  vacuous or the store mangles the value),
* **W103** — comparing two registers of different declared widths (legal,
  but usually a sign that one operand was meant to be masked).

Inference is deliberately conservative: arithmetic results, unbounded
``integer`` variables, and routine parameters all infer as *unknown*
(``None``), so only definite problems produce diagnostics.  Wraparound
arithmetic like ``di <- di - 1`` is idiomatic in the catalog and never
flagged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isdl import ast
from ..semantics.values import BOOLEAN_OPS, BYTE_BITS, width_bits
from .diagnostics import Diagnostic, make

#: Inferred width of an expression: number of bits, or ``None`` when the
#: width is unknown or unbounded.
Bits = Optional[int]


def _routine_env(
    description: ast.Description, routine: ast.RoutineDecl
) -> Dict[str, Bits]:
    """Name -> declared bits visible inside ``routine``.

    Parameters are call-by-value copies of arbitrary expressions, so
    they stay unknown; the routine's own name is its return slot and has
    the routine's declared width.
    """
    env: Dict[str, Bits] = {}
    for decl in description.registers():
        env[decl.name] = width_bits(decl.width)
    for other in description.routines():
        env[other.name] = width_bits(other.width)
    for param in routine.params:
        env[param] = None
    env[routine.name] = width_bits(routine.width)
    return env


def infer_bits(expr: ast.Expr, env: Dict[str, Bits]) -> Bits:
    """Conservative width of ``expr``: bits, or ``None`` if unknown."""
    if isinstance(expr, ast.Const):
        if expr.value < 0:
            return None
        return max(expr.value.bit_length(), 1)
    if isinstance(expr, ast.Var):
        return env.get(expr.name)
    if isinstance(expr, ast.MemRead):
        return BYTE_BITS
    if isinstance(expr, ast.Call):
        return env.get(expr.name)
    if isinstance(expr, ast.BinOp):
        if expr.op in BOOLEAN_OPS:
            return 1
        # +, -, * can widen, wrap, or go negative; stay unknown.
        return None
    if isinstance(expr, ast.UnOp):
        return 1 if expr.op == "not" else None
    return None


def _declared_bits(expr: ast.Expr, env: Dict[str, Bits]) -> Bits:
    """Bits of a *register-like* expression (Var only), else ``None``."""
    if isinstance(expr, ast.Var):
        return env.get(expr.name)
    return None


class _WidthChecker:
    def __init__(self, description: ast.Description):
        self.description = description
        self.diagnostics: List[Diagnostic] = []

    def run(self) -> List[Diagnostic]:
        for routine in self.description.routines():
            env = _routine_env(self.description, routine)
            for stmt in routine.body:
                self._check_stmt(stmt, env, routine.name)
        return self.diagnostics

    # -- statements -----------------------------------------------------

    def _check_stmt(
        self, stmt: ast.Stmt, env: Dict[str, Bits], routine: str
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt, env, routine)
            self._check_expr(stmt.expr, env, routine)
            if isinstance(stmt.target, ast.MemRead):
                self._check_expr(stmt.target.addr, env, routine)
        elif isinstance(stmt, (ast.ExitWhen, ast.Assert)):
            self._check_expr(stmt.cond, env, routine)
        elif isinstance(stmt, ast.Output):
            for expr in stmt.exprs:
                self._check_expr(expr, env, routine)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, env, routine)
            for inner in stmt.then + stmt.els:
                self._check_stmt(inner, env, routine)
        elif isinstance(stmt, ast.Repeat):
            for inner in stmt.body:
                self._check_stmt(inner, env, routine)
        # Input declares names; nothing to check.

    def _check_assign(
        self, stmt: ast.Assign, env: Dict[str, Bits], routine: str
    ) -> None:
        if isinstance(stmt.target, ast.MemRead):
            target_bits: Bits = BYTE_BITS
            target_name = f"{ast.MEMORY_NAME}[...]"
        else:
            target_bits = env.get(stmt.target.name)
            target_name = stmt.target.name
        if target_bits is None:
            return
        if isinstance(stmt.expr, ast.Const):
            value = stmt.expr.value
            if not 0 <= value < (1 << target_bits):
                self.diagnostics.append(
                    make(
                        "E102",
                        f"constant {value} does not fit {target_name} "
                        f"({target_bits}-bit)",
                        self.description.name,
                        stmt.expr.location or stmt.location,
                        routine,
                    )
                )
            return
        source_bits = infer_bits(stmt.expr, env)
        if source_bits is not None and source_bits > target_bits:
            self.diagnostics.append(
                make(
                    "W101",
                    f"assigning a {source_bits}-bit value to {target_name} "
                    f"({target_bits}-bit) truncates",
                    self.description.name,
                    stmt.location,
                    routine,
                )
            )

    # -- expressions ----------------------------------------------------

    def _check_expr(
        self, expr: ast.Expr, env: Dict[str, Bits], routine: str
    ) -> None:
        if isinstance(expr, ast.BinOp):
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                self._check_comparison(expr, env, routine)
            self._check_expr(expr.left, env, routine)
            self._check_expr(expr.right, env, routine)
        elif isinstance(expr, ast.UnOp):
            self._check_expr(expr.operand, env, routine)
        elif isinstance(expr, ast.MemRead):
            self._check_expr(expr.addr, env, routine)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._check_expr(arg, env, routine)

    def _check_comparison(
        self, expr: ast.BinOp, env: Dict[str, Bits], routine: str
    ) -> None:
        # E102: comparing a finite register with a constant it can never
        # hold makes the comparison decidable at lint time.
        for reg, const in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            reg_bits = _declared_bits(reg, env)
            if reg_bits is None or not isinstance(const, ast.Const):
                continue
            if not 0 <= const.value < (1 << reg_bits):
                self.diagnostics.append(
                    make(
                        "E102",
                        f"constant {const.value} can never equal a value "
                        f"of {reg.name} ({reg_bits}-bit)",
                        self.description.name,
                        const.location or expr.location,
                        routine,
                    )
                )
                return
        # W103: both sides are registers of known, different widths.
        left_bits = _declared_bits(expr.left, env)
        right_bits = _declared_bits(expr.right, env)
        if (
            left_bits is not None
            and right_bits is not None
            and left_bits != right_bits
        ):
            self.diagnostics.append(
                make(
                    "W103",
                    f"comparing {expr.left.name} ({left_bits}-bit) with "
                    f"{expr.right.name} ({right_bits}-bit)",
                    self.description.name,
                    expr.location,
                    routine,
                )
            )


def check_widths(description: ast.Description) -> List[Diagnostic]:
    """All width diagnostics for one description."""
    return _WidthChecker(description).run()
