"""Static checking for ISDL descriptions and analysis bindings.

A multi-pass linter over the description ASTs the rest of the system
already trusts dynamically:

* :mod:`repro.lint.widths` — bit-width inference (truncating stores,
  impossible constants, mixed-width comparisons),
* :mod:`repro.lint.checks` — structural and dataflow defects on top of
  :mod:`repro.dataflow` (use-before-def, dead stores, unreachable code,
  unread inputs, unterminating loops, declaration errors),
* :mod:`repro.lint.intervals` — an interval-domain abstract interpreter
  that decides ``assert`` statements under constraint-implied ranges,
* :mod:`repro.lint.engine` — the driver, the catalog of lintable
  targets, and the binding pre-flight that gates verification and the
  binding database.

Diagnostics carry stable ``W###``/``E###`` codes (documented in
``docs/lint.md``) and point at source via the parser's
:class:`~repro.isdl.errors.SourceLocation`.
"""

from .diagnostics import (
    CODES,
    Diagnostic,
    LintGateError,
    LintReport,
    Severity,
)
from .engine import (
    clear_lint_cache,
    lint_all,
    lint_binding,
    lint_binding_symbolic,
    lint_coverage,
    lint_description,
    lint_target,
    lint_targets,
)
from .intervals import Interval, check_asserts
from .sarif import export_sarif, sarif_log

__all__ = [
    "CODES",
    "Diagnostic",
    "Interval",
    "LintGateError",
    "LintReport",
    "Severity",
    "check_asserts",
    "clear_lint_cache",
    "export_sarif",
    "lint_all",
    "lint_binding",
    "lint_binding_symbolic",
    "lint_coverage",
    "lint_description",
    "lint_target",
    "lint_targets",
    "sarif_log",
]
