"""Structural and dataflow checks for ISDL descriptions (W2## / E2##).

These checks lean on the :mod:`repro.dataflow` package the transformation
guards already trust: the CFG gives reachability, the effect summaries
expand routine calls (so a read inside ``fetch()`` counts as a read at
the call site), and reaching definitions distinguish "reaches the
power-up zero" from "reaches a real store".

Structural errors (duplicate declarations, undeclared names, a missing
or ambiguous entry routine, ``exit_when`` outside ``repeat``) are found
by a plain AST walk first; a routine with a stray ``exit_when`` cannot
be lowered to a CFG at all, so its dataflow checks are skipped rather
than crashing.

Dataflow checks run on the *entry* routine only.  Helper routines read
global registers the entry routine (or the machine state) set up, so
running use-before-def interprocedurally on them would drown real
findings in false positives; the call-expansion in the effect summaries
already surfaces a helper's reads at its call sites in the entry body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..dataflow.cfg import Cfg, build_cfg
from ..dataflow.defuse import cfg_defuse
from ..dataflow.effects import MEM, OUT, EffectAnalysis
from ..dataflow.liveness import Liveness
from ..dataflow.reaching import ReachingDefinitions
from ..isdl import ast
from ..isdl.visitor import Path
from .diagnostics import Diagnostic, make


def check_structure(description: ast.Description) -> List[Diagnostic]:
    """E207-E210: declarations, entry routine, exit_when placement."""
    diagnostics: List[Diagnostic] = []
    seen: Dict[str, ast.Decl] = {}
    for section in description.sections:
        for decl in section.decls:
            if decl.name in seen:
                diagnostics.append(
                    make(
                        "E208",
                        f"{decl.name!r} is declared more than once",
                        description.name,
                        decl.location,
                    )
                )
            else:
                seen[decl.name] = decl

    entries = [
        routine
        for routine in description.routines()
        if any(isinstance(stmt, ast.Input) for stmt in routine.body)
    ]
    if len(entries) != 1:
        diagnostics.append(
            make(
                "E209",
                f"expected exactly one routine with input(), found "
                f"{len(entries)}",
                description.name,
                description.location,
            )
        )

    global_names = set(seen)
    for routine in description.routines():
        local = global_names | set(routine.params) | {routine.name}
        local |= {
            name
            for stmt in routine.body
            if isinstance(stmt, ast.Input)
            for name in stmt.names
        }
        diagnostics.extend(
            _check_names(routine.body, local, description.name, routine.name)
        )
        diagnostics.extend(
            _check_exit_when(
                routine.body, False, description.name, routine.name
            )
        )
    return diagnostics


def _check_names(
    stmts: Tuple[ast.Stmt, ...],
    declared: Set[str],
    description: str,
    routine: str,
) -> List[Diagnostic]:
    """E207 for every Var/Call naming nothing in ``declared``."""
    diagnostics: List[Diagnostic] = []

    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Var):
            if expr.name not in declared:
                diagnostics.append(
                    make(
                        "E207",
                        f"{expr.name!r} is not declared",
                        description,
                        expr.location,
                        routine,
                    )
                )
        elif isinstance(expr, ast.MemRead):
            visit_expr(expr.addr)
        elif isinstance(expr, ast.Call):
            if expr.name not in declared:
                diagnostics.append(
                    make(
                        "E207",
                        f"routine {expr.name!r} is not declared",
                        description,
                        expr.location,
                        routine,
                    )
                )
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.BinOp):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.UnOp):
            visit_expr(expr.operand)

    def visit_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            visit_expr(stmt.target)
            visit_expr(stmt.expr)
        elif isinstance(stmt, (ast.ExitWhen, ast.Assert)):
            visit_expr(stmt.cond)
        elif isinstance(stmt, ast.Output):
            for expr in stmt.exprs:
                visit_expr(expr)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.cond)
            for inner in stmt.then + stmt.els:
                visit_stmt(inner)
        elif isinstance(stmt, ast.Repeat):
            for inner in stmt.body:
                visit_stmt(inner)

    for stmt in stmts:
        visit_stmt(stmt)
    return diagnostics


def _check_exit_when(
    stmts: Tuple[ast.Stmt, ...],
    in_repeat: bool,
    description: str,
    routine: str,
) -> List[Diagnostic]:
    """E210 for every ``exit_when`` with no enclosing ``repeat``."""
    diagnostics: List[Diagnostic] = []
    for stmt in stmts:
        if isinstance(stmt, ast.ExitWhen) and not in_repeat:
            diagnostics.append(
                make(
                    "E210",
                    "exit_when outside of any repeat loop",
                    description,
                    stmt.location,
                    routine,
                )
            )
        elif isinstance(stmt, ast.If):
            diagnostics.extend(
                _check_exit_when(
                    stmt.then + stmt.els, in_repeat, description, routine
                )
            )
        elif isinstance(stmt, ast.Repeat):
            diagnostics.extend(
                _check_exit_when(stmt.body, True, description, routine)
            )
    return diagnostics


def has_stray_exit_when(routine: ast.RoutineDecl) -> bool:
    """True when the routine cannot be lowered to a CFG (E210 present)."""
    return bool(_check_exit_when(routine.body, False, "", routine.name))


# ---------------------------------------------------------------------------
# Dataflow checks


def _reachable(cfg: Cfg) -> Set[int]:
    seen = {cfg.entry}
    worklist = [cfg.entry]
    while worklist:
        node_id = worklist.pop()
        for succ in cfg.nodes[node_id].succs:
            if succ not in seen:
                seen.add(succ)
                worklist.append(succ)
    return seen


def _direct_exit_whens(
    body: Tuple[ast.Stmt, ...], path: Path
) -> List[Tuple[ast.ExitWhen, Path]]:
    """``exit_when``s belonging to the repeat whose body this is.

    Recurses into ``if`` arms (their exits still leave this loop) but not
    into nested ``repeat``s (those exits leave the inner loop only).
    """
    found: List[Tuple[ast.ExitWhen, Path]] = []
    field = path[-1][0]
    prefix = path[:-1]
    for index, stmt in enumerate(body):
        stmt_path = prefix + ((field, index),)
        if isinstance(stmt, ast.ExitWhen):
            found.append((stmt, stmt_path))
        elif isinstance(stmt, ast.If):
            found.extend(
                _direct_exit_whens(stmt.then, stmt_path + (("then", None),))
            )
            found.extend(
                _direct_exit_whens(stmt.els, stmt_path + (("els", None),))
            )
    return found


def _repeats_with_paths(
    body: Tuple[ast.Stmt, ...], path: Path
) -> List[Tuple[ast.Repeat, Path]]:
    found: List[Tuple[ast.Repeat, Path]] = []
    field = path[-1][0]
    prefix = path[:-1]
    for index, stmt in enumerate(body):
        stmt_path = prefix + ((field, index),)
        if isinstance(stmt, ast.Repeat):
            found.append((stmt, stmt_path))
            found.extend(
                _repeats_with_paths(stmt.body, stmt_path + (("body", None),))
            )
        elif isinstance(stmt, ast.If):
            found.extend(
                _repeats_with_paths(stmt.then, stmt_path + (("then", None),))
            )
            found.extend(
                _repeats_with_paths(stmt.els, stmt_path + (("els", None),))
            )
    return found


def check_routine_dataflow(
    description: ast.Description,
    routine: ast.RoutineDecl,
    analysis: EffectAnalysis,
    is_entry: bool,
) -> List[Diagnostic]:
    """W201-W205, E206 for one routine.

    ``is_entry`` gates the checks that assume nothing ran before the
    routine (use-before-def, never-read inputs, never-written outputs).
    """
    if has_stray_exit_when(routine):
        return []  # E210 already reported; no CFG exists.
    diagnostics: List[Diagnostic] = []
    cfg = build_cfg(routine)
    defuse = cfg_defuse(cfg, analysis)
    reachable = _reachable(cfg)
    registers = {decl.name for decl in description.registers()}
    input_names = {
        name
        for stmt in routine.body
        if isinstance(stmt, ast.Input)
        for name in stmt.names
    }
    all_names = (
        registers | set(routine.params) | {routine.name} | input_names
    )

    # -- W203: statements control can never reach ----------------------
    for node_id, node in cfg.nodes.items():
        if node.stmt is None or node_id in reachable:
            continue
        diagnostics.append(
            make(
                "W203",
                "statement is unreachable",
                description.name,
                node.stmt.location,
                routine.name,
            )
        )

    # -- E206: repeat loops that cannot terminate ----------------------
    # Only diagnose loops control actually enters: a repeat that is
    # itself unreachable is already covered by W203 on its body.
    base = (("body", None),)
    for repeat, repeat_path in _repeats_with_paths(routine.body, base):
        body_path = repeat_path + (("body", None),)
        exits = _direct_exit_whens(repeat.body, body_path)
        if any(cfg.by_path.get(path) in reachable for _, path in exits):
            continue
        if _loop_entered(repeat.body, body_path, cfg, reachable):
            diagnostics.append(
                make(
                    "E206",
                    "repeat loop has no reachable exit_when",
                    description.name,
                    repeat.location,
                    routine.name,
                )
            )

    if not is_entry:
        return diagnostics

    # -- reaching-definition checks (entry routine only) ---------------
    reaching = ReachingDefinitions(cfg, analysis, all_names)
    for node_id in sorted(reachable):
        node = cfg.nodes[node_id]
        if node.stmt is None:
            continue
        du = defuse[node_id]
        for name in sorted(du.uses - {MEM, OUT}):
            if name not in all_names:
                continue  # undeclared: E207 already covers it.
            definers = reaching.defs_of(node_id, name)
            if definers != frozenset({cfg.entry}):
                continue
            if isinstance(node.stmt, ast.Output):
                diagnostics.append(
                    make(
                        "W205",
                        f"output reads {name!r}, which is never written",
                        description.name,
                        node.stmt.location,
                        routine.name,
                    )
                )
            else:
                diagnostics.append(
                    make(
                        "W201",
                        f"{name!r} is read before any assignment "
                        f"(powers up as 0)",
                        description.name,
                        node.stmt.location,
                        routine.name,
                    )
                )

    # -- W202: dead stores ---------------------------------------------
    # A store is dead when every path to exit overwrites it before any
    # read.  Registers live at exit are the machine state the binding's
    # result registers come from, so they count as read.
    liveness = Liveness(cfg, analysis, live_out=registers | {routine.name})
    for node_id in sorted(reachable):
        node = cfg.nodes[node_id]
        if not isinstance(node.stmt, ast.Assign):
            continue
        target = node.stmt.target
        if not isinstance(target, ast.Var):
            continue  # Mb[...] stores alias all of memory; never flagged.
        if target.name not in liveness.live_out(node_id):
            diagnostics.append(
                make(
                    "W202",
                    f"value stored to {target.name!r} is overwritten "
                    f"before being read",
                    description.name,
                    node.stmt.location,
                    routine.name,
                )
            )

    # -- W204: declared inputs nobody reads ----------------------------
    used_somewhere: Set[str] = set()
    for node_id in reachable:
        used_somewhere |= defuse[node_id].uses
    for stmt in routine.body:
        if not isinstance(stmt, ast.Input):
            continue
        for name in stmt.names:
            if name not in used_somewhere:
                diagnostics.append(
                    make(
                        "W204",
                        f"input {name!r} is never read",
                        description.name,
                        stmt.location,
                        routine.name,
                    )
                )
    return diagnostics


def _loop_entered(
    body: Tuple[ast.Stmt, ...], path: Path, cfg: Cfg, reachable: Set[int]
) -> bool:
    """True when any statement of the loop body is on a reachable node.

    Used to decide whether an exit-less ``repeat`` deserves E206; a loop
    with a body the CFG never maps (e.g. empty) is conservatively
    treated as entered.
    """
    field = path[-1][0]
    prefix = path[:-1]
    found_any = False
    for index, stmt in enumerate(body):
        stmt_path = prefix + ((field, index),)
        if isinstance(stmt, ast.If):
            if cfg.by_path.get(stmt_path) in reachable:
                return True
            found_any = True
            if _loop_entered(
                stmt.then, stmt_path + (("then", None),), cfg, reachable
            ) or _loop_entered(
                stmt.els, stmt_path + (("els", None),), cfg, reachable
            ):
                return True
        elif isinstance(stmt, ast.Repeat):
            if _loop_entered(
                stmt.body, stmt_path + (("body", None),), cfg, reachable
            ):
                return True
            found_any = True
        else:
            if cfg.by_path.get(stmt_path) in reachable:
                return True
            found_any = True
    return not found_any


def check_dataflow(description: ast.Description) -> List[Diagnostic]:
    """All dataflow diagnostics for one description."""
    diagnostics: List[Diagnostic] = []
    analysis = EffectAnalysis(description)
    try:
        entry: Optional[ast.RoutineDecl] = description.entry_routine()
    except ValueError:
        entry = None  # E209 reported by check_structure.
    for routine in description.routines():
        diagnostics.extend(
            check_routine_dataflow(
                description, routine, analysis, routine is entry
            )
        )
    return diagnostics
