"""Interval-domain abstract interpretation of ISDL descriptions (E304).

The analysis engine discovers coding constraints — fixed values, ranges,
offsets — and records them on a binding; the differential verifier then
*samples* inputs satisfying them.  This module closes the gap between
"sampled and never failed" and "holds": it runs a description on
**intervals** instead of concrete values and decides assertions
statically, so a binding whose constraints contradict the description's
own ``assert`` statements is rejected before a single fuzz trial runs.

The domain is the classic integer-interval lattice with open ends
(``None`` = unbounded).  Soundness over precision throughout:

* assignments truncate to the target's width only when the value
  interval provably fits; otherwise the target goes to its full width
  range (modelling wraparound without bit-precision),
* ``repeat`` bodies are *havocked*: everything the loop may write jumps
  to its full width range before and after one abstract body pass (run
  only so asserts inside the loop are still checked),
* calls are inlined with a recursion guard that havocs the callee's
  effects.

An ``assert`` whose condition is *definitely false* over the computed
intervals yields E304; anything merely possible passes silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..dataflow.effects import EffectAnalysis
from ..isdl import ast
from ..semantics.values import BYTE_BITS, width_bits
from .diagnostics import Diagnostic, make


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` ends mean unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @classmethod
    def from_bits(cls, bits: Optional[int]) -> "Interval":
        """Full range of a register width (TOP for unbounded integers)."""
        if bits is None:
            return cls.top()
        return cls(0, (1 << bits) - 1)

    #: The 0/1 result of a comparison that could go either way.
    @classmethod
    def boolean(cls) -> "Interval":
        return cls(0, 1)

    # -- lattice ---------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def fits_bits(self, bits: Optional[int]) -> bool:
        """True when every value of the interval fits ``bits`` unchanged."""
        if bits is None:
            return True
        return (
            self.lo is not None
            and self.hi is not None
            and 0 <= self.lo
            and self.hi < (1 << bits)
        )

    # -- arithmetic -------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def mul(self, other: "Interval") -> "Interval":
        ends = (self.lo, self.hi, other.lo, other.hi)
        if any(end is None for end in ends):
            return Interval.top()
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return Interval(min(products), max(products))

    # -- decidable comparisons -------------------------------------------

    def always_lt(self, other: "Interval") -> bool:
        return (
            self.hi is not None and other.lo is not None and self.hi < other.lo
        )

    def always_le(self, other: "Interval") -> bool:
        return (
            self.hi is not None and other.lo is not None and self.hi <= other.lo
        )

    def never_intersects(self, other: "Interval") -> bool:
        return self.always_lt(other) or other.always_lt(self)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


#: Abstract truth value of a condition.
TRUE, FALSE, MAYBE = "true", "false", "maybe"


def compare(op: str, left: Interval, right: Interval) -> str:
    """Decide a comparison over intervals when possible."""
    if op == "=":
        if left.is_const() and right.is_const() and left.lo == right.lo:
            return TRUE
        if left.never_intersects(right):
            return FALSE
        return MAYBE
    if op == "<>":
        inverse = compare("=", left, right)
        return {TRUE: FALSE, FALSE: TRUE, MAYBE: MAYBE}[inverse]
    if op == "<":
        if left.always_lt(right):
            return TRUE
        if right.always_le(left):
            return FALSE
        return MAYBE
    if op == "<=":
        if left.always_le(right):
            return TRUE
        if right.always_lt(left):
            return FALSE
        return MAYBE
    if op == ">":
        return compare("<", right, left)
    if op == ">=":
        return compare("<=", right, left)
    raise ValueError(f"not a comparison: {op!r}")


def _truth(interval: Interval) -> str:
    """ISDL truthiness of an abstract value (nonzero is true)."""
    if interval.is_const():
        return TRUE if interval.lo != 0 else FALSE
    if interval.never_intersects(Interval.const(0)):
        return TRUE
    return MAYBE


def _flag(decision: str) -> Interval:
    if decision == TRUE:
        return Interval.const(1)
    if decision == FALSE:
        return Interval.const(0)
    return Interval.boolean()


#: Abstract machine state: name -> interval.
State = Dict[str, Interval]


class IntervalAnalyzer:
    """Abstractly executes one description's entry routine."""

    def __init__(self, description: ast.Description):
        self.description = description
        self.effects = EffectAnalysis(description)
        self._widths: Dict[str, Optional[int]] = {
            decl.name: width_bits(decl.width)
            for decl in description.registers()
        }
        self._routines = {r.name: r for r in description.routines()}
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------

    def check(self, inputs: Optional[Dict[str, Interval]] = None) -> List[Diagnostic]:
        """Run the entry routine on ``inputs`` and report violated asserts.

        ``inputs`` maps input names (instruction registers or operator
        operands) to the intervals a binding's constraints allow; names
        not mentioned get their declared register's full range.
        """
        self.diagnostics = []
        entry = self.description.entry_routine()
        state: State = {
            name: Interval.const(0) for name in self._widths
        }
        self._exec_block(entry.body, state, inputs or {}, entry, set())
        return self.diagnostics

    # -- statements -----------------------------------------------------

    def _exec_block(
        self,
        stmts: Tuple[ast.Stmt, ...],
        state: State,
        inputs: Dict[str, Interval],
        routine: ast.RoutineDecl,
        call_stack: Set[str],
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, state, inputs, routine, call_stack)

    def _exec_stmt(
        self,
        stmt: ast.Stmt,
        state: State,
        inputs: Dict[str, Interval],
        routine: ast.RoutineDecl,
        call_stack: Set[str],
    ) -> None:
        if isinstance(stmt, ast.Input):
            for name in stmt.names:
                provided = inputs.get(name)
                full = Interval.from_bits(self._widths.get(name))
                state[name] = provided if provided is not None else full
            return
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.expr, state, call_stack)
            if isinstance(stmt.target, ast.MemRead):
                self._eval(stmt.target.addr, state, call_stack)
                return  # Mb is not tracked; stores to it are ignored.
            self._store(stmt.target.name, value, state, routine)
            return
        if isinstance(stmt, ast.Assert):
            condition = self._eval_truth(stmt.cond, state, call_stack)
            if condition == FALSE:
                self.diagnostics.append(
                    make(
                        "E304",
                        f"assert can never hold: condition is false for "
                        f"every allowed value",
                        self.description.name,
                        stmt.location,
                        routine.name,
                    )
                )
            return
        if isinstance(stmt, ast.Output):
            for expr in stmt.exprs:
                self._eval(expr, state, call_stack)
            return
        if isinstance(stmt, ast.ExitWhen):
            self._eval(stmt.cond, state, call_stack)
            return
        if isinstance(stmt, ast.If):
            decision = self._eval_truth(stmt.cond, state, call_stack)
            if decision == TRUE:
                self._exec_block(stmt.then, state, inputs, routine, call_stack)
                return
            if decision == FALSE:
                self._exec_block(stmt.els, state, inputs, routine, call_stack)
                return
            then_state = dict(state)
            else_state = dict(state)
            self._exec_block(stmt.then, then_state, inputs, routine, call_stack)
            self._exec_block(stmt.els, else_state, inputs, routine, call_stack)
            self._join_into(state, then_state, else_state)
            return
        if isinstance(stmt, ast.Repeat):
            self._havoc(self.effects.stmt_effects(stmt).writes, state)
            # One abstract pass over the body from the havocked state so
            # asserts inside the loop are still checked.
            body_state = dict(state)
            self._exec_block(stmt.body, body_state, inputs, routine, call_stack)
            # Post-state stays havocked: whatever iteration count exits,
            # every written location is within its width range.
            return
        raise TypeError(f"cannot execute {type(stmt).__name__}")

    def _store(
        self, name: str, value: Interval, state: State, routine: ast.RoutineDecl
    ) -> None:
        bits = self._bits_of(name, routine)
        if value.fits_bits(bits):
            state[name] = value
        else:
            state[name] = Interval.from_bits(bits)

    def _bits_of(self, name: str, routine: ast.RoutineDecl) -> Optional[int]:
        if name == routine.name:
            return width_bits(routine.width)
        if name in routine.params:
            return None
        return self._widths.get(name)

    def _havoc(self, names, state: State) -> None:
        for name in names:
            if name in self._widths:
                state[name] = Interval.from_bits(self._widths[name])
            elif name in state:
                state[name] = Interval.top()

    def _join_into(self, state: State, left: State, right: State) -> None:
        state.clear()
        for name in set(left) | set(right):
            a = left.get(name, Interval.const(0))
            b = right.get(name, Interval.const(0))
            state[name] = a.join(b)

    # -- expressions ------------------------------------------------------

    def _eval(
        self, expr: ast.Expr, state: State, call_stack: Set[str]
    ) -> Interval:
        if isinstance(expr, ast.Const):
            return Interval.const(expr.value)
        if isinstance(expr, ast.Var):
            return state.get(expr.name, Interval.top())
        if isinstance(expr, ast.MemRead):
            self._eval(expr.addr, state, call_stack)
            return Interval.from_bits(BYTE_BITS)
        if isinstance(expr, ast.Call):
            return self._call(expr, state, call_stack)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, state, call_stack)
        if isinstance(expr, ast.UnOp):
            if expr.op == "not":
                decision = self._eval_truth(expr.operand, state, call_stack)
                return _flag({TRUE: FALSE, FALSE: TRUE, MAYBE: MAYBE}[decision])
            return self._eval(expr.operand, state, call_stack).neg()
        raise TypeError(f"cannot evaluate {type(expr).__name__}")

    def _binop(
        self, expr: ast.BinOp, state: State, call_stack: Set[str]
    ) -> Interval:
        if expr.op in ("and", "or"):
            left = self._eval_truth(expr.left, state, call_stack)
            right = self._eval_truth(expr.right, state, call_stack)
            if expr.op == "and":
                if left == FALSE or right == FALSE:
                    return Interval.const(0)
                if left == TRUE and right == TRUE:
                    return Interval.const(1)
            else:
                if left == TRUE or right == TRUE:
                    return Interval.const(1)
                if left == FALSE and right == FALSE:
                    return Interval.const(0)
            return Interval.boolean()
        left = self._eval(expr.left, state, call_stack)
        right = self._eval(expr.right, state, call_stack)
        if expr.op == "+":
            return left.add(right)
        if expr.op == "-":
            return left.sub(right)
        if expr.op == "*":
            return left.mul(right)
        return _flag(compare(expr.op, left, right))

    def _eval_truth(
        self, expr: ast.Expr, state: State, call_stack: Set[str]
    ) -> str:
        return _truth(self._eval(expr, state, call_stack))

    def _call(
        self, expr: ast.Call, state: State, call_stack: Set[str]
    ) -> Interval:
        callee = self._routines.get(expr.name)
        if callee is None or expr.name in call_stack:
            # Unknown routine or recursion: havoc its effects, result TOP.
            if callee is not None:
                self._havoc(
                    self.effects.routine_effects(expr.name).writes, state
                )
            return Interval.top()
        args = [self._eval(arg, state, call_stack) for arg in expr.args]
        saved_locals = {
            name: state.get(name)
            for name in (*callee.params, callee.name)
        }
        for param, value in zip(callee.params, args):
            state[param] = value
        state[callee.name] = Interval.const(0)
        self._exec_block(
            callee.body, state, {}, callee, call_stack | {expr.name}
        )
        result = state.get(callee.name, Interval.top())
        result_bits = width_bits(callee.width)
        if not result.fits_bits(result_bits):
            result = Interval.from_bits(result_bits)
        for name, value in saved_locals.items():
            if value is None:
                state.pop(name, None)
            else:
                state[name] = value
        return result


def check_asserts(
    description: ast.Description,
    inputs: Optional[Dict[str, Interval]] = None,
) -> List[Diagnostic]:
    """E304 diagnostics for ``description`` under the given input ranges."""
    return IntervalAnalyzer(description).check(inputs)
