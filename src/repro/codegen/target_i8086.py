"""Intel 8086 back end: binding-driven emission plus decomposed loops.

The exotic emitters lower the analyses' augment code to real 8086
instructions, following the paper's §4.1 listing for scasb/index:
save the initial pointer in BX, preset the zero flag, ``cld`` (the
``df = 0`` value constraint), the repeat-prefixed string instruction,
then the epilogue branch computing the operator's result.
"""

from __future__ import annotations

from ..analysis import Binding
from ..machines.i8086.sim import I8086Simulator
from . import ir
from ..asm import AsmProgram, Imm, LabelRef, MemRef, ParamRef, Reg
from .emitter import Target
from .optimize import vn_add, vn_of


class I8086Target(Target):
    """Code generation for the Intel 8086."""

    name = "i8086"
    SCRATCH = ("dx", "bp")
    simulator_class = I8086Simulator

    EXOTIC = {
        "string.move": "emit_move_exotic",
        "string.index": "emit_index_exotic",
        "string.equal": "emit_equal_exotic",
        "block.clear": "emit_clear_exotic",
    }
    DECOMPOSED = {
        "string.move": "emit_move_decomposed",
        "string.index": "emit_index_decomposed",
        "string.equal": "emit_equal_decomposed",
        "block.clear": "emit_clear_decomposed",
    }

    # -- machine hooks ---------------------------------------------------

    def emit_load(self, asm, reg, operand):
        asm.emit("mov", Reg(reg), operand)

    def emit_move(self, asm, dst, src):
        asm.emit("mov", Reg(dst), Reg(src))

    def emit_add(self, asm, reg, operand):
        asm.emit("add", Reg(reg), operand)

    def emit_sub(self, asm, reg, operand):
        asm.emit("sub", Reg(reg), operand)

    # -- exotic emitters ---------------------------------------------------

    def emit_move_exotic(self, asm: AsmProgram, op: ir.StringMove, binding: Binding):
        src_vn = vn_of(op.src)
        dst_vn = vn_of(op.dst)
        len_vn = vn_of(op.length)
        self.materialize_into(asm, op.src, binding.register_for("src"))
        self.materialize_into(asm, op.dst, binding.register_for("dst"))
        self.materialize_into(asm, op.length, binding.register_for("length"))
        self.check_fixed(binding, "df", 0)
        asm.emit("cld", comment="df = 0: low addresses to high")
        self.check_fixed(binding, "rf", 1)
        asm.emit("rep_movsb", comment="string move")
        # Architected finals: SI = src + len, DI = dst + len, CX = 0.
        self.regs.set("si", vn_add(src_vn, len_vn))
        self.regs.set("di", vn_add(dst_vn, len_vn))
        self.regs.set("cx", ("const", 0))
        self.regs.clobber("al")

    def emit_index_exotic(self, asm: AsmProgram, op: ir.StringIndex, binding: Binding):
        base_vn = vn_of(op.base)
        self.materialize_into(asm, op.base, binding.register_for("base"))
        self.materialize_into(asm, op.length, binding.register_for("length"))
        self.materialize_into(asm, op.char, binding.register_for("char"))
        # prologue augment: save the initial address, preset zf to 0.
        asm.emit("mov", Reg("bx"), Reg("di"), comment="save initial address")
        self.regs.set("bx", base_vn)
        asm.emit("mov", Reg("dx"), Imm(0))
        asm.emit("cmp", Reg("dx"), Imm(1), comment="reset zero flag zf")
        self.regs.set("dx", ("const", 0))
        self.check_fixed(binding, "df", 0)
        asm.emit("cld", comment="reset direction flag df")
        self.check_fixed(binding, "rf", 1)
        self.check_fixed(binding, "rfz", 0)
        asm.emit("repne_scasb", comment="search string")
        # epilogue augment: index from address, or zero.
        not_found = self.new_label("notfound")
        done = self.new_label("done")
        asm.emit("jnz", LabelRef(not_found), comment="jump if not found")
        asm.emit("sub", Reg("di"), Reg("bx"), comment="compute index of char")
        asm.emit("jmp", LabelRef(done))
        asm.label(not_found)
        asm.emit("mov", Reg("di"), Imm(0), comment="return zero if not found")
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("di"), comment="final result in di")
        self.regs.clobber("di", "cx", "al")

    def emit_equal_exotic(self, asm: AsmProgram, op: ir.StringEqual, binding: Binding):
        self.materialize_into(asm, op.a, binding.register_for("a"))
        self.materialize_into(asm, op.b, binding.register_for("b"))
        self.materialize_into(asm, op.length, binding.register_for("length"))
        # prologue augment: empty strings compare equal (zf preset to 1).
        asm.emit("cmp", Reg("dx"), Reg("dx"), comment="preset zf = 1")
        self.check_fixed(binding, "df", 0)
        asm.emit("cld")
        self.check_fixed(binding, "rf", 1)
        self.check_fixed(binding, "rfz", 1)
        asm.emit("repe_cmpsb", comment="compare while equal")
        not_equal = self.new_label("ne")
        done = self.new_label("done")
        asm.emit("jnz", LabelRef(not_equal))
        asm.emit("mov", Reg("ax"), Imm(1))
        asm.emit("jmp", LabelRef(done))
        asm.label(not_equal)
        asm.emit("mov", Reg("ax"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("ax"))
        self.regs.clobber("si", "di", "cx", "ax")

    # -- decomposed loops -------------------------------------------------

    def emit_move_decomposed(self, asm: AsmProgram, op: ir.StringMove):
        self.materialize_into(asm, op.src, "si")
        self.materialize_into(asm, op.dst, "di")
        self.materialize_into(asm, op.length, "cx")
        top = self.new_label("move")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("cmp", Reg("cx"), Imm(0))
        asm.emit("jz", LabelRef(done))
        asm.emit("mov", Reg("al"), MemRef(Reg("si")))
        asm.emit("mov", MemRef(Reg("di")), Reg("al"))
        asm.emit("inc", Reg("si"))
        asm.emit("inc", Reg("di"))
        asm.emit("dec", Reg("cx"))
        asm.emit("jmp", LabelRef(top))
        asm.label(done)
        self.regs.clobber("si", "di", "cx", "al")

    def emit_index_decomposed(self, asm: AsmProgram, op: ir.StringIndex):
        self.materialize_into(asm, op.base, "di")
        self.materialize_into(asm, op.length, "cx")
        self.materialize_into(asm, op.char, "ax")
        asm.emit("mov", Reg("bx"), Reg("di"), comment="save initial address")
        top = self.new_label("scan")
        found = self.new_label("found")
        not_found = self.new_label("notfound")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("cmp", Reg("cx"), Imm(0))
        asm.emit("jz", LabelRef(not_found))
        asm.emit("mov", Reg("dx"), MemRef(Reg("di")))
        asm.emit("cmp", Reg("dx"), Reg("ax"))
        asm.emit("jz", LabelRef(found))
        asm.emit("inc", Reg("di"))
        asm.emit("dec", Reg("cx"))
        asm.emit("jmp", LabelRef(top))
        asm.label(found)
        asm.emit("sub", Reg("di"), Reg("bx"))
        asm.emit("inc", Reg("di"), comment="1-based index")
        asm.emit("jmp", LabelRef(done))
        asm.label(not_found)
        asm.emit("mov", Reg("di"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("di"))
        self.regs.clobber("di", "cx", "ax", "bx", "dx")

    def emit_equal_decomposed(self, asm: AsmProgram, op: ir.StringEqual):
        self.materialize_into(asm, op.a, "si")
        self.materialize_into(asm, op.b, "di")
        self.materialize_into(asm, op.length, "cx")
        top = self.new_label("cmp")
        equal = self.new_label("equal")
        not_equal = self.new_label("ne")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("cmp", Reg("cx"), Imm(0))
        asm.emit("jz", LabelRef(equal))
        asm.emit("mov", Reg("dx"), MemRef(Reg("si")))
        asm.emit("mov", Reg("bx"), MemRef(Reg("di")))
        asm.emit("cmp", Reg("dx"), Reg("bx"))
        asm.emit("jnz", LabelRef(not_equal))
        asm.emit("inc", Reg("si"))
        asm.emit("inc", Reg("di"))
        asm.emit("dec", Reg("cx"))
        asm.emit("jmp", LabelRef(top))
        asm.label(equal)
        asm.emit("mov", Reg("ax"), Imm(1))
        asm.emit("jmp", LabelRef(done))
        asm.label(not_equal)
        asm.emit("mov", Reg("ax"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("ax"))
        self.regs.clobber("si", "di", "cx", "ax", "bx", "dx")

    def emit_clear_exotic(self, asm: AsmProgram, op: ir.BlockClear, binding: Binding):
        dst_vn = vn_of(op.dst)
        len_vn = vn_of(op.length)
        self.materialize_into(asm, op.dst, binding.register_for("dst"))
        self.materialize_into(asm, op.length, binding.register_for("length"))
        self.check_fixed(binding, "al", 0)
        asm.emit("mov", Reg("al"), Imm(0), comment="al = 0: clear fill")
        self.regs.set("al", ("const", 0))
        self.check_fixed(binding, "df", 0)
        asm.emit("cld")
        self.check_fixed(binding, "rf", 1)
        asm.emit("rep_stosb", comment="block clear")
        self.regs.set("di", vn_add(dst_vn, len_vn))
        self.regs.set("cx", ("const", 0))

    def emit_clear_decomposed(self, asm: AsmProgram, op: ir.BlockClear):
        self.materialize_into(asm, op.dst, "di")
        self.materialize_into(asm, op.length, "cx")
        asm.emit("mov", Reg("al"), Imm(0))
        top = self.new_label("clear")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("cmp", Reg("cx"), Imm(0))
        asm.emit("jz", LabelRef(done))
        asm.emit("mov", MemRef(Reg("di")), Reg("al"))
        asm.emit("inc", Reg("di"))
        asm.emit("dec", Reg("cx"))
        asm.emit("jmp", LabelRef(top))
        asm.label(done)
        self.regs.clobber("di", "cx", "al")
