"""Code-quality optimizations (paper §6).

Three optimizations are implemented, matching the paper's list:

* **Constant folding / constant propagation**: operand expressions are
  folded before emission (``ir.fold``), so chunk addresses and coding
  constraint offsets cost nothing at run time.
* **Integration of rewriting rules with augment code**: the rewriting
  rules produce expression trees rather than emitted arithmetic; the
  folding above and the value-number reuse below erase the redundant
  computation where the pieces meet.
* **Intelligent (dedicated) register allocation**:
  :class:`RegisterValues` tracks, per machine register, a symbolic
  value number for what it currently holds.  Exotic instructions
  publish their architected final register values (VAX movc3 leaves
  ``R1 = src + len``), so cascaded string operations skip reloading
  operands a previous instruction already left in the right register —
  "if exotic instructions are cascaded or put in loops, additional
  loads of the registers are not necessary."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import ir

#: A value number: a hashable symbolic description of a value.
ValueNumber = Tuple


def vn_of(expr: ir.ValueExpr) -> ValueNumber:
    """Symbolic value number of an operand expression (after folding)."""
    expr = ir.fold(expr)
    if isinstance(expr, ir.Const):
        return ("const", expr.value)
    if isinstance(expr, ir.Param):
        return ("param", expr.name)
    left = vn_of(expr.left)
    right = vn_of(expr.right)
    if isinstance(expr, ir.Add):
        # Addition commutes; normalize so (a+b) and (b+a) coincide.
        first, second = sorted((left, right))
        return ("add", first, second)
    return ("sub", left, right)


def vn_add(left: ValueNumber, right: ValueNumber) -> ValueNumber:
    """Value number of the sum of two already-numbered values."""
    if left[0] == "const" and right[0] == "const":
        return ("const", left[1] + right[1])
    first, second = sorted((left, right))
    return ("add", first, second)


@dataclass
class RegisterValues:
    """Tracks which symbolic value each machine register holds."""

    enabled: bool = True
    _held: Dict[str, ValueNumber] = field(default_factory=dict)

    def holding(self, vn: ValueNumber) -> Optional[str]:
        """A register currently holding ``vn``, if any."""
        if not self.enabled:
            return None
        for register, value in self._held.items():
            if value == vn:
                return register
        return None

    def set(self, register: str, vn: Optional[ValueNumber]) -> None:
        if vn is None:
            self._held.pop(register, None)
        else:
            self._held[register] = vn

    def clobber(self, *registers: str) -> None:
        for register in registers:
            self._held.pop(register, None)

    def clear(self) -> None:
        self._held.clear()

    def known(self, register: str) -> Optional[ValueNumber]:
        return self._held.get(register)
