"""Binding-driven instruction selection.

"The code generator can then generate an exotic instruction when a
high-level operator is encountered in the internal form and any
constraints can be satisfied.  If there is no exotic instruction … or
if the constraints can not be satisfied, then the compiler must include
decomposition rules" (paper §6).

For each operation the selector tries, in order:

1. every binding registered for the operator, checking each range
   constraint against the operand's statically-known range,
2. the constraint-satisfaction rewriting rules (``rewrite.py``) — e.g.
   a constant-length move longer than mvc's limit becomes consecutive
   chunk moves, each individually satisfiable,
3. decomposition into a low-level loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import Binding, BindingLibrary
from . import ir
from .errors import CodegenError, ConstraintNotSatisfied


@dataclass(frozen=True)
class Selection:
    """What the selector decided for one operation."""

    op: ir.Operation
    #: the binding to use, or None for decomposition.
    binding: Optional[Binding]
    #: why the exotic instruction was not used (for reports/tests).
    reason: str = ""


def operand_expr(op: ir.Operation, field: str) -> ir.ValueExpr:
    """The IR expression feeding operand ``field`` of ``op``."""
    return getattr(op, field)


def check_binding(binding: Binding, op: ir.Operation) -> None:
    """Raise :class:`ConstraintNotSatisfied` unless all constraints hold.

    Value constraints are the emitter's job (it sets the fixed operands
    when emitting); offset constraints are encoding directives; range
    constraints must be discharged *here*, from the operands' static
    ranges — "data flow information can often be used by the compiler to
    show that constraints on the values of operands are already
    satisfied" (§6).
    """
    # Value constraints on *operator* operands (e.g. the B4800 list
    # search requires LinkOff = 0 — the record-layout constraint of §1):
    # the IR operand must be provably that constant.  Value constraints
    # on instruction-internal operands (flags like df/rf) have no field
    # mapping and are the emitter's to set.
    for constraint in binding.value_constraints():
        field = binding.field_for_operand(constraint.operand)
        if field is None or not hasattr(op, field):
            continue
        value = ir.const_value(operand_expr(op, field))
        if value != constraint.value:
            raise ConstraintNotSatisfied(
                f"{binding.instruction}: operand {constraint.operand} "
                f"({field}) must be the constant {constraint.value}, "
                f"got {value if value is not None else 'a runtime value'}"
            )
    for constraint in binding.range_constraints():
        if not constraint.is_operand:
            continue
        field = binding.field_for_operand(constraint.operand)
        if field is None or not hasattr(op, field):
            continue
        expr = operand_expr(op, field)
        lo, hi = ir.static_range(expr)
        if lo is None or hi is None:
            raise ConstraintNotSatisfied(
                f"{binding.instruction}: operand {constraint.operand} "
                f"({field}) has no static range; needs "
                f"[{constraint.lo}, {constraint.hi}]"
            )
        if lo < constraint.lo or hi > constraint.hi:
            raise ConstraintNotSatisfied(
                f"{binding.instruction}: operand {constraint.operand} "
                f"({field}) range [{lo}, {hi}] exceeds "
                f"[{constraint.lo}, {constraint.hi}]"
            )


def select(
    library: BindingLibrary, op: ir.Operation, use_exotic: bool = True
) -> Selection:
    """Choose a binding (or decomposition) for one operation."""
    if not use_exotic:
        return Selection(op=op, binding=None, reason="exotic disabled")
    reasons: List[str] = []
    for binding in library.candidates(op.operator):
        try:
            check_binding(binding, op)
        except ConstraintNotSatisfied as error:
            reasons.append(str(error))
            continue
        return Selection(op=op, binding=binding)
    if not reasons:
        reasons.append(f"no binding for operator {op.operator!r}")
    return Selection(op=op, binding=None, reason="; ".join(reasons))


def plan(
    library: BindingLibrary,
    program: Sequence[ir.Operation],
    use_exotic: bool = True,
    rewrite: bool = True,
) -> List[Selection]:
    """Selection plan for a whole program, applying rewrites.

    When an operation's constraints fail but a rewriting rule can split
    it into satisfiable pieces, the pieces replace it (each selected
    independently); otherwise the operation decomposes.
    """
    from .rewrite import rewrite_for

    selections: List[Selection] = []
    for op in program:
        selection = select(library, op, use_exotic)
        if selection.binding is not None or not use_exotic:
            selections.append(selection)
            continue
        pieces = rewrite_for(library, op) if rewrite else None
        if pieces is None:
            selections.append(selection)
            continue
        for piece in pieces:
            piece_selection = select(library, piece, use_exotic)
            selections.append(piece_selection)
    return selections
