"""Constraint-satisfaction rewriting rules.

"Constraints can also be satisfied by constraint satisfaction rewriting
rules.  These rules rewrite the language operator to put it in a
context where the constraints are satisfied.  For example, a string
move operator that is constrained to move strings of at most 65K bytes
can be rewritten to move consecutive substrings of size less than or
equal to 65K" (paper §6).

The implemented rule chunks constant-length moves/copies/clears whose
length exceeds a binding's range limit into consecutive pieces of the
maximum satisfiable size.  Chunk addresses are expression trees
(``base + k*chunk``) that the emitter's constant-folding optimization
collapses at compile time — the "integration of rewriting rules with
augment code" plus "constant folding" of §6's optimization list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import BindingLibrary
from . import ir

#: operators the chunking rule understands, with their length field.
_CHUNKABLE = {
    "string.move": "length",
    "block.copy": "length",
    "block.clear": "length",
    "string.translate": "length",
}


def _chunk_limits(library: BindingLibrary, op: ir.Operation):
    """(lo, hi) length range of the best chunkable binding, if any."""
    best = None
    for binding in library.candidates(op.operator):
        for constraint in binding.range_constraints():
            if not constraint.is_operand:
                continue
            if binding.field_for_operand(constraint.operand) == _CHUNKABLE.get(
                op.operator
            ):
                if best is None or constraint.hi > best[1]:
                    best = (constraint.lo, constraint.hi)
    return best


def _offset_expr(base: ir.ValueExpr, offset: int) -> ir.ValueExpr:
    # Left unfolded: the emitter's constant-folding pass (when enabled)
    # collapses these — that collapse is exactly the "integration of
    # rewriting rules" optimization the §6 ablation measures.
    if offset == 0:
        return base
    return ir.Add(base, ir.Const(offset))


def chunk_operation(op: ir.Operation, chunk_size: int) -> List[ir.Operation]:
    """Split a constant-length operation into <= chunk_size pieces."""
    length_field = _CHUNKABLE[op.operator]
    total = ir.const_value(getattr(op, length_field))
    if total is None:
        raise ValueError("only constant lengths can be chunked statically")
    pieces: List[ir.Operation] = []
    moved = 0
    while moved < total:
        size = min(chunk_size, total - moved)
        if isinstance(op, (ir.StringMove, ir.BlockCopy)):
            pieces.append(
                type(op)(
                    dst=_offset_expr(op.dst, moved),
                    src=_offset_expr(op.src, moved),
                    length=ir.Const(size),
                )
            )
        elif isinstance(op, ir.BlockClear):
            pieces.append(
                ir.BlockClear(
                    dst=_offset_expr(op.dst, moved), length=ir.Const(size)
                )
            )
        elif isinstance(op, ir.StringTranslate):
            pieces.append(
                ir.StringTranslate(
                    base=_offset_expr(op.base, moved),
                    table=op.table,
                    length=ir.Const(size),
                )
            )
        else:
            raise ValueError(f"cannot chunk {op.operator}")
        moved += size
    return pieces


def rewrite_for(
    library: BindingLibrary, op: ir.Operation
) -> Optional[List[ir.Operation]]:
    """Rewrite ``op`` so a binding's constraints become satisfiable.

    Returns the replacement operations, or None when no rule applies.
    Currently: constant-length chunking for moves/copies/clears whose
    length exceeds the binding's limit (and dropping zero-length
    operations below a binding's minimum — a move of nothing is no code).
    """
    if op.operator not in _CHUNKABLE:
        return None
    limits = _chunk_limits(library, op)
    if limits is None:
        return None
    lo, hi = limits
    total = ir.const_value(getattr(op, _CHUNKABLE[op.operator]))
    if total is None:
        return None
    if total == 0:
        return []  # nothing to move: no code at all
    if total > hi:
        return chunk_operation(op, hi)
    if total < lo:
        return None
    return None
