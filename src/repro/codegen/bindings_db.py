"""Binding database: the analyses' output, packaged for the compiler.

Runs the recorded analysis scripts (without the differential-testing
pass — that is the test suite's job) and collects the resulting
bindings per target machine.  This is the hand-off the paper describes:
"the results of the analysis are passed to a retargetable code
generator as part of the instruction repertoire of the machine" (§3).

The VAX library optionally includes the §7 extension binding
(movc3 implementing ``string.move`` under the no-overlap language
fact); without it, a VAX compiler must decompose plain string moves —
exactly the stock-EXTRA situation.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from ..analysis import Binding, BindingLibrary
from ..lint import LintGateError, lint_binding
from ..analyses import (
    clc_pascal,
    cmpc3_pascal,
    cmpsb_pascal,
    locc_rigel,
    movc3_pc2,
    movc3_sassign_extension,
    movc5_pc2,
    movsb_pascal,
    mva_pascal,
    mvc_pascal,
    scasb_rigel,
    srl_listsearch,
    stosb_pc2,
    tr_pascal,
)


def _binding_from(module) -> Binding:
    outcome = module.run(verify=False)
    if not outcome.succeeded:
        raise RuntimeError(
            f"analysis {module.__name__} failed: {outcome.failure}"
        )
    binding = dataclasses.replace(
        outcome.binding, field_map=dict(module.FIELD_MAP)
    )
    # No binding whose constraints contradict its own descriptions may
    # enter a compiler's instruction repertoire.
    diagnostics = lint_binding(binding)
    if diagnostics:
        raise LintGateError(tuple(diagnostics))
    return binding


#: machine name -> analysis modules whose bindings it gets.
_MACHINE_ANALYSES = {
    "i8086": (movsb_pascal, scasb_rigel, cmpsb_pascal, stosb_pc2),
    "vax11": (movc3_pc2, movc5_pc2, locc_rigel, cmpc3_pascal),
    "ibm370": (mvc_pascal, clc_pascal, tr_pascal),
    "b4800": (srl_listsearch, mva_pascal),
}


@lru_cache(maxsize=None)
def library_for(machine: str, with_extensions: bool = False) -> BindingLibrary:
    """All bindings for ``machine`` (cached)."""
    try:
        modules = _MACHINE_ANALYSES[machine]
    except KeyError:
        raise KeyError(f"no bindings known for machine {machine!r}")
    paper_machine = _binding_from(modules[0]).machine
    library = BindingLibrary(machine=paper_machine)
    for module in modules:
        library.add(_binding_from(module))
    if with_extensions and machine == "vax11":
        library.add(_binding_from(movc3_sassign_extension))
    return library
