"""Binding database: the analyses' output, packaged for the compiler.

Runs the recorded analysis scripts (without the differential-testing
pass — that is the test suite's job) and collects the resulting
bindings per target machine.  This is the hand-off the paper describes:
"the results of the analysis are passed to a retargetable code
generator as part of the instruction repertoire of the machine" (§3).

The VAX library optionally includes the §7 extension binding
(movc3 implementing ``string.move`` under the no-overlap language
fact); without it, a VAX compiler must decompose plain string moves —
exactly the stock-EXTRA situation.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from ..analysis import Binding, BindingLibrary
from ..analyses import AnalysisSpec, REGISTRY, codegen_specs
from ..lint import LintGateError, lint_binding
from ..provenance import analysis_trace_digest


def _binding_from(spec: AnalysisSpec) -> Binding:
    outcome = spec.module.run(verify=False)
    if not outcome.succeeded:
        raise RuntimeError(
            f"analysis {spec.name} failed: {outcome.failure}"
        )
    field_map = dict(spec.field_map) if spec.field_map is not None else None
    trace = outcome.trace
    binding = dataclasses.replace(
        outcome.binding,
        field_map=field_map,
        trace_digest=(
            analysis_trace_digest(trace) if trace is not None else None
        ),
    )
    # No binding whose constraints contradict its own descriptions may
    # enter a compiler's instruction repertoire.
    diagnostics = lint_binding(binding)
    if diagnostics:
        raise LintGateError(tuple(diagnostics))
    return binding


def known_machines():
    """Machine names the registry ships bindings for, sorted."""
    return sorted({spec.codegen for spec in REGISTRY if spec.codegen})


@lru_cache(maxsize=None)
def library_for(machine: str, with_extensions: bool = False) -> BindingLibrary:
    """All bindings for ``machine`` (cached), per the analysis registry."""
    specs = codegen_specs(machine, extensions=with_extensions)
    if not specs:
        raise KeyError(f"no bindings known for machine {machine!r}")
    paper_machine = _binding_from(specs[0]).machine
    library = BindingLibrary(machine=paper_machine)
    for spec in specs:
        library.add(_binding_from(spec))
    return library
