"""IBM 370 back end.

``mvc``'s length lives in the instruction encoding, so it is only
emittable for compile-time-constant lengths within the binding's
[1, 256] range; the coding constraint's ``-1`` offset is applied when
the field is encoded (constant-folded by necessity — there is no
runtime length register to adjust).  Longer constant moves arrive here
already chunked by the rewriting rule; runtime lengths decompose into a
``bct`` byte loop.
"""

from __future__ import annotations

from ..analysis import Binding
from ..machines.ibm370.sim import Ibm370Simulator
from . import ir
from ..asm import AsmProgram, Imm, LabelRef, MemRef, ParamRef, Reg
from .emitter import Target
from .errors import CodegenError


class Ibm370Target(Target):
    """Code generation for the IBM 370."""

    name = "ibm370"
    SCRATCH = ("r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9")
    simulator_class = Ibm370Simulator

    EXOTIC = {
        "string.move": "emit_move_exotic",
        "string.equal": "emit_equal_exotic",
        "string.translate": "emit_translate_exotic",
    }
    DECOMPOSED = {
        "string.move": "emit_move_decomposed",
        "block.clear": "emit_clear_decomposed",
        "string.index": "emit_index_decomposed",
        "string.equal": "emit_equal_decomposed",
        "string.translate": "emit_translate_decomposed",
    }

    # -- machine hooks ---------------------------------------------------

    def emit_load(self, asm, reg, operand):
        asm.emit("la", Reg(reg), operand)

    def emit_move(self, asm, dst, src):
        asm.emit("lr", Reg(dst), Reg(src))

    def emit_add(self, asm, reg, operand):
        if isinstance(operand, Reg):
            asm.emit("ar", Reg(reg), operand)
            return
        scratch = self._pick_scratch(avoid=(reg,))
        self.regs.clobber(scratch)
        asm.emit("la", Reg(scratch), operand)
        asm.emit("ar", Reg(reg), Reg(scratch))

    def emit_sub(self, asm, reg, operand):
        if isinstance(operand, Reg):
            asm.emit("sr", Reg(reg), operand)
            return
        scratch = self._pick_scratch(avoid=(reg,))
        self.regs.clobber(scratch)
        asm.emit("la", Reg(scratch), operand)
        asm.emit("sr", Reg(reg), Reg(scratch))

    # -- exotic emitter ----------------------------------------------------

    def emit_move_exotic(self, asm: AsmProgram, op: ir.StringMove, binding: Binding):
        length = ir.const_value(op.length)
        if length is None:
            raise CodegenError(
                "mvc needs a compile-time-constant length (the length is "
                "an instruction field)"
            )
        # The coding constraint: the field encodes length - 1 (§4.2).
        offset = binding.operand_offset("len")
        field_value = length + offset
        if not 0 <= field_value <= 255:
            raise CodegenError(
                f"mvc length field {field_value} out of range; the "
                f"rewriting rule should have chunked this move"
            )
        dst_reg = self.materialize_any(asm, op.dst)
        src_reg = self.materialize_any(asm, op.src, avoid=(dst_reg,))
        asm.emit(
            "mvc",
            Reg(dst_reg),
            Reg(src_reg),
            Imm(field_value),
            comment=f"move {length} bytes (field encodes count - 1)",
        )

    # -- decomposed loops -------------------------------------------------

    def emit_move_decomposed(self, asm: AsmProgram, op: ir.StringMove):
        self.materialize_into(asm, op.src, "r2")
        self.materialize_into(asm, op.dst, "r3")
        self.materialize_into(asm, op.length, "r4")
        top = self.new_label("move")
        done = self.new_label("done")
        asm.emit("ltr", Reg("r4"), Reg("r4"))
        asm.emit("bz", LabelRef(done))
        asm.emit("la", Reg("r5"), Imm(1))
        asm.label(top)
        asm.emit("ic", Reg("r6"), MemRef(Reg("r2")))
        asm.emit("stc", Reg("r6"), MemRef(Reg("r3")))
        asm.emit("ar", Reg("r2"), Reg("r5"))
        asm.emit("ar", Reg("r3"), Reg("r5"))
        asm.emit("bct", Reg("r4"), LabelRef(top))
        asm.label(done)
        self.regs.clobber("r2", "r3", "r4", "r5", "r6")

    def emit_clear_decomposed(self, asm: AsmProgram, op: ir.BlockClear):
        self.materialize_into(asm, op.dst, "r3")
        self.materialize_into(asm, op.length, "r4")
        top = self.new_label("clear")
        done = self.new_label("done")
        asm.emit("ltr", Reg("r4"), Reg("r4"))
        asm.emit("bz", LabelRef(done))
        asm.emit("la", Reg("r5"), Imm(1))
        asm.emit("la", Reg("r6"), Imm(0))
        asm.label(top)
        asm.emit("stc", Reg("r6"), MemRef(Reg("r3")))
        asm.emit("ar", Reg("r3"), Reg("r5"))
        asm.emit("bct", Reg("r4"), LabelRef(top))
        asm.label(done)
        self.regs.clobber("r3", "r4", "r5", "r6")

    def emit_index_decomposed(self, asm: AsmProgram, op: ir.StringIndex):
        self.materialize_into(asm, op.base, "r2")
        self.materialize_into(asm, op.length, "r4")
        self.materialize_into(asm, op.char, "r7")
        asm.emit("lr", Reg("r8"), Reg("r2"), comment="save start address")
        asm.emit("la", Reg("r5"), Imm(1))
        top = self.new_label("scan")
        found = self.new_label("found")
        not_found = self.new_label("notfound")
        done = self.new_label("done")
        asm.emit("ltr", Reg("r4"), Reg("r4"))
        asm.emit("bz", LabelRef(not_found))
        asm.label(top)
        asm.emit("ic", Reg("r6"), MemRef(Reg("r2")))
        asm.emit("cr", Reg("r6"), Reg("r7"))
        asm.emit("bz", LabelRef(found))
        asm.emit("ar", Reg("r2"), Reg("r5"))
        asm.emit("bct", Reg("r4"), LabelRef(top))
        asm.emit("b", LabelRef(not_found))
        asm.label(found)
        asm.emit("sr", Reg("r2"), Reg("r8"))
        asm.emit("ar", Reg("r2"), Reg("r5"), comment="1-based index")
        asm.emit("b", LabelRef(done))
        asm.label(not_found)
        asm.emit("la", Reg("r2"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("r2"))
        self.regs.clobber("r2", "r4", "r5", "r6", "r7", "r8")

    def emit_equal_decomposed(self, asm: AsmProgram, op: ir.StringEqual):
        self.materialize_into(asm, op.a, "r2")
        self.materialize_into(asm, op.b, "r3")
        self.materialize_into(asm, op.length, "r4")
        asm.emit("la", Reg("r5"), Imm(1))
        top = self.new_label("cmp")
        equal = self.new_label("equal")
        not_equal = self.new_label("ne")
        done = self.new_label("done")
        asm.emit("ltr", Reg("r4"), Reg("r4"))
        asm.emit("bz", LabelRef(equal))
        asm.label(top)
        asm.emit("ic", Reg("r6"), MemRef(Reg("r2")))
        asm.emit("ic", Reg("r7"), MemRef(Reg("r3")))
        asm.emit("cr", Reg("r6"), Reg("r7"))
        asm.emit("bnz", LabelRef(not_equal))
        asm.emit("ar", Reg("r2"), Reg("r5"))
        asm.emit("ar", Reg("r3"), Reg("r5"))
        asm.emit("bct", Reg("r4"), LabelRef(top))
        asm.label(equal)
        asm.emit("la", Reg("r6"), Imm(1))
        asm.emit("b", LabelRef(done))
        asm.label(not_equal)
        asm.emit("la", Reg("r6"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("r6"))
        self.regs.clobber("r2", "r3", "r4", "r5", "r6", "r7")

    def emit_equal_exotic(self, asm: AsmProgram, op: ir.StringEqual, binding: Binding):
        length = ir.const_value(op.length)
        if length is None:
            raise CodegenError(
                "clc needs a compile-time-constant length (the length is "
                "an instruction field)"
            )
        offset = binding.operand_offset("len")
        field_value = length + offset
        if not 0 <= field_value <= 255:
            raise CodegenError(f"clc length field {field_value} out of range")
        a_reg = self.materialize_any(asm, op.a)
        b_reg = self.materialize_any(asm, op.b, avoid=(a_reg,))
        asm.emit(
            "clc",
            Reg(a_reg),
            Reg(b_reg),
            Imm(field_value),
            comment=f"compare {length} bytes (field encodes count - 1)",
        )
        equal = self.new_label("equal")
        done = self.new_label("done")
        result = self._pick_scratch(avoid=(a_reg, b_reg))
        self.regs.clobber(result)
        asm.emit("bz", LabelRef(equal))
        asm.emit("la", Reg(result), Imm(0))
        asm.emit("b", LabelRef(done))
        asm.label(equal)
        asm.emit("la", Reg(result), Imm(1))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg(result))

    def emit_translate_exotic(self, asm: AsmProgram, op: ir.StringTranslate, binding: Binding):
        length = ir.const_value(op.length)
        if length is None:
            raise CodegenError(
                "tr needs a compile-time-constant length (the length is "
                "an instruction field)"
            )
        offset = binding.operand_offset("len")
        field_value = length + offset
        if not 0 <= field_value <= 255:
            raise CodegenError(
                f"tr length field {field_value} out of range; the "
                f"rewriting rule should have chunked this translate"
            )
        base_reg = self.materialize_any(asm, op.base)
        table_reg = self.materialize_any(asm, op.table, avoid=(base_reg,))
        asm.emit(
            "tr",
            Reg(base_reg),
            Reg(table_reg),
            Imm(field_value),
            comment=f"translate {length} bytes (field encodes count - 1)",
        )

    def emit_translate_decomposed(self, asm: AsmProgram, op: ir.StringTranslate):
        self.materialize_into(asm, op.base, "r2")
        self.materialize_into(asm, op.table, "r3")
        self.materialize_into(asm, op.length, "r4")
        top = self.new_label("translate")
        done = self.new_label("done")
        asm.emit("ltr", Reg("r4"), Reg("r4"))
        asm.emit("bz", LabelRef(done))
        asm.emit("la", Reg("r5"), Imm(1))
        asm.label(top)
        asm.emit("ic", Reg("r6"), MemRef(Reg("r2")))
        asm.emit("lr", Reg("r7"), Reg("r3"))
        asm.emit("ar", Reg("r7"), Reg("r6"))
        asm.emit("ic", Reg("r6"), MemRef(Reg("r7")))
        asm.emit("stc", Reg("r6"), MemRef(Reg("r2")))
        asm.emit("ar", Reg("r2"), Reg("r5"))
        asm.emit("bct", Reg("r4"), LabelRef(top))
        asm.label(done)
        self.regs.clobber("r2", "r3", "r4", "r5", "r6", "r7")
