"""Burroughs B4800 back end — the paper's §1 example, executable.

Only ``list.search`` is implemented: the point of this back end is the
introduction's constraint story.  The srl binding carries
``ValueConstraint(LinkOff, 0)`` — the instruction hard-wires the link
field to offset zero — so the selector emits ``srl`` only when the IR
operation's ``link_offset`` is *provably* zero (the record layout the
storage allocator chose); any other layout decomposes into the generic
pointer-chasing loop.
"""

from __future__ import annotations

from ..analysis import Binding
from ..machines.b4800.sim import B4800Simulator
from . import ir
from ..asm import AsmProgram, Imm, LabelRef, MemRef, ParamRef, Reg
from .emitter import Target
from .errors import ConstraintNotSatisfied


class B4800Target(Target):
    """Code generation for the Burroughs B4800 (list search only)."""

    name = "b4800"
    SCRATCH = ("rb", "rc", "rd", "re")
    simulator_class = B4800Simulator

    EXOTIC = {
        "list.search": "emit_search_exotic",
    }
    DECOMPOSED = {
        "list.search": "emit_search_decomposed",
    }

    # -- machine hooks ---------------------------------------------------

    def emit_load(self, asm, reg, operand):
        asm.emit("ld", Reg(reg), operand)

    def emit_move(self, asm, dst, src):
        asm.emit("ld", Reg(dst), Reg(src))

    def emit_add(self, asm, reg, operand):
        asm.emit("add", Reg(reg), operand)

    def emit_sub(self, asm, reg, operand):
        asm.emit("sub", Reg(reg), operand)

    # -- selection hook ----------------------------------------------------

    def _check_link_offset(self, op: ir.ListSearch, binding: Binding) -> None:
        """The §1 constraint: the link field must be first in the record."""
        for constraint in binding.value_constraints():
            if constraint.operand != "LinkOff":
                continue
            value = ir.const_value(op.link_offset)
            if value != constraint.value:
                raise ConstraintNotSatisfied(
                    f"srl requires the link field at offset "
                    f"{constraint.value}; this record layout has it at "
                    f"{value if value is not None else 'an unknown offset'}"
                )

    def emit_search_exotic(self, asm: AsmProgram, op: ir.ListSearch, binding: Binding):
        self._check_link_offset(op, binding)
        head_reg = self.materialize_any(asm, op.head)
        key_reg = self.materialize_any(asm, op.key, avoid=(head_reg,))
        offset_reg = self.materialize_any(
            asm, op.key_offset, avoid=(head_reg, key_reg)
        )
        asm.emit(
            "srl",
            Reg(head_reg),
            Reg(key_reg),
            Reg(offset_reg),
            comment="search linked list (link field first)",
        )
        self.regs.clobber("ra")
        asm.emit("setres", ParamRef(op.result), Reg("ra"))

    def emit_search_decomposed(self, asm: AsmProgram, op: ir.ListSearch):
        self.materialize_into(asm, op.head, "ra")
        self.materialize_into(asm, op.key, "rb")
        self.materialize_into(asm, op.key_offset, "rc")
        link_reg = "rd"
        self.materialize_into(asm, op.link_offset, link_reg)
        top = self.new_label("chase")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("cmp", Reg("ra"), Imm(0))
        asm.emit("brz", LabelRef(done))
        # key byte: load Mb[node + key_offset]
        asm.emit("ld", Reg("re"), Reg("ra"))
        asm.emit("add", Reg("re"), Reg("rc"))
        asm.emit("ld", Reg("rf"), MemRef(Reg("re")))
        asm.emit("cmp", Reg("rf"), Reg("rb"))
        asm.emit("brz", LabelRef(done))
        # follow the link at the configured offset
        asm.emit("ld", Reg("re"), Reg("ra"))
        asm.emit("add", Reg("re"), Reg(link_reg))
        asm.emit("ld", Reg("ra"), MemRef(Reg("re")))
        asm.emit("br", LabelRef(top))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("ra"))
        self.regs.clobber("ra", "rb", "rc", "rd", "re", "rf")
