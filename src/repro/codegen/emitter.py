"""Target emitter base: operand materialization and compilation driving.

A target subclass provides machine-specific hooks (how to load a
register, add to one, move register to register) plus one emitter per
(operator, exotic-instruction) pair and one decomposed emitter per
operator.  This base drives selection, folds operand expressions, and
runs the value-number register-reuse optimization of
:mod:`repro.codegen.optimize`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis import Binding, BindingLibrary
from . import ir
from ..asm import AsmProgram, Imm, ParamRef, Reg
from .errors import CodegenError
from .optimize import RegisterValues, ValueNumber, vn_of
from .select import Selection, plan


class Target:
    """Base class for the three machine back ends."""

    #: machine key ("i8086", "vax11", "ibm370").
    name: str = ""
    #: scratch registers usable for operand expression evaluation.
    SCRATCH: tuple = ()
    #: simulator class (subclass of machines.simbase.Simulator).
    simulator_class = None

    def __init__(
        self,
        library: BindingLibrary,
        fold_constants: bool = True,
        reuse_registers: bool = True,
    ):
        self.library = library
        self.fold_constants = fold_constants
        self.regs = RegisterValues(enabled=reuse_registers)
        self._label_counter = 0

    # ------------------------------------------------------------------
    # machine hooks (subclasses implement)

    def emit_load(self, asm: AsmProgram, reg: str, operand) -> None:
        """Load an Imm/ParamRef into a register."""
        raise NotImplementedError

    def emit_move(self, asm: AsmProgram, dst: str, src: str) -> None:
        """Register-to-register move."""
        raise NotImplementedError

    def emit_add(self, asm: AsmProgram, reg: str, operand) -> None:
        """Add an Imm/Reg to a register."""
        raise NotImplementedError

    def emit_sub(self, asm: AsmProgram, reg: str, operand) -> None:
        """Subtract an Imm/Reg from a register."""
        raise NotImplementedError

    #: operator -> method emitting the exotic-instruction form.
    EXOTIC: Dict[str, str] = {}
    #: operator -> method emitting the decomposed loop.
    DECOMPOSED: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # compilation

    def compile(
        self,
        program: Sequence[ir.Operation],
        use_exotic: bool = True,
        rewrite: bool = True,
    ) -> AsmProgram:
        """Compile an IR program to target assembly."""
        asm = AsmProgram(machine=self.name)
        self.regs.clear()
        self._label_counter = 0
        for selection in plan(self.library, program, use_exotic, rewrite):
            self._emit_selection(asm, selection)
        return asm

    def _emit_selection(self, asm: AsmProgram, selection: Selection) -> None:
        op = selection.op
        if selection.binding is not None:
            method_name = self.EXOTIC.get(op.operator)
            if method_name is None:
                raise CodegenError(
                    f"{self.name}: no exotic emitter for {op.operator}"
                )
            getattr(self, method_name)(asm, op, selection.binding)
            return
        method_name = self.DECOMPOSED.get(op.operator)
        if method_name is None:
            raise CodegenError(
                f"{self.name}: no decomposition for {op.operator} "
                f"({selection.reason})"
            )
        getattr(self, method_name)(asm, op)

    # ------------------------------------------------------------------
    # operand materialization with value-number reuse

    def _prepare(self, expr: ir.ValueExpr) -> ir.ValueExpr:
        return ir.fold(expr) if self.fold_constants else expr

    def materialize_into(self, asm: AsmProgram, expr: ir.ValueExpr, reg: str) -> None:
        """Put the value of ``expr`` into the *specific* register ``reg``."""
        expr = self._prepare(expr)
        vn = vn_of(expr)
        if self.regs.known(reg) == vn:
            return  # already there — nothing to emit
        holder = self.regs.holding(vn)
        if holder is not None and holder != reg:
            self.emit_move(asm, reg, holder)
            self.regs.set(reg, vn)
            return
        self._compute(asm, expr, reg)
        self.regs.set(reg, vn)

    def materialize_any(self, asm: AsmProgram, expr: ir.ValueExpr, avoid=()) -> str:
        """Put ``expr`` into *some* register and return its name.

        Reuses a register already holding the value when possible (the
        dedicated-register optimization for machines whose string
        instructions take general register operands).  ``avoid`` names
        registers already carrying sibling operands of the same
        instruction.
        """
        expr = self._prepare(expr)
        vn = vn_of(expr)
        holder = self.regs.holding(vn)
        if holder is not None:
            return holder
        reg = self._pick_scratch(avoid=avoid)
        self._compute(asm, expr, reg)
        self.regs.set(reg, vn)
        return reg

    def _pick_scratch(self, avoid) -> str:
        """A scratch register, preferring ones holding nothing tracked.

        Falls back to evicting a tracked scratch (clearing its value
        number) when every scratch register is occupied.
        """
        for reg in self.SCRATCH:
            if reg not in avoid and self.regs.known(reg) is None:
                return reg
        for reg in self.SCRATCH:
            if reg not in avoid:
                self.regs.clobber(reg)
                return reg
        raise CodegenError(f"{self.name}: out of scratch registers")

    def _compute(
        self, asm: AsmProgram, expr: ir.ValueExpr, reg: str, avoid=()
    ) -> None:
        """Evaluate ``expr`` into ``reg`` (no reuse checks — callers did)."""
        self.regs.clobber(reg)
        if isinstance(expr, ir.Const):
            self.emit_load(asm, reg, Imm(expr.value))
            return
        if isinstance(expr, ir.Param):
            self.emit_load(asm, reg, ParamRef(expr.name))
            return
        # Binary: left into reg, then add/sub the right side.
        self._compute(asm, expr.left, reg, avoid)
        right = expr.right
        emit = self.emit_add if isinstance(expr, ir.Add) else self.emit_sub
        if isinstance(right, ir.Const):
            emit(asm, reg, Imm(right.value))
            return
        scratch = self._pick_scratch(avoid=(reg,) + tuple(avoid))
        self._compute(asm, right, scratch, avoid + (reg,))
        emit(asm, reg, Reg(scratch))

    # ------------------------------------------------------------------
    # misc helpers

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def check_fixed(self, binding: Binding, operand: str, value: int) -> None:
        """Assert the analysis fixed ``operand`` to ``value``.

        Ties emission templates back to the bindings they lower: the
        8086 emitter refuses to emit ``cld`` unless the binding really
        recorded ``df = 0``.
        """
        for constraint in binding.value_constraints():
            if constraint.operand == operand and constraint.value == value:
                return
        raise CodegenError(
            f"binding {binding.instruction} does not fix {operand} = {value}"
        )

    def simulate(
        self,
        asm: AsmProgram,
        params: Optional[Mapping[str, int]] = None,
        memory: Optional[Mapping[int, int]] = None,
    ):
        """Run the generated program on the target's simulator."""
        return self.simulator_class().run(asm, params, memory)
