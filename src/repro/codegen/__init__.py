"""The retargetable code generator (paper §6).

Consumes the bindings EXTRA produced: a high-level internal form with
explicit string/block operators, binding-driven instruction selection
with constraint checking, constraint-satisfaction rewriting (chunking),
decomposition rules as the fallback, and the three §6 optimizations
(constant folding, rewrite/augment integration, dedicated-register
reuse).  Generated code runs on cycle-costed simulators of the three
target machines.
"""

from . import ir
from ..asm import AsmProgram, Imm, Instr, Label, LabelRef, MemRef, ParamRef, Reg
from .bindings_db import library_for
from .emitter import Target
from .errors import CodegenError, ConstraintNotSatisfied
from .rewrite import chunk_operation, rewrite_for
from .select import Selection, check_binding, plan, select
from .target_b4800 import B4800Target
from .target_i8086 import I8086Target
from .target_ibm370 import Ibm370Target
from .target_vax11 import Vax11Target

__all__ = [
    "ir",
    "AsmProgram",
    "Imm",
    "Instr",
    "Label",
    "LabelRef",
    "MemRef",
    "ParamRef",
    "Reg",
    "library_for",
    "Target",
    "CodegenError",
    "ConstraintNotSatisfied",
    "chunk_operation",
    "rewrite_for",
    "Selection",
    "check_binding",
    "plan",
    "select",
    "B4800Target",
    "I8086Target",
    "Ibm370Target",
    "Vax11Target",
]


def target_for(machine: str, with_extensions: bool = False, **options) -> Target:
    """Construct a ready-to-use back end for ``machine``.

    ``machine`` is one of ``"i8086"``, ``"vax11"``, ``"ibm370"``.
    ``with_extensions`` adds the §7 language-fact bindings (currently:
    movc3 implementing ``string.move`` on the VAX).  Remaining keyword
    options go to the target constructor (``fold_constants``,
    ``reuse_registers``).
    """
    classes = {
        "i8086": I8086Target,
        "vax11": Vax11Target,
        "ibm370": Ibm370Target,
        "b4800": B4800Target,
    }
    try:
        cls = classes[machine]
    except KeyError:
        raise KeyError(f"unknown machine {machine!r}; known: {sorted(classes)}")
    return cls(library_for(machine, with_extensions), **options)
