"""The compiler's high-level internal form.

"In order to use this binding information the compiler must have an
internal form that allows high-level language operators to be
represented explicitly" (paper §6).  This IR is exactly that: string
and block operators appear as single operations, and the instruction
selector decides per operation whether an exotic-instruction binding
applies (constraints dischargeable) or the operator must be decomposed
into a loop of low-level operations.

Operands are expression trees over compile-time constants and runtime
parameters; a parameter may declare a static range (``lo``/``hi``),
which is how "data flow information can … show that constraints on the
values of operands are already satisfied in the source program".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

# ---------------------------------------------------------------------------
# operand expressions


@dataclass(frozen=True)
class Const:
    """A compile-time constant."""

    value: int


@dataclass(frozen=True)
class Param:
    """A runtime parameter with an optional statically-known range."""

    name: str
    lo: Optional[int] = None
    hi: Optional[int] = None


@dataclass(frozen=True)
class Add:
    """Sum of two operand expressions."""

    left: "ValueExpr"
    right: "ValueExpr"


@dataclass(frozen=True)
class Sub:
    """Difference of two operand expressions."""

    left: "ValueExpr"
    right: "ValueExpr"


ValueExpr = Union[Const, Param, Add, Sub]


def static_range(expr: ValueExpr) -> Tuple[Optional[int], Optional[int]]:
    """Conservative (lo, hi) bounds of an operand expression."""
    if isinstance(expr, Const):
        return expr.value, expr.value
    if isinstance(expr, Param):
        return expr.lo, expr.hi
    left_lo, left_hi = static_range(expr.left)
    right_lo, right_hi = static_range(expr.right)
    if isinstance(expr, Add):
        lo = None if left_lo is None or right_lo is None else left_lo + right_lo
        hi = None if left_hi is None or right_hi is None else left_hi + right_hi
        return lo, hi
    lo = None if left_lo is None or right_hi is None else left_lo - right_hi
    hi = None if left_hi is None or right_lo is None else left_hi - right_lo
    return lo, hi


def fold(expr: ValueExpr) -> ValueExpr:
    """Constant-fold an operand expression."""
    if isinstance(expr, (Const, Param)):
        return expr
    left = fold(expr.left)
    right = fold(expr.right)
    if isinstance(left, Const) and isinstance(right, Const):
        if isinstance(expr, Add):
            return Const(left.value + right.value)
        return Const(left.value - right.value)
    return type(expr)(left, right)


def const_value(expr: ValueExpr) -> Optional[int]:
    """The expression's value when it folds to a constant, else None."""
    folded = fold(expr)
    return folded.value if isinstance(folded, Const) else None


# ---------------------------------------------------------------------------
# operations


@dataclass(frozen=True)
class StringMove:
    """Move ``length`` bytes from ``src`` to ``dst`` (non-overlapping)."""

    dst: ValueExpr
    src: ValueExpr
    length: ValueExpr

    operator = "string.move"


@dataclass(frozen=True)
class BlockCopy:
    """Copy ``length`` bytes; regions may overlap (memmove semantics)."""

    dst: ValueExpr
    src: ValueExpr
    length: ValueExpr

    operator = "block.copy"


@dataclass(frozen=True)
class BlockClear:
    """Zero ``length`` bytes at ``dst``."""

    dst: ValueExpr
    length: ValueExpr

    operator = "block.clear"


@dataclass(frozen=True)
class StringIndex:
    """1-based index of ``char`` in the string, or 0; stored in ``result``."""

    result: str
    base: ValueExpr
    length: ValueExpr
    char: ValueExpr

    operator = "string.index"


@dataclass(frozen=True)
class StringEqual:
    """1 when the two strings of ``length`` bytes are equal, else 0."""

    result: str
    a: ValueExpr
    b: ValueExpr
    length: ValueExpr

    operator = "string.equal"


@dataclass(frozen=True)
class StringTranslate:
    """Translate ``length`` bytes at ``base`` in place through ``table``."""

    base: ValueExpr
    table: ValueExpr
    length: ValueExpr

    operator = "string.translate"


@dataclass(frozen=True)
class ListSearch:
    """Address of the list record whose key matches, or 0."""

    result: str
    head: ValueExpr
    key: ValueExpr
    key_offset: ValueExpr
    link_offset: ValueExpr

    operator = "list.search"


Operation = Union[
    StringMove,
    BlockCopy,
    BlockClear,
    StringIndex,
    StringEqual,
    StringTranslate,
    ListSearch,
]

#: A compiler input: a straight-line sequence of high-level operations.
Program = Tuple[Operation, ...]
