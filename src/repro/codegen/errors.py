"""Code-generator error types."""

from __future__ import annotations


class CodegenError(Exception):
    """The program cannot be compiled for the target."""


class ConstraintNotSatisfied(CodegenError):
    """A binding's constraint could not be discharged for an operation.

    Raised internally during selection; the selector catches it and
    falls back to rewriting or decomposition, re-raising only when no
    fallback exists and strict mode demands the exotic instruction.
    """
