"""VAX-11 back end.

The VAX string instructions take general operands and leave their final
state in dedicated registers (movc3: R0 = 0, R1 = src + len,
R3 = dst + len), so this back end leans on ``materialize_any`` — an
operand already sitting in *any* register, including a previous string
instruction's result register, is used in place.  That is §6's
"intelligent register allocation" for cascaded string operations.

``string.move`` is only emittable when the binding library carries the
§7 extension binding (movc3 under the no-overlap language fact);
otherwise plain moves decompose — the stock-EXTRA situation of §4.3.
"""

from __future__ import annotations

from ..analysis import Binding
from ..machines.vax11.sim import Vax11Simulator
from . import ir
from ..asm import AsmProgram, Imm, LabelRef, MemRef, ParamRef, Reg
from .emitter import Target
from .optimize import vn_add, vn_of


class Vax11Target(Target):
    """Code generation for the VAX-11."""

    name = "vax11"
    SCRATCH = ("r5", "r6", "r7", "r8", "r9")
    simulator_class = Vax11Simulator

    EXOTIC = {
        "block.copy": "emit_copy_exotic",
        "string.move": "emit_copy_exotic",  # via the §7 extension binding
        "block.clear": "emit_clear_exotic",
        "string.index": "emit_index_exotic",
        "string.equal": "emit_equal_exotic",
    }
    DECOMPOSED = {
        "block.copy": "emit_copy_decomposed",
        "string.move": "emit_move_decomposed",
        "block.clear": "emit_clear_decomposed",
        "string.index": "emit_index_decomposed",
        "string.equal": "emit_equal_decomposed",
    }

    # -- machine hooks ---------------------------------------------------

    def emit_load(self, asm, reg, operand):
        asm.emit("movl", Reg(reg), operand)

    def emit_move(self, asm, dst, src):
        asm.emit("movl", Reg(dst), Reg(src))

    def emit_add(self, asm, reg, operand):
        asm.emit("addl3", Reg(reg), Reg(reg), operand)

    def emit_sub(self, asm, reg, operand):
        asm.emit("subl3", Reg(reg), Reg(reg), operand)

    # -- exotic emitters ---------------------------------------------------

    def emit_copy_exotic(self, asm: AsmProgram, op, binding: Binding):
        src_vn = vn_of(op.src)
        dst_vn = vn_of(op.dst)
        len_vn = vn_of(op.length)
        length_reg = self.materialize_any(asm, op.length)
        src_reg = self.materialize_any(asm, op.src, avoid=(length_reg,))
        dst_reg = self.materialize_any(asm, op.dst, avoid=(length_reg, src_reg))
        asm.emit(
            "movc3",
            Reg(length_reg),
            Reg(src_reg),
            Reg(dst_reg),
            comment=f"block copy via movc3 ({binding.language} binding)",
        )
        # Architected finals (the dedicated-register protocol).
        self.regs.clobber("r0", "r1", "r2", "r3")
        self.regs.set("r0", ("const", 0))
        self.regs.set("r1", vn_add(src_vn, len_vn))
        self.regs.set("r2", ("const", 0))
        self.regs.set("r3", vn_add(dst_vn, len_vn))

    def emit_clear_exotic(self, asm: AsmProgram, op: ir.BlockClear, binding: Binding):
        dst_vn = vn_of(op.dst)
        len_vn = vn_of(op.length)
        length_reg = self.materialize_any(asm, op.length)
        dst_reg = self.materialize_any(asm, op.dst, avoid=(length_reg,))
        self.check_fixed(binding, "srclen", 0)
        self.check_fixed(binding, "fill", 0)
        asm.emit(
            "movc5",
            Imm(0),
            Imm(0),
            Imm(0),
            Reg(length_reg),
            Reg(dst_reg),
            comment="block clear via movc5 (srclen = 0, fill = 0)",
        )
        self.regs.clobber("r0", "r1", "r2", "r3")
        self.regs.set("r0", ("const", 0))
        self.regs.set("r1", ("const", 0))
        self.regs.set("r2", ("const", 0))
        self.regs.set("r3", vn_add(dst_vn, len_vn))

    def emit_index_exotic(self, asm: AsmProgram, op: ir.StringIndex, binding: Binding):
        base_reg = self.materialize_any(asm, op.base)
        length_reg = self.materialize_any(asm, op.length, avoid=(base_reg,))
        char_reg = self.materialize_any(asm, op.char, avoid=(base_reg, length_reg))
        # prologue augment: save the start address.
        temp = self._pick_scratch(avoid=(base_reg, length_reg, char_reg))
        asm.emit("movl", Reg(temp), Reg(base_reg), comment="save start address")
        self.regs.set(temp, self.regs.known(base_reg))
        asm.emit("locc", Reg(char_reg), Reg(length_reg), Reg(base_reg))
        self.regs.clobber("r0", "r1")
        # epilogue augment: 1-based index from the located address.
        not_found = self.new_label("notfound")
        done = self.new_label("done")
        result = self._pick_scratch(
            avoid=(base_reg, length_reg, char_reg, temp)
        )
        asm.emit("beql", LabelRef(not_found), comment="Z set: not found")
        asm.emit("subl3", Reg(result), Reg("r1"), Reg(temp))
        asm.emit("incl", Reg(result), comment="index = address - start + 1")
        asm.emit("brb", LabelRef(done))
        asm.label(not_found)
        asm.emit("movl", Reg(result), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg(result))
        self.regs.clobber(result)

    def emit_equal_exotic(self, asm: AsmProgram, op: ir.StringEqual, binding: Binding):
        length_reg = self.materialize_any(asm, op.length)
        a_reg = self.materialize_any(asm, op.a, avoid=(length_reg,))
        b_reg = self.materialize_any(asm, op.b, avoid=(length_reg, a_reg))
        asm.emit("cmpc3", Reg(length_reg), Reg(a_reg), Reg(b_reg))
        self.regs.clobber("r0", "r1", "r3")
        equal = self.new_label("equal")
        done = self.new_label("done")
        result = self._pick_scratch(avoid=(length_reg, a_reg, b_reg))
        asm.emit("beql", LabelRef(equal))
        asm.emit("movl", Reg(result), Imm(0))
        asm.emit("brb", LabelRef(done))
        asm.label(equal)
        asm.emit("movl", Reg(result), Imm(1))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg(result))
        self.regs.clobber(result)

    # -- decomposed loops -------------------------------------------------

    def emit_move_decomposed(self, asm: AsmProgram, op: ir.StringMove):
        """Forward-only byte loop (strings never overlap)."""
        self.materialize_into(asm, op.src, "r5")
        self.materialize_into(asm, op.dst, "r6")
        self.materialize_into(asm, op.length, "r7")
        top = self.new_label("move")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("tstl", Reg("r7"))
        asm.emit("beql", LabelRef(done))
        asm.emit("movb", Reg("r8"), MemRef(Reg("r5")))
        asm.emit("movb", MemRef(Reg("r6")), Reg("r8"))
        asm.emit("incl", Reg("r5"))
        asm.emit("incl", Reg("r6"))
        asm.emit("decl", Reg("r7"))
        asm.emit("brb", LabelRef(top))
        asm.label(done)
        self.regs.clobber("r5", "r6", "r7", "r8")

    def emit_copy_decomposed(self, asm: AsmProgram, op: ir.BlockCopy):
        """Overlap-aware copy: direction chosen at run time (like PC2)."""
        self.materialize_into(asm, op.src, "r5")
        self.materialize_into(asm, op.dst, "r6")
        self.materialize_into(asm, op.length, "r7")
        backward = self.new_label("bwd")
        fwd_top = self.new_label("fwd")
        bwd_top = self.new_label("bwdloop")
        done = self.new_label("done")
        asm.emit("cmpl", Reg("r5"), Reg("r6"))
        asm.emit("blss", LabelRef(backward), comment="src < dst: copy high-to-low")
        asm.label(fwd_top)
        asm.emit("tstl", Reg("r7"))
        asm.emit("beql", LabelRef(done))
        asm.emit("movb", Reg("r8"), MemRef(Reg("r5")))
        asm.emit("movb", MemRef(Reg("r6")), Reg("r8"))
        asm.emit("incl", Reg("r5"))
        asm.emit("incl", Reg("r6"))
        asm.emit("decl", Reg("r7"))
        asm.emit("brb", LabelRef(fwd_top))
        asm.label(backward)
        asm.emit("addl3", Reg("r5"), Reg("r5"), Reg("r7"))
        asm.emit("addl3", Reg("r6"), Reg("r6"), Reg("r7"))
        asm.label(bwd_top)
        asm.emit("tstl", Reg("r7"))
        asm.emit("beql", LabelRef(done))
        asm.emit("decl", Reg("r5"))
        asm.emit("decl", Reg("r6"))
        asm.emit("movb", Reg("r8"), MemRef(Reg("r5")))
        asm.emit("movb", MemRef(Reg("r6")), Reg("r8"))
        asm.emit("decl", Reg("r7"))
        asm.emit("brb", LabelRef(bwd_top))
        asm.label(done)
        self.regs.clobber("r5", "r6", "r7", "r8")

    def emit_clear_decomposed(self, asm: AsmProgram, op: ir.BlockClear):
        self.materialize_into(asm, op.dst, "r6")
        self.materialize_into(asm, op.length, "r7")
        asm.emit("movl", Reg("r8"), Imm(0))
        top = self.new_label("clear")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("tstl", Reg("r7"))
        asm.emit("beql", LabelRef(done))
        asm.emit("movb", MemRef(Reg("r6")), Reg("r8"))
        asm.emit("incl", Reg("r6"))
        asm.emit("decl", Reg("r7"))
        asm.emit("brb", LabelRef(top))
        asm.label(done)
        self.regs.clobber("r6", "r7", "r8")

    def emit_index_decomposed(self, asm: AsmProgram, op: ir.StringIndex):
        self.materialize_into(asm, op.base, "r5")
        self.materialize_into(asm, op.length, "r6")
        self.materialize_into(asm, op.char, "r7")
        asm.emit("movl", Reg("r8"), Reg("r5"), comment="save start address")
        top = self.new_label("scan")
        found = self.new_label("found")
        not_found = self.new_label("notfound")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("tstl", Reg("r6"))
        asm.emit("beql", LabelRef(not_found))
        asm.emit("movb", Reg("r9"), MemRef(Reg("r5")))
        asm.emit("cmpl", Reg("r9"), Reg("r7"))
        asm.emit("beql", LabelRef(found))
        asm.emit("incl", Reg("r5"))
        asm.emit("decl", Reg("r6"))
        asm.emit("brb", LabelRef(top))
        asm.label(found)
        asm.emit("subl3", Reg("r9"), Reg("r5"), Reg("r8"))
        asm.emit("incl", Reg("r9"))
        asm.emit("brb", LabelRef(done))
        asm.label(not_found)
        asm.emit("movl", Reg("r9"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("r9"))
        self.regs.clobber("r5", "r6", "r7", "r8", "r9")

    def emit_equal_decomposed(self, asm: AsmProgram, op: ir.StringEqual):
        self.materialize_into(asm, op.a, "r5")
        self.materialize_into(asm, op.b, "r6")
        self.materialize_into(asm, op.length, "r7")
        top = self.new_label("cmp")
        equal = self.new_label("equal")
        not_equal = self.new_label("ne")
        done = self.new_label("done")
        asm.label(top)
        asm.emit("tstl", Reg("r7"))
        asm.emit("beql", LabelRef(equal))
        asm.emit("movb", Reg("r8"), MemRef(Reg("r5")))
        asm.emit("movb", Reg("r9"), MemRef(Reg("r6")))
        asm.emit("cmpl", Reg("r8"), Reg("r9"))
        asm.emit("bneq", LabelRef(not_equal))
        asm.emit("incl", Reg("r5"))
        asm.emit("incl", Reg("r6"))
        asm.emit("decl", Reg("r7"))
        asm.emit("brb", LabelRef(top))
        asm.label(equal)
        asm.emit("movl", Reg("r8"), Imm(1))
        asm.emit("brb", LabelRef(done))
        asm.label(not_equal)
        asm.emit("movl", Reg("r8"), Imm(0))
        asm.label(done)
        asm.emit("setres", ParamRef(op.result), Reg("r8"))
        self.regs.clobber("r5", "r6", "r7", "r8", "r9")
