"""Additional loop and local transformations for counting-loop alignment.

``countup_to_countdown`` reverses a counting direction (CLU iterates
``i = 0 .. limit``; the machines count a register down to zero);
``swap_increment_with_exit`` interchanges a pointer bump with a loop
exit, compensating the one post-loop read that sees the difference —
the step that reconciles VAX ``locc``'s test-then-advance scan with
Rigel's advance-then-test ``read()`` routine; ``shift_sub`` is the
algebraic identity the compensation leaves behind.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..dataflow.effects import MEM
from ..isdl import ast
from ..isdl.visitor import Path, node_at, remove_at, replace_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


@register
class ShiftSub(Transformation):
    """``(a + c) - b`` becomes ``(a - b) + c`` (pure operands)."""

    name = "shift_sub"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "-"
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "+",
            "needs '(a + c) - b'",
        )
        a, c, b = node.left.left, node.left.right, node.right
        for part in (a, c, b):
            self._require(ctx.expr_is_pure(part), "operands must be pure")
        new = ast.BinOp("+", ast.BinOp("-", a, b), c)
        return TransformResult(
            description=replace_at(ctx.description, path, new),
            note="rebalanced '(a + c) - b' to '(a - b) + c'",
        )


@register
class ShiftSubNeg(Transformation):
    """``(a - c) - b`` becomes ``(a - b) - c`` (pure operands)."""

    name = "shift_sub_neg"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "-"
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "-",
            "needs '(a - c) - b'",
        )
        a, c, b = node.left.left, node.left.right, node.right
        for part in (a, c, b):
            self._require(ctx.expr_is_pure(part), "operands must be pure")
        new = ast.BinOp("-", ast.BinOp("-", a, b), c)
        return TransformResult(
            description=replace_at(ctx.description, path, new),
            note="rebalanced '(a - c) - b' to '(a - b) - c'",
        )


@register
class SumOfSub(Transformation):
    """``(a - b) + b`` becomes ``a`` (pure ``b``)."""

    name = "sum_of_sub"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "+"
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "-"
            and node.left.right == node.right,
            "needs '(a - b) + b'",
        )
        self._require(ctx.expr_is_pure(node.right), "cancelled operand must be pure")
        return TransformResult(
            description=replace_at(ctx.description, path, node.left.left),
            note="cancelled '- b + b'",
        )


@register
class CountupToCountdown(Transformation):
    """Reverse a count-up loop to count its limit register down.

    Parameters: ``var`` (the counter), ``limit`` (the bound variable).
    Guards (whole description): ``var`` is initialized to 0 once and
    otherwise only incremented by 1; ``limit`` is defined only by
    ``input``; ``var`` is read only in the exact test ``var = limit``
    (or ``limit = var``) and in its own increments; ``limit`` is read
    only in that test.  Both must be unbounded integers.

    Rewrite: the test becomes ``limit = 0``; each increment gets a
    paired ``limit <- limit - 1``.  Invariant: at every statement
    boundary ``limit_current = limit_original - var``, so
    ``var = limit_original`` iff ``limit_current = 0``.  The counter's
    init/increment chain is then dead and removable.
    """

    name = "countup_to_countdown"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        var = params.get("var")
        limit = params.get("limit")
        self._require(
            bool(var) and bool(limit),
            "countup_to_countdown needs var=..., limit=...",
        )
        description = ctx.description
        for name in (var, limit):
            decl = description.register(name)
            self._require(
                isinstance(decl.width, ast.TypeWidth)
                and decl.width.typename == "integer",
                f"{name!r} must be an unbounded integer",
            )
        init_path: Optional[Path] = None
        increment_paths: List[Path] = []
        increment_expr = ast.BinOp("+", ast.Var(var), ast.Const(1))
        for def_path, def_stmt in ctx.defs_of_global(var):
            self._require(
                isinstance(def_stmt, ast.Assign),
                f"{var!r} may not be an input operand",
            )
            if def_stmt.expr == ast.Const(0):
                self._require(init_path is None, f"{var!r} has two inits")
                init_path = def_path
            elif def_stmt.expr == increment_expr:
                increment_paths.append(def_path)
            else:
                raise TransformError(
                    f"definition of {var!r} is neither init nor increment"
                )
        self._require(init_path is not None, f"{var!r} has no init to 0")
        from .loops import _require_invariant_before

        _require_invariant_before(ctx, limit, init_path, self._require)
        tests = (
            ast.BinOp("=", ast.Var(var), ast.Var(limit)),
            ast.BinOp("=", ast.Var(limit), ast.Var(var)),
        )
        test_paths = [
            sub_path for sub_path, sub in walk(description) if sub in tests
        ]
        self._require(bool(test_paths), f"no test '{var} = {limit}' found")
        allowed_limit_positions = set()
        for test_path in test_paths:
            allowed_limit_positions.add(test_path + (("left", None),))
            allowed_limit_positions.add(test_path + (("right", None),))
        # Other uses of var are fine (it keeps counting up); but every
        # read of limit must be one of the rewritten tests, since limit
        # starts changing.
        for use_path in ctx.uses_of_global(limit):
            self._require(
                use_path in allowed_limit_positions,
                f"{limit!r} is read outside the test",
            )
        # Rewrite tests, then insert paired decrements (bottom-up).
        new_test = ast.BinOp("=", ast.Var(limit), ast.Const(0))
        for test_path in test_paths:
            description = replace_at(description, test_path, new_test)

        def sort_key(p: Path):
            return tuple(
                (step[0], -1 if step[1] is None else step[1]) for step in p
            )

        from ..isdl.visitor import insert_at

        decrement = ast.Assign(
            target=ast.Var(limit),
            expr=ast.BinOp("-", ast.Var(limit), ast.Const(1)),
        )
        insertions = [
            inc_path[:-1] + ((inc_path[-1][0], inc_path[-1][1] + 1),)
            for inc_path in increment_paths
        ]
        for insert_path in sorted(insertions, key=sort_key, reverse=True):
            description = insert_at(description, insert_path, decrement)
        return TransformResult(
            description=description,
            note=f"reversed count-up on {var} into countdown on {limit}",
        )


def check_two_exit_flag_discipline(
    ctx: Context, loop: ast.Repeat, flag: str
) -> Tuple[int, int]:
    """Verify the two-exit flag discipline shared by several transforms.

    The loop's top-level exits must be exactly two: the first statement
    (``exit_when C``) and a later ``exit_when flag``; the only flag
    write in the loop is the statement directly before the flag exit;
    tail statements do not write the flag; and nothing inside contains a
    deeper escaping exit.  Returns the two exit indices.
    """
    from .motion import has_escaping_exit

    exits = [
        (position, stmt)
        for position, stmt in enumerate(loop.body)
        if isinstance(stmt, ast.ExitWhen)
    ]
    if len(exits) != 2:
        raise TransformError("loop must have exactly two top-level exits")
    (first_pos, _first), (second_pos, second) = exits
    if first_pos != 0:
        raise TransformError("the first exit must open the loop body")
    if second.cond != ast.Var(flag):
        raise TransformError(f"the second exit must test {flag!r}")
    for stmt in loop.body:
        if not isinstance(stmt, ast.ExitWhen) and has_escaping_exit(stmt):
            raise TransformError("loop contains nested escaping exits")
    middle = loop.body[1:second_pos]
    if not any(
        isinstance(stmt, ast.Assign) and stmt.target == ast.Var(flag)
        for stmt in middle
    ):
        raise TransformError(
            "the flag must be assigned between the two exits"
        )
    for stmt in loop.body[second_pos + 1:]:
        if flag in ctx.effects.stmt_effects(stmt).writes:
            raise TransformError("tail statements may not write the flag")
    return first_pos, second_pos


@register
class SwapIncrementWithExit(Transformation):
    """Interchange ``p <- p + 1`` with the adjacent flag exit, compensating.

    Applied at the increment's path, with ``direction="after"`` (move
    the increment from before ``exit_when flag`` to after it) or
    ``"before"`` (the reverse).  On the flag-exit path the increment's
    execution changes, so the unique post-loop read of ``p`` — which
    must sit in the flag branch of the discriminating ``if`` directly
    after the loop — is rewritten ``p`` ↦ ``p + 1`` (or the existing
    ``p + 1`` back to ``p``).

    Requirements: the loop satisfies the two-exit flag discipline
    (init-to-0 before the loop, one flag write, see
    :func:`check_two_exit_flag_discipline`); the discriminator is
    ``if flag then A else B`` directly after the loop; ``p`` is read
    exactly once after the loop, inside ``A``; ``p`` is dead after the
    discriminator; the flag condition and assignment do not read ``p``.
    """

    name = "swap_increment_with_exit"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        direction = params.get("direction", "after")
        self._require(
            direction in ("after", "before"),
            "direction must be 'after' or 'before'",
        )
        increment = ctx.node(path)
        self._require(
            isinstance(increment, ast.Assign)
            and isinstance(increment.target, ast.Var),
            "needs an increment assignment",
        )
        pointer = increment.target.name
        self._require(
            increment.expr == ast.BinOp("+", ast.Var(pointer), ast.Const(1)),
            "needs 'p <- p + 1'",
        )
        loop, loop_path = ctx.enclosing_repeat(path)
        self._require(
            len(path) == len(loop_path) + 1,
            "the increment must be a top-level loop statement",
        )
        inc_index = path[-1][1]
        # Locate the adjacent flag exit.
        neighbour_index = inc_index + 1 if direction == "after" else inc_index - 1
        self._require(
            0 <= neighbour_index < len(loop.body),
            "no adjacent statement in that direction",
        )
        neighbour = loop.body[neighbour_index]
        self._require(
            isinstance(neighbour, ast.ExitWhen)
            and isinstance(neighbour.cond, ast.Var),
            "the adjacent statement must be 'exit_when flag'",
        )
        flag = neighbour.cond.name
        self._require(flag != pointer, "flag and pointer must differ")
        check_two_exit_flag_discipline(ctx, loop, flag)

        # The discriminator if directly after the loop, preceded by init.
        parent_path, field, loop_index = ctx.stmt_position(loop_path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        self._require(
            loop_index >= 1
            and isinstance(siblings[loop_index - 1], ast.Assign)
            and siblings[loop_index - 1].target == ast.Var(flag)
            and siblings[loop_index - 1].expr == ast.Const(0),
            f"'{flag} <- 0' must directly precede the loop",
        )
        self._require(
            loop_index + 1 < len(siblings)
            and isinstance(siblings[loop_index + 1], ast.If),
            "a discriminating if must directly follow the loop",
        )
        discriminator = siblings[loop_index + 1]
        disc_path = parent_path + ((field, loop_index + 1),)
        if discriminator.cond == ast.Var(flag):
            flag_field = "then"
        elif discriminator.cond == ast.UnOp("not", ast.Var(flag)):
            flag_field = "els"
        else:
            raise TransformError("the if must test the flag (or its negation)")

        # p reads after the loop: exactly one, inside the flag branch.
        reads_in_flag_branch: List[Path] = []
        reads_elsewhere = 0
        for branch_field, branch in (("then", discriminator.then), ("els", discriminator.els)):
            for idx, stmt in enumerate(branch):
                stmt_path = disc_path + ((branch_field, idx),)
                for sub_path, sub in walk(stmt, stmt_path):
                    if isinstance(sub, ast.Var) and sub.name == pointer:
                        if sub_path[-1] == ("target", None):
                            raise TransformError(
                                "pointer is written after the loop"
                            )
                        if branch_field == flag_field:
                            reads_in_flag_branch.append(sub_path)
                        else:
                            reads_elsewhere += 1
        for later_index in range(loop_index + 2, len(siblings)):
            for _, sub in walk(siblings[later_index]):
                if isinstance(sub, ast.Var) and sub.name == pointer:
                    reads_elsewhere += 1
        self._require(
            reads_elsewhere == 0,
            "pointer is read outside the flag branch after the loop",
        )
        self._require(
            len(reads_in_flag_branch) == 1,
            "pointer must be read exactly once in the flag branch",
        )
        read_path = reads_in_flag_branch[0]
        # The increment crosses only the exit itself (adjacency is
        # enforced above), and the exit's condition is the bare flag, so
        # in-loop evaluation order around the flag computation is
        # untouched; no further interference checks are needed.

        description = ctx.description
        if direction == "after":
            # Increment stops executing on the flag exit: the post-loop
            # read of p must become p + 1.
            compensation = ast.BinOp("+", ast.Var(pointer), ast.Const(1))
        else:
            # Increment starts executing on the flag exit: the post-loop
            # read sees one more than before, so it becomes p - 1.
            compensation = ast.BinOp("-", ast.Var(pointer), ast.Const(1))
        description = replace_at(description, read_path, compensation)
        # Swap the two loop statements.
        lo, hi = sorted((inc_index, neighbour_index))
        new_body = (
            loop.body[:lo]
            + (loop.body[hi], loop.body[lo])
            + loop.body[hi + 1:]
        )
        new_loop = dataclasses.replace(loop, body=new_body)
        description = replace_at(description, loop_path, new_loop)
        return TransformResult(
            description=description,
            note=f"interchanged {pointer} increment with the flag exit",
        )
