"""Registry of the transformation library.

Transformations register themselves by class decorator; the registry
indexes them by name and by the paper's seven categories.  The engine
looks transformations up by name, and the reporting layer prints library
statistics (the paper's implementation had 75 transformations — the test
suite checks this library is in the same league and covers all seven
categories).
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import CATEGORIES, Transformation

_REGISTRY: Dict[str, Transformation] = {}


def register(cls: Type[Transformation]) -> Type[Transformation]:
    """Class decorator adding one transformation to the library."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.category not in CATEGORIES:
        raise ValueError(f"{cls.__name__} has unknown category {cls.category!r}")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate transformation name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get(name: str) -> Transformation:
    """Look up a transformation by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown transformation {name!r}; known: {sorted(_REGISTRY)}"
        )


def all_transformations() -> List[Transformation]:
    return list(_REGISTRY.values())


def by_category() -> Dict[str, List[Transformation]]:
    result: Dict[str, List[Transformation]] = {cat: [] for cat in CATEGORIES}
    for transformation in _REGISTRY.values():
        result[transformation.category].append(transformation)
    return result


def library_size() -> int:
    return len(_REGISTRY)
