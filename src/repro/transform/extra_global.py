"""Additional global transformations: substitution and copy plumbing.

These came out of the same need the paper reports in §5 — "many of the
transformations are at too low a level and thus the user gets involved
in a mass of detail": aligning two descriptions takes a swarm of small
copy/substitution steps around the big loop transformations.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, remove_at, replace_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .loops import declare_register
from .registry import register


@register
class HoistCall(Transformation):
    """Extract a routine call out of a larger expression.

    ``found <- (ch - read()) = 0`` becomes ``t <- read();
    found <- (ch - t) = 0``.  Parameters: ``temp`` (fresh name).  The
    call must sit inside a simple statement (assign / exit_when /
    output / if-condition is **not** supported — the call would change
    evaluation count), and everything evaluated before the call in the
    original order must be pure, so evaluating the call first is
    unobservable.
    """

    name = "hoist_call"
    category = "routine-structuring"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        temp = params.get("temp")
        self._require(bool(temp), "hoist_call needs temp=...")
        node = ctx.node(path)
        self._require(isinstance(node, ast.Call), "needs a call expression")
        self._require(
            not ctx.description.has_register(temp)
            and all(r.name != temp for r in ctx.description.routines()),
            f"{temp!r} is not a fresh name",
        )
        # Find the statement containing the call.
        stmt_path: Optional[Path] = None
        for length in range(len(path), 0, -1):
            candidate = node_at(ctx.description, path[:length])
            if isinstance(candidate, (ast.Assign, ast.ExitWhen, ast.Output)):
                stmt_path = path[:length]
                break
            if isinstance(candidate, (ast.If, ast.Repeat)):
                raise TransformError(
                    "cannot hoist a call out of a compound statement's "
                    "condition (evaluation count would change)"
                )
        self._require(stmt_path is not None, "call is not inside a simple statement")
        stmt = node_at(ctx.description, stmt_path)
        routine = ctx.description.routine(node.name)
        # Everything evaluated before the call (left-to-right order) must
        # be pure, and the call's writes must not touch what that prefix
        # reads — the prefix re-evaluates after the hoisted call.
        from .extra_local import _eval_prefix_info

        found, prefix_pure, prefix_reads = _eval_prefix_info(
            ctx, stmt, stmt_path, path
        )
        self._require(
            found and prefix_pure,
            "something impure is evaluated before the call",
        )
        call_writes = ctx.effects.routine_effects(node.name).writes
        self._require(
            not (call_writes & prefix_reads),
            "the call writes something the preceding operands read",
        )
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.MemRead):
            addr_effects = ctx.effects.expr_effects(stmt.target.addr)
            call_effects = ctx.effects.expr_effects(node)
            self._require(
                not call_effects.conflicts_with(addr_effects),
                "call effects conflict with the target address computation",
            )
        width = routine.width if routine.width is not None else ast.TypeWidth("integer")
        description = replace_at(ctx.description, path, ast.Var(temp))
        hoisted = ast.Assign(target=ast.Var(temp), expr=node)
        description = insert_at(description, stmt_path, hoisted)
        description = declare_register(
            description,
            ast.RegDecl(name=temp, width=width, comment="hoisted call result"),
        )
        return TransformResult(
            description=description,
            note=f"hoisted call to {node.name} into {temp}",
        )


@register
class ForwardSubstitute(Transformation):
    """Replace a variable use with its defining expression.

    The definition ``t <- E`` must be the statement *directly before*
    the simple statement containing the use, ``E`` must be pure, nothing
    in the using statement evaluated before the use may write what ``E``
    reads, and this must be ``t``'s only read (so the definition can
    later be removed as dead).  Applied at the use's path.
    """

    name = "forward_substitute"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Var), "needs a variable use")
        if path and path[-1] == ("target", None):
            raise TransformError("cannot substitute into an assignment target")
        name = node.name
        # Find the simple statement containing the use.
        stmt_path: Optional[Path] = None
        for length in range(len(path), 0, -1):
            candidate = node_at(ctx.description, path[:length])
            if isinstance(
                candidate, (ast.Assign, ast.ExitWhen, ast.Output, ast.If, ast.Assert)
            ):
                stmt_path = path[:length]
                break
        self._require(stmt_path is not None, "use is not inside a statement")
        field, index = stmt_path[-1]
        self._require(
            index is not None and index > 0,
            "the defining statement must directly precede the use",
        )
        if isinstance(node_at(ctx.description, stmt_path), ast.If):
            # Only the condition may use it (branches execute later).
            cond_prefix = stmt_path + (("cond", None),)
            self._require(
                path[: len(cond_prefix)] == cond_prefix,
                "substitution into an if is only allowed in its condition",
            )
        def_path = stmt_path[:-1] + ((field, index - 1),)
        definition = node_at(ctx.description, def_path)
        self._require(
            isinstance(definition, ast.Assign)
            and definition.target == ast.Var(name),
            f"statement before the use does not define {name!r}",
        )
        self._require(
            ctx.expr_is_pure(definition.expr),
            "defining expression has side effects",
        )
        uses = ctx.uses_of_global(name)
        self._require(
            uses == [path],
            f"{name!r} has other reads; substitution would not free it",
        )
        # Nothing evaluated before the use within its statement may write
        # what E reads.  Conservative: the containing statement may not
        # write anything E reads (other than via this substitution).
        expr_reads = ctx.effects.expr_effects(definition.expr).reads
        stmt = node_at(ctx.description, stmt_path)
        stmt_writes = ctx.effects.stmt_effects(stmt).writes
        self._require(
            not (expr_reads & stmt_writes),
            "the using statement writes something the expression reads",
        )
        description = replace_at(ctx.description, path, definition.expr)
        description = remove_at(description, def_path)
        return TransformResult(
            description=description,
            note=f"forward-substituted {name}",
        )


@register
class RetargetAssignment(Transformation):
    """Collapse ``y <- E; …; x <- y`` into ``x <- E; …``.

    Applied at the path of the final copy ``x <- y``.  Requirements:
    the definition ``y <- E`` is in the same statement list; the
    intervening statements are simple assignments that neither read nor
    write ``x`` or ``y``; ``y`` has no other reads or writes anywhere;
    and ``x`` is not read between the two statements.  After the
    rewrite, ``y`` is fully gone from the code (its declaration can be
    dropped with ``eliminate_dead_variable``).
    """

    name = "retarget_assignment"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        copy = ctx.node(path)
        self._require(
            isinstance(copy, ast.Assign)
            and isinstance(copy.target, ast.Var)
            and isinstance(copy.expr, ast.Var),
            "needs a copy assignment 'x <- y'",
        )
        x_name = copy.target.name
        y_name = copy.expr.name
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        def_index = None
        for candidate in range(index - 1, -1, -1):
            stmt = siblings[candidate]
            if isinstance(stmt, ast.Assign) and stmt.target == ast.Var(y_name):
                def_index = candidate
                break
            self._require(
                isinstance(stmt, ast.Assign),
                "intervening statements must be simple assignments",
            )
            effects = ctx.effects.stmt_effects(stmt)
            self._require(
                x_name not in effects.reads | effects.writes
                and y_name not in effects.reads | effects.writes,
                "intervening statement touches x or y",
            )
        self._require(def_index is not None, f"no definition of {y_name!r} found")
        definition = siblings[def_index]
        # y must have no other uses or defs anywhere.
        self._require(
            len(ctx.defs_of_global(y_name)) == 1,
            f"{y_name!r} has multiple definitions",
        )
        y_uses = ctx.uses_of_global(y_name)
        copy_use_path = path + (("expr", None),)
        self._require(
            y_uses == [copy_use_path],
            f"{y_name!r} has other reads",
        )
        new_def = dataclasses.replace(definition, target=ast.Var(x_name))
        new_siblings = (
            siblings[:def_index]
            + (new_def,)
            + siblings[def_index + 1: index]
            + siblings[index + 1:]
        )
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note=f"retargeted definition of {y_name} to {x_name}",
        )


@register
class CopyOperandToRegister(Transformation):
    """Insert ``new <- operand`` after ``input`` and redirect all uses.

    Models an instruction that loads an operand field into a working
    register (VAX ``locc`` moves its length operand into ``r0``).  On
    the operator side this materializes the same structure so the two
    descriptions can match.  Parameters: ``operand``, ``new``, and
    optionally ``bits`` for the new register's width (default: an
    abstract integer).

    Every read of the operand *and every non-input write to it* is
    redirected to the new register: after ``new <- operand``, the
    operand's register is only the incoming operand field, and all
    working arithmetic (e.g. a length counting down) happens in the
    working register — exactly the machine's protocol.
    """

    name = "copy_operand_to_register"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        operand = params.get("operand")
        new = params.get("new")
        self._require(
            bool(operand) and bool(new),
            "copy_operand_to_register needs operand=..., new=...",
        )
        self._require(
            not ctx.description.has_register(new)
            and all(r.name != new for r in ctx.description.routines()),
            f"{new!r} is not a fresh name",
        )
        def_paths = []
        for def_path, def_stmt in ctx.defs_of_global(operand):
            if isinstance(def_stmt, ast.Input):
                continue
            self._require(
                isinstance(def_stmt, ast.Assign),
                f"unexpected definition of {operand!r}",
            )
            def_paths.append(def_path)
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        input_index = None
        for idx, stmt in enumerate(entry.body):
            if isinstance(stmt, ast.Input):
                input_index = idx
                break
        self._require(input_index is not None, "entry has no input")
        description = ctx.description
        for use_path in ctx.uses_of_global(operand):
            description = replace_at(description, use_path, ast.Var(new))
        for def_path in def_paths:
            assign = node_at(description, def_path)
            description = replace_at(
                description,
                def_path,
                dataclasses.replace(assign, target=ast.Var(new)),
            )
        copy_stmt = ast.Assign(target=ast.Var(new), expr=ast.Var(operand))
        description = insert_at(
            description, entry_path + (("body", input_index + 1),), copy_stmt
        )
        bits = params.get("bits")
        width = ast.BitWidth(bits - 1, 0) if bits else ast.TypeWidth("integer")
        description = declare_register(
            description,
            ast.RegDecl(name=new, width=width, comment="working register"),
        )
        return TransformResult(
            description=description,
            note=f"copied operand {operand} into working register {new}",
        )
