"""Further local and loop transformations used by the move analyses.

* ``hoist_memread`` — name a memory read so access routines can be
  extracted (the cmpsb/Pascal compare alignment),
* ``combine_increments`` / ``remove_self_assign`` — cancel the coding
  constraint adjustment against the IBM 370 mvc's built-in "+1"
  iteration count (§4.2),
* ``remove_immediate_exit_loop`` — delete a loop whose first exit is
  provably true on entry (how fixing ``srclen = 0`` kills movc5's move
  phase, leaving pure fill),
* ``remove_redundant_guard`` — drop a ``if (x > 0)`` wrapper around a
  loop that already exits on ``x = 0`` (PL/1's guarded string move),
* ``reorder_inputs`` — permute the declared operand order; operands are
  named, so this is pure interface bookkeeping for the matcher,
* ``select_forward_copy`` — the §7 extension step: under a discharged
  no-overlap language fact, pick movc3's forward branch.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..constraints import LanguageFact
from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, remove_at, replace_at, splice_at, walk
from ..semantics.values import apply_binop, apply_unop, truth
from .base import Context, Transformation, TransformError, TransformResult
from .loops import declare_register
from .registry import register


@register
class HoistMemread(Transformation):
    """Extract ``Mb[addr]`` out of a larger expression into a temp.

    ``eq <- (Mb[a] - Mb[b]) = 0`` becomes ``t <- Mb[a];
    eq <- (t - Mb[b]) = 0``.  Everything evaluated before the read in
    the original order must be pure, and the read's address expression
    must be pure.  Parameters: ``temp``.
    """

    name = "hoist_memread"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        temp = params.get("temp")
        self._require(bool(temp), "hoist_memread needs temp=...")
        node = ctx.node(path)
        self._require(isinstance(node, ast.MemRead), "needs a memory read")
        self._require(
            not ctx.description.has_register(temp)
            and all(r.name != temp for r in ctx.description.routines()),
            f"{temp!r} is not a fresh name",
        )
        self._require(ctx.expr_is_pure(node.addr), "address must be pure")
        # Find the containing simple statement.
        stmt_path: Optional[Path] = None
        for length in range(len(path), 0, -1):
            candidate = node_at(ctx.description, path[:length])
            if isinstance(candidate, (ast.Assign, ast.ExitWhen, ast.Output)):
                stmt_path = path[:length]
                break
            if isinstance(candidate, (ast.If, ast.Repeat)):
                raise TransformError(
                    "cannot hoist out of a compound statement's condition"
                )
        self._require(stmt_path is not None, "read is not inside a simple statement")
        stmt = node_at(ctx.description, stmt_path)
        self._require(
            _eval_prefix_pure(ctx, stmt, stmt_path, path),
            "something impure is evaluated before the read",
        )
        description = replace_at(ctx.description, path, ast.Var(temp))
        description = insert_at(
            description,
            stmt_path,
            ast.Assign(target=ast.Var(temp), expr=node),
        )
        description = declare_register(
            description,
            ast.RegDecl(
                name=temp,
                width=ast.TypeWidth("character"),
                comment="named memory read",
            ),
        )
        return TransformResult(
            description=description, note=f"hoisted memory read into {temp}"
        )


def _eval_prefix_info(
    ctx: Context, stmt: ast.Stmt, stmt_path: Path, target_path: Path
):
    """Evaluation-order prefix analysis for hoisting.

    Walks the statement's expressions in evaluation order (left to
    right, operands before operators) up to ``target_path`` and returns
    ``(found, prefix_pure, prefix_reads)``: whether the target was
    reached, whether everything evaluated before it is pure, and the
    set of locations the prefix reads (a hoisted computation's writes
    must not touch them — the prefix will re-evaluate after the hoist).
    """
    impure_before = [False]
    found = [False]
    reads = set()

    def note_reads(expr: ast.Expr) -> None:
        effects = ctx.effects.expr_effects(expr)
        reads.update(effects.reads)

    def visit(expr: ast.Expr, path: Path) -> None:
        if found[0]:
            return
        if path == target_path:
            found[0] = True
            return
        if isinstance(expr, ast.Const):
            return
        if isinstance(expr, ast.Var):
            reads.add(expr.name)
            return
        if isinstance(expr, ast.MemRead):
            visit(expr.addr, path + (("addr", None),))
            if not found[0]:
                note_reads(expr)
            return
        if isinstance(expr, ast.Call):
            for index, arg in enumerate(expr.args):
                visit(arg, path + (("args", index),))
            if not found[0]:
                if not ctx.effects.routine_effects(expr.name).pure:
                    impure_before[0] = True
                note_reads(expr)
            return
        if isinstance(expr, ast.BinOp):
            visit(expr.left, path + (("left", None),))
            visit(expr.right, path + (("right", None),))
            return
        if isinstance(expr, ast.UnOp):
            visit(expr.operand, path + (("operand", None),))
            return

    if isinstance(stmt, ast.Assign):
        visit(stmt.expr, stmt_path + (("expr", None),))
    elif isinstance(stmt, (ast.ExitWhen, ast.Assert)):
        visit(stmt.cond, stmt_path + (("cond", None),))
    elif isinstance(stmt, ast.Output):
        for index, expr in enumerate(stmt.exprs):
            visit(expr, stmt_path + (("exprs", index),))
    return found[0], not impure_before[0], frozenset(reads)


def _eval_prefix_pure(
    ctx: Context, stmt: ast.Stmt, stmt_path: Path, target_path: Path
) -> bool:
    """True when everything evaluated before ``target_path`` is pure."""
    found, pure, _ = _eval_prefix_info(ctx, stmt, stmt_path, target_path)
    return found and pure


def _increment_of(stmt: ast.Stmt) -> Optional[Tuple[str, int]]:
    """Decompose ``x <- x + c`` / ``x <- x - c`` into (name, signed c)."""
    if not isinstance(stmt, ast.Assign) or not isinstance(stmt.target, ast.Var):
        return None
    name = stmt.target.name
    expr = stmt.expr
    if (
        isinstance(expr, ast.BinOp)
        and expr.op in ("+", "-")
        and expr.left == ast.Var(name)
        and isinstance(expr.right, ast.Const)
    ):
        delta = expr.right.value if expr.op == "+" else -expr.right.value
        return name, delta
    return None


@register
class CombineIncrements(Transformation):
    """``x <- x + a; x <- x + b`` becomes ``x <- x + (a + b)``.

    Valid for fixed-width registers too: modular addition composes.
    Negative results are rendered with ``-``; a zero result leaves
    ``x <- x + 0`` for ``add_zero``/``remove_self_assign`` to finish.
    """

    name = "combine_increments"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        self._require(index + 1 < len(siblings), "no following statement")
        first = _increment_of(siblings[index])
        second = _increment_of(siblings[index + 1])
        self._require(
            first is not None and second is not None and first[0] == second[0],
            "needs two adjacent increments of the same variable",
        )
        name = first[0]
        total = first[1] + second[1]
        if total >= 0:
            expr: ast.Expr = ast.BinOp("+", ast.Var(name), ast.Const(total))
        else:
            expr = ast.BinOp("-", ast.Var(name), ast.Const(-total))
        combined = ast.Assign(target=ast.Var(name), expr=expr)
        new_siblings = siblings[:index] + (combined,) + siblings[index + 2:]
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note=f"combined increments of {name} (net {total:+d})",
        )


@register
class RemoveSelfAssign(Transformation):
    """Delete ``x <- x`` (re-storing a register value is the identity)."""

    name = "remove_self_assign"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.Assign)
            and isinstance(node.target, ast.Var)
            and node.expr == ast.Var(node.target.name),
            "needs 'x <- x'",
        )
        return TransformResult(
            description=remove_at(ctx.description, path),
            note=f"removed self-assignment of {node.target.name}",
        )


def _fold_with_copies(expr: ast.Expr, values) -> Optional[int]:
    """Evaluate ``expr`` using constant copies, or None if not constant."""
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Var):
        value = values.get(expr.name)
        return value if isinstance(value, int) else None
    if isinstance(expr, ast.BinOp):
        left = _fold_with_copies(expr.left, values)
        right = _fold_with_copies(expr.right, values)
        if left is None or right is None:
            return None
        return apply_binop(expr.op, left, right)
    if isinstance(expr, ast.UnOp):
        operand = _fold_with_copies(expr.operand, values)
        if operand is None:
            return None
        return apply_unop(expr.op, operand)
    return None


@register
class RemoveImmediateExitLoop(Transformation):
    """Delete a loop whose opening exit condition is true on entry.

    The loop's first statement must be ``exit_when C`` with ``C``
    foldable to a nonzero constant under the copies available *before*
    the loop (entry path, not the back edge): the loop then exits on its
    first test without executing anything else.  ``C`` must be pure.
    """

    name = "remove_immediate_exit_loop"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Repeat), "needs a repeat loop")
        self._require(
            bool(node.body) and isinstance(node.body[0], ast.ExitWhen),
            "loop must open with exit_when",
        )
        exit_stmt = node.body[0]
        self._require(ctx.expr_is_pure(exit_stmt.cond), "condition must be pure")
        parent_path, field, index = ctx.stmt_position(path)
        self._require(index >= 1, "loop must have a preceding statement")
        routine, _ = ctx.enclosing_routine(path)
        cfg = ctx.cfg(routine.name)
        prev_path = parent_path + ((field, index - 1),)
        self._require(
            prev_path in cfg.by_path,
            "preceding statement must be a simple statement",
        )
        prev_node = cfg.by_path[prev_path]
        copies = ctx.copies(routine.name)
        values = {
            copy.dst: copy.src
            for copy in copies.available_out(prev_node)
            if isinstance(copy.src, int)
        }
        folded = _fold_with_copies(exit_stmt.cond, values)
        self._require(
            folded is not None and truth(folded),
            "exit condition is not provably true on loop entry",
        )
        return TransformResult(
            description=remove_at(ctx.description, path),
            note="removed loop that exits immediately on entry",
        )


@register
class RemoveRedundantGuard(Transformation):
    """Drop ``if (x > 0) then LOOP end_if`` when the loop self-guards.

    Requirements: the ``if`` has no else; its body is a single
    ``repeat`` whose first statement is ``exit_when C`` with ``C``
    either ``x = 0`` or ``i = x`` where ``i <- 0`` is one of the two
    directly preceding statements; and ``assert (x >= 0)`` is also
    among those two statements.  With ``x >= 0``, the guard being false
    means ``x = 0``, and the unguarded loop then exits on its first
    (pure) test with no effects — so the guard is redundant.
    """

    name = "remove_redundant_guard"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.If) and not node.els, "needs an if without else"
        )
        cond = node.cond
        self._require(
            isinstance(cond, ast.BinOp)
            and cond.op == ">"
            and isinstance(cond.left, ast.Var)
            and cond.right == ast.Const(0),
            "guard must be 'x > 0'",
        )
        name = cond.left.name
        self._require(
            len(node.then) == 1 and isinstance(node.then[0], ast.Repeat),
            "guard body must be a single loop",
        )
        loop = node.then[0]
        self._require(
            bool(loop.body) and isinstance(loop.body[0], ast.ExitWhen),
            "loop must open with an exit_when",
        )
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        preceding = siblings[max(0, index - 2): index]
        premise = ast.Assert(
            cond=ast.BinOp(">=", ast.Var(name), ast.Const(0))
        )
        from ..isdl.visitor import strip_comments

        self._require(
            any(
                strip_comments(stmt) == premise for stmt in preceding
            ),
            f"needs an adjacent 'assert ({name} >= 0)'",
        )
        exit_cond = loop.body[0].cond
        direct = ast.BinOp("=", ast.Var(name), ast.Const(0))
        if strip_comments(exit_cond) != direct:
            # Accept 'i = x' with an adjacent 'i <- 0'.
            ok = (
                isinstance(exit_cond, ast.BinOp)
                and exit_cond.op == "="
                and isinstance(exit_cond.left, ast.Var)
                and exit_cond.right == ast.Var(name)
                and any(
                    isinstance(stmt, ast.Assign)
                    and stmt.target == ast.Var(exit_cond.left.name)
                    and stmt.expr == ast.Const(0)
                    for stmt in preceding
                )
            )
            self._require(
                ok,
                "loop must open with 'exit_when (x = 0)' or "
                "'exit_when (i = x)' with an adjacent 'i <- 0'",
            )
        return TransformResult(
            description=splice_at(ctx.description, path, node.then),
            note=f"removed redundant guard on {name}",
        )


@register
class ReorderInputs(Transformation):
    """Permute the entry routine's declared operand order.

    Operands are passed by name, so this changes nothing semantically;
    it only aligns the positional operand binding the matcher builds.
    Parameters: ``order`` — the full list of operand names in their new
    order.
    """

    name = "reorder_inputs"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        order = tuple(params.get("order") or ())
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        for index, stmt in enumerate(entry.body):
            if isinstance(stmt, ast.Input):
                self._require(
                    sorted(order) == sorted(stmt.names),
                    "order must be a permutation of the current operands",
                )
                new_input = dataclasses.replace(stmt, names=order)
                return TransformResult(
                    description=replace_at(
                        ctx.description,
                        entry_path + (("body", index),),
                        new_input,
                    ),
                    note="reordered declared operands",
                )
        raise TransformError("entry routine has no input statement")


@register
class SelectForwardCopy(Transformation):
    """Resolve movc3's direction branch under a no-overlap fact (§7).

    The statement must be ``if (a < b) then BACKWARD else FORWARD`` where
    both branches write memory through moving pointers.  Without overlap
    the two branches implement the same memory function, so the forward
    branch can be selected unconditionally.  This step is only valid
    when a discharged ``no-overlap`` :class:`LanguageFact` is supplied
    via ``language_facts=`` — stock EXTRA cannot justify it, which is
    exactly the §4.3 failure.

    The fact is a meta-level theorem about the source language, not
    something the transformation system can check; the differential
    verifier (run on non-overlapping scenarios) validates the result
    empirically.
    """

    name = "select_forward_copy"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        facts = params.get("language_facts") or ()
        self._require(
            any(
                isinstance(fact, LanguageFact) and fact.name == "no-overlap"
                for fact in facts
            ),
            "select_forward_copy requires the no-overlap language fact",
        )
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            isinstance(node.cond, ast.BinOp)
            and node.cond.op in ("<", ">", "<=", ">=")
            and isinstance(node.cond.left, ast.Var)
            and isinstance(node.cond.right, ast.Var),
            "condition must compare two address registers",
        )
        self._require(bool(node.then) and bool(node.els), "needs both branches")
        for branch in (node.then, node.els):
            writes_memory = any(
                isinstance(sub, ast.Assign) and isinstance(sub.target, ast.MemRead)
                for stmt in branch
                for _, sub in walk(stmt)
            )
            self._require(writes_memory, "both branches must be copy loops")
        return TransformResult(
            description=splice_at(ctx.description, path, node.els),
            note="selected forward copy under the no-overlap language fact",
        )
