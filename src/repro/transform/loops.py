"""Loop transformations.

"Especially necessary to manipulate the counting loops for string
oriented instructions" (paper §5).  The heavy lifters are:

* ``materialize_exit_flag`` — give a direct ``exit_when C`` the
  flag-register shape machine instructions use,
* ``exit_discriminator_to_flag`` — re-express a post-loop test of the
  *first* exit condition as a test of the exit *flag* (the key step that
  lets the scasb epilogue's ``zf`` test match the index operator's
  ``Src.Length = 0`` test),
* ``move_before_exit`` / ``move_after_exit`` — slide an assignment
  across a loop exit when its value is dead outside the loop,
* ``absorb_index_into_base`` — the induction-variable rewrite that turns
  ``Mb[base + i]; i <- i + 1`` addressing into the moving-pointer
  addressing of the machine's string instructions,
* ``rotate_pretest_to_posttest`` — pre-test/post-test loop conversion
  under an assertion that the condition is initially false (how the IBM
  370 mvc's move-length-plus-one quirk is reconciled, §4.2).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..dataflow.effects import MEM, OUT
from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, replace_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def declare_register(
    description: ast.Description, decl: ast.RegDecl
) -> ast.Description:
    """Append a declaration to the STATE section (or the first section)."""
    for index, section in enumerate(description.sections):
        if section.name.upper() == "STATE":
            new_section = dataclasses.replace(
                section, decls=section.decls + (decl,)
            )
            return replace_at(description, (("sections", index),), new_section)
    if not description.sections:
        raise TransformError("description has no sections to declare into")
    section = description.sections[0]
    new_section = dataclasses.replace(section, decls=section.decls + (decl,))
    return replace_at(description, (("sections", 0),), new_section)


def _vars_of(expr: ast.Expr) -> set:
    return {node.name for _, node in walk(expr) if isinstance(node, ast.Var)}


def _require_invariant_before(ctx, name: str, anchor_path: Path, require) -> None:
    """Require ``name``'s definitions to all precede ``anchor_path``.

    Accepted definitions: the ``input`` statement, or top-level entry
    assignments at a body index strictly below the anchor's (the anchor
    must itself be a top-level entry statement).  This makes ``name``
    invariant from the anchor onward — the property the induction
    rewrites (absorb / countdown) rely on.
    """
    entry = ctx.description.entry_routine()
    entry_path = ctx.routine_path(entry.name)
    anchor_ok = (
        len(anchor_path) == len(entry_path) + 1
        and anchor_path[: len(entry_path)] == entry_path
        and anchor_path[-1][0] == "body"
    )
    require(anchor_ok, "the initialization must be a top-level entry statement")
    anchor_index = anchor_path[-1][1]
    for def_path, def_stmt in ctx.defs_of_global(name):
        if isinstance(def_stmt, ast.Input):
            continue
        top_level = (
            len(def_path) == len(entry_path) + 1
            and def_path[: len(entry_path)] == entry_path
            and def_path[-1][0] == "body"
            and def_path[-1][1] < anchor_index
        )
        require(
            top_level,
            f"{name!r} is modified after the initialization; not invariant",
        )


@register
class MaterializeExitFlag(Transformation):
    """``exit_when C`` becomes ``flag <- C; exit_when flag``.

    Declares a fresh one-bit flag, initializes it to 0 immediately
    before the enclosing loop, and stores the exit condition into it.
    The condition may have side effects (``ch = read()``): it is still
    evaluated exactly once per iteration at the same point.
    """

    name = "materialize_exit_flag"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        flag = params.get("flag")
        self._require(bool(flag), "materialize_exit_flag needs flag=...")
        node = ctx.node(path)
        self._require(isinstance(node, ast.ExitWhen), "needs an exit_when")
        self._require(
            not ctx.description.has_register(flag)
            and all(routine.name != flag for routine in ctx.description.routines()),
            f"{flag!r} is not a fresh name",
        )
        _, repeat_path = ctx.enclosing_repeat(path)
        # Rewrite the exit first (deeper path), then insert the init.
        description = ctx.description
        new_stmts = (
            ast.Assign(target=ast.Var(flag), expr=node.cond),
            ast.ExitWhen(cond=ast.Var(flag), comment=node.comment),
        )
        from ..isdl.visitor import splice_at

        description = splice_at(description, path, new_stmts)
        description = insert_at(description, repeat_path, ast.Assign(
            target=ast.Var(flag), expr=ast.Const(0), comment="exit flag init"
        ))
        description = declare_register(
            description,
            ast.RegDecl(name=flag, width=ast.BitWidth(0, 0), comment="exit flag"),
        )
        return TransformResult(
            description=description,
            note=f"materialized exit condition into flag {flag}",
        )


@register
class FuseExits(Transformation):
    """``exit_when a; exit_when b`` becomes ``exit_when (a or b)``.

    Both conditions must be pure: when ``a`` fires, ``b`` is no longer
    evaluated separately, so it must have no effects (and vice versa —
    ``or`` here does not short-circuit).
    """

    name = "fuse_exits"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        self._require(index + 1 < len(siblings), "no following statement")
        first, second = siblings[index], siblings[index + 1]
        self._require(
            isinstance(first, ast.ExitWhen) and isinstance(second, ast.ExitWhen),
            "needs two adjacent exit_when statements",
        )
        self._require(
            ctx.expr_is_pure(first.cond) and ctx.expr_is_pure(second.cond),
            "both exit conditions must be pure",
        )
        fused = ast.ExitWhen(cond=ast.BinOp("or", first.cond, second.cond))
        new_siblings = siblings[:index] + (fused,) + siblings[index + 2:]
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="fused adjacent exits",
        )


@register
class SplitExit(Transformation):
    """``exit_when (a or b)`` becomes ``exit_when a; exit_when b``.

    Inverse of ``fuse_exits``; both disjuncts must be pure.
    """

    name = "split_exit"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.ExitWhen)
            and isinstance(node.cond, ast.BinOp)
            and node.cond.op == "or",
            "needs 'exit_when (a or b)'",
        )
        self._require(
            ctx.expr_is_pure(node.cond.left) and ctx.expr_is_pure(node.cond.right),
            "both disjuncts must be pure",
        )
        from ..isdl.visitor import splice_at

        new_stmts = (
            ast.ExitWhen(cond=node.cond.left),
            ast.ExitWhen(cond=node.cond.right),
        )
        return TransformResult(
            description=splice_at(ctx.description, path, new_stmts),
            note="split fused exit",
        )


def _exit_edge_live(ctx: Context, routine_name: str, exit_path: Path) -> set:
    """Names live on the exit edge of the ``exit_when`` at ``exit_path``."""
    cfg = ctx.cfg(routine_name)
    node = cfg.node_for_path(exit_path)
    if node.kind != "looptest":
        raise TransformError("path is not an exit_when")
    liveness = ctx.liveness(routine_name)
    live: set = set()
    for successor in node.exit_successors():
        live |= set(liveness.live_in(successor))
    return live


class _MoveAcrossExit(Transformation):
    """Shared machinery for moving an assignment across an ``exit_when``.

    Either direction changes only whether the assignment executes when
    the exit fires, so its targets must be dead on the exit edge; it must
    not touch what the exit condition reads; and the condition must be
    pure so crossing it cannot disturb the assignment's operands.
    """

    before: bool = True

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        stmt = siblings[index]
        self._require(isinstance(stmt, ast.Assign), "needs an assignment")
        other_index = index - 1 if self.before else index + 1
        self._require(
            0 <= other_index < len(siblings),
            "no adjacent exit_when in that direction",
        )
        exit_stmt = siblings[other_index]
        self._require(
            isinstance(exit_stmt, ast.ExitWhen), "adjacent statement must be exit_when"
        )
        self._require(ctx.expr_is_pure(exit_stmt.cond), "exit condition must be pure")
        stmt_effects = ctx.effects.stmt_effects(stmt)
        cond_reads = ctx.effects.expr_effects(exit_stmt.cond).reads
        self._require(
            not (stmt_effects.writes & cond_reads),
            "assignment writes something the exit condition reads",
        )
        self._require(
            MEM not in stmt_effects.writes and OUT not in stmt_effects.writes,
            "cannot move memory or output effects across a loop exit",
        )
        routine, _ = ctx.enclosing_routine(path)
        exit_path = parent_path + ((field, other_index),)
        live_at_exit = _exit_edge_live(ctx, routine.name, exit_path)
        self._require(
            not (stmt_effects.writes & live_at_exit),
            "assignment writes a value still live after the loop",
        )
        if self.before:
            new_siblings = (
                siblings[: index - 1] + (stmt, exit_stmt) + siblings[index + 1:]
            )
        else:
            new_siblings = (
                siblings[:index] + (exit_stmt, stmt) + siblings[index + 2:]
            )
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        direction = "before" if self.before else "after"
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note=f"moved assignment {direction} the loop exit",
        )


@register
class MoveBeforeExit(_MoveAcrossExit):
    """Move an assignment before the ``exit_when`` directly above it."""

    name = "move_before_exit"
    category = "loop"
    before = True


@register
class MoveAfterExit(_MoveAcrossExit):
    """Move an assignment after the ``exit_when`` directly below it."""

    name = "move_after_exit"
    category = "loop"
    before = False


@register
class ExitDiscriminatorToFlag(Transformation):
    """Replace a post-loop test of the first exit condition with the flag.

    Pattern (the statement at ``path`` is the ``if``)::

        flag <- 0;
        repeat
            exit_when C;          ! first exit
            M* ...                ! must not write vars(C) or flag
            flag <- ...;          ! the only flag write in the loop
            exit_when flag;       ! second exit
            T* ...                ! must not write flag
        end_repeat;
        if C then A else B end_if   ==>   if not flag then A else B end_if

    Justification: the loop can only be left via one of the two exits.
    On the ``C`` exit, ``flag`` is 0 (initialized 0, and any iteration
    that set it true already left).  On the ``flag`` exit, ``C`` was
    false at the top of the iteration and nothing in ``M*`` changed it.
    So after the loop, ``C``'s value is true exactly when ``flag`` is 0.
    """

    name = "exit_discriminator_to_flag"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        conditional = siblings[index]
        self._require(isinstance(conditional, ast.If), "needs an if")
        self._require(index >= 1, "the if must directly follow a repeat")
        loop = siblings[index - 1]
        self._require(
            isinstance(loop, ast.Repeat), "the if must directly follow a repeat"
        )
        self._require(index >= 2, "the loop must be preceded by the flag init")

        # Identify the two top-level exits of the loop.
        exits = [
            (position, stmt)
            for position, stmt in enumerate(loop.body)
            if isinstance(stmt, ast.ExitWhen)
        ]
        self._require(
            len(exits) == 2, "the loop must have exactly two top-level exits"
        )
        (first_pos, first_exit), (second_pos, second_exit) = exits
        self._require(
            first_pos == 0, "the first exit must open the loop body"
        )
        cond = first_exit.cond
        self._require(
            conditional.cond == cond,
            "the if condition must equal the first exit condition",
        )
        self._require(ctx.expr_is_pure(cond), "the exit condition must be pure")
        self._require(
            isinstance(second_exit.cond, ast.Var),
            "the second exit must test a flag variable",
        )
        flag = second_exit.cond.name
        cond_vars = _vars_of(cond)
        self._require(flag not in cond_vars, "flag may not appear in the condition")

        init = siblings[index - 2]
        self._require(
            isinstance(init, ast.Assign)
            and init.target == ast.Var(flag)
            and init.expr == ast.Const(0),
            f"the statement before the loop must be '{flag} <- 0'",
        )
        # No deeper exits anywhere in the loop.
        for stmt in loop.body:
            if not isinstance(stmt, ast.ExitWhen):
                from .motion import has_escaping_exit

                self._require(
                    not has_escaping_exit(stmt),
                    "the loop may not contain nested escaping exits",
                )
        # Middle statements: may not write flag or vars(C).
        middle = loop.body[first_pos + 1: second_pos]
        self._require(bool(middle), "a flag assignment must precede the second exit")
        flag_assign = middle[-1]
        self._require(
            isinstance(flag_assign, ast.Assign)
            and flag_assign.target == ast.Var(flag),
            "the statement before the second exit must assign the flag",
        )
        forbidden = cond_vars | {MEM}
        for stmt in middle[:-1]:
            writes = ctx.effects.stmt_effects(stmt).writes
            self._require(
                not (writes & forbidden),
                "middle statements may not write the condition's variables",
            )
            self._require(
                flag not in writes,
                "only the final middle statement may write the flag",
            )
        self._require(
            not (ctx.effects.stmt_effects(flag_assign).writes & cond_vars),
            "the flag assignment may not write the condition's variables",
        )
        # Tail statements: may not write the flag.
        for stmt in loop.body[second_pos + 1:]:
            self._require(
                flag not in ctx.effects.stmt_effects(stmt).writes,
                "tail statements may not write the flag",
            )
        new_if = dataclasses.replace(
            conditional, cond=ast.UnOp("not", ast.Var(flag))
        )
        return TransformResult(
            description=replace_at(ctx.description, path, new_if),
            note=f"post-loop discriminator re-expressed via flag {flag}",
        )


@register
class AbsorbIndexIntoBase(Transformation):
    """Turn ``Mb[base + i]`` indexing into moving-pointer addressing.

    Parameters: ``var`` (the index), ``base`` (the base address),
    ``saved`` (fresh name that will hold the original base).

    Guards (whole-description):

    * every definition of ``var`` is either the single ``var <- 0`` init
      or an increment ``var <- var + 1``,
    * ``base`` is never assigned (it is set only by ``input``),
    * every read of ``base`` occurs inside the pattern ``base + var``,
    * every read of ``var`` occurs inside ``base + var``, inside its own
      increment, or stands alone (those become ``base - saved``),
    * ``base`` and ``var`` are unbounded integers (operator-side
      variables), so pointer arithmetic cannot wrap.

    Rewrite: ``saved <- base`` is inserted after the init; every
    ``base + var`` becomes ``base``; every increment of ``var`` gets a
    paired ``base <- base + 1``; every standalone read of ``var``
    becomes ``base - saved``.  The invariant ``base = saved + var``
    holds at every statement boundary by construction.

    ``var``'s init and increments remain and are removed afterwards by
    ``eliminate_dead_variable`` once nothing reads it.
    """

    name = "absorb_index_into_base"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        var = params.get("var")
        base = params.get("base")
        saved = params.get("saved")
        self._require(
            bool(var) and bool(base) and bool(saved),
            "absorb_index_into_base needs var=, base=, saved=",
        )
        description = ctx.description
        self._require(
            not description.has_register(saved), f"{saved!r} is not a fresh name"
        )
        var_decl = description.register(var)
        base_decl = description.register(base)
        for decl in (var_decl, base_decl):
            self._require(
                isinstance(decl.width, ast.TypeWidth)
                and decl.width.typename == "integer",
                "var and base must be unbounded integers",
            )

        # Classify definitions of var.
        init_path: Optional[Path] = None
        increment_paths: List[Path] = []
        increment_expr = ast.BinOp("+", ast.Var(var), ast.Const(1))
        for def_path, def_stmt in ctx.defs_of_global(var):
            self._require(
                isinstance(def_stmt, ast.Assign),
                f"{var!r} may not be an input operand",
            )
            if def_stmt.expr == ast.Const(0):
                self._require(init_path is None, f"{var!r} has two initializations")
                init_path = def_path
            elif def_stmt.expr == increment_expr:
                increment_paths.append(def_path)
            else:
                raise TransformError(
                    f"definition of {var!r} is neither init-to-0 nor increment"
                )
        self._require(init_path is not None, f"{var!r} has no 'var <- 0' init")

        # base must be loop-invariant: defined only by input or by
        # top-level entry statements preceding var's initialization.
        _require_invariant_before(ctx, base, init_path, self._require)

        pattern = ast.BinOp("+", ast.Var(base), ast.Var(var))
        pattern_paths = [
            use_path
            for use_path, node in walk(description)
            if node == pattern
        ]
        pattern_var_positions = {
            use_path + (("right", None),) for use_path in pattern_paths
        }
        pattern_base_positions = {
            use_path + (("left", None),) for use_path in pattern_paths
        }
        # Uses of var under a *different* base (``base2 + var``) are left
        # alone; a second absorb with that base handles them.  A shared
        # counter indexing two strings (Pascal/PL1 moves) absorbs one
        # base at a time.
        other_pattern_var_positions = {
            use_path + (("right", None),)
            for use_path, node in walk(description)
            if (
                isinstance(node, ast.BinOp)
                and node.op == "+"
                and isinstance(node.left, ast.Var)
                and node.left.name != base
                and node.right == ast.Var(var)
            )
        }
        increment_use_positions = {
            inc_path + (("expr", None), ("left", None))
            for inc_path in increment_paths
        }
        for use_path in ctx.uses_of_global(base):
            self._require(
                use_path in pattern_base_positions,
                f"a read of {base!r} occurs outside the '{base} + {var}' pattern",
            )
        standalone_var_uses = []
        for use_path in ctx.uses_of_global(var):
            if use_path in pattern_var_positions:
                continue
            if use_path in increment_use_positions:
                continue
            if use_path in other_pattern_var_positions:
                continue
            standalone_var_uses.append(use_path)

        # --- rewrite (order: replace expressions first — they do not
        # change statement indices — then insert statements bottom-up).
        for use_path in pattern_paths:
            description = replace_at(description, use_path, ast.Var(base))
        difference = ast.BinOp("-", ast.Var(base), ast.Var(saved))
        for use_path in standalone_var_uses:
            description = replace_at(description, use_path, difference)

        def sort_key(p: Path):
            return tuple(
                (step[0], -1 if step[1] is None else step[1]) for step in p
            )

        bump = ast.Assign(
            target=ast.Var(base), expr=ast.BinOp("+", ast.Var(base), ast.Const(1))
        )
        insertions = [
            (inc_path[:-1] + ((inc_path[-1][0], inc_path[-1][1] + 1),), bump)
            for inc_path in increment_paths
        ]
        insertions.append(
            (
                init_path[:-1] + ((init_path[-1][0], init_path[-1][1] + 1),),
                ast.Assign(
                    target=ast.Var(saved),
                    expr=ast.Var(base),
                    comment="save original base",
                ),
            )
        )
        for insert_path, stmt in sorted(insertions, key=lambda item: sort_key(item[0]), reverse=True):
            description = insert_at(description, insert_path, stmt)
        description = declare_register(
            description,
            ast.RegDecl(
                name=saved,
                width=ast.TypeWidth("integer"),
                comment="original base address",
            ),
        )
        return TransformResult(
            description=description,
            note=f"absorbed index {var} into moving pointer {base}",
        )


@register
class RotatePretestToPosttest(Transformation):
    """Move a leading ``exit_when C`` to the end of the loop body.

    Valid only when the loop is immediately preceded by
    ``assert (not C)`` (or ``assert`` of a structurally identical
    negation): a pre-test loop whose condition is initially false runs
    its body once before the first meaningful test, which is exactly the
    post-test loop.  ``C`` must be pure.
    """

    name = "rotate_pretest_to_posttest"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Repeat), "needs a repeat loop")
        self._require(
            bool(node.body) and isinstance(node.body[0], ast.ExitWhen),
            "loop body must start with exit_when",
        )
        exit_stmt = node.body[0]
        self._require(ctx.expr_is_pure(exit_stmt.cond), "condition must be pure")
        parent_path, field, index = ctx.stmt_position(path)
        self._require(index >= 1, "loop must be preceded by an assertion")
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        guard = siblings[index - 1]
        expected = ast.UnOp("not", exit_stmt.cond)
        self._require(
            isinstance(guard, ast.Assert) and guard.cond == expected,
            f"needs a preceding 'assert (not C)' matching the exit condition",
        )
        rotated = dataclasses.replace(node, body=node.body[1:] + (exit_stmt,))
        return TransformResult(
            description=replace_at(ctx.description, path, rotated),
            note="rotated pre-test loop to post-test form",
        )


@register
class RotatePosttestToPretest(Transformation):
    """Move a trailing ``exit_when C`` to the head of the loop body.

    Inverse of ``rotate_pretest_to_posttest`` with the same assertion
    requirement.
    """

    name = "rotate_posttest_to_pretest"
    category = "loop"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Repeat), "needs a repeat loop")
        self._require(
            bool(node.body) and isinstance(node.body[-1], ast.ExitWhen),
            "loop body must end with exit_when",
        )
        exit_stmt = node.body[-1]
        self._require(ctx.expr_is_pure(exit_stmt.cond), "condition must be pure")
        parent_path, field, index = ctx.stmt_position(path)
        self._require(index >= 1, "loop must be preceded by an assertion")
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        guard = siblings[index - 1]
        expected = ast.UnOp("not", exit_stmt.cond)
        self._require(
            isinstance(guard, ast.Assert) and guard.cond == expected,
            "needs a preceding 'assert (not C)' matching the exit condition",
        )
        rotated = dataclasses.replace(node, body=(exit_stmt,) + node.body[:-1])
        return TransformResult(
            description=replace_at(ctx.description, path, rotated),
            note="rotated post-test loop to pre-test form",
        )
