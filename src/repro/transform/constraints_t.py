"""Constraint and assertion transformations.

These "allow constraints and auxiliary assertions to be created and
manipulated by transformations like any other part of the description
text" (paper §5):

* ``fix_operand`` — the *simplification* mechanism: fixing a flag
  operand's value yields a simpler instruction with one less operand
  (8086 ``df``/``rf``/``rfz``, §4.1),
* ``introduce_coding_constraint`` — the IBM 370 ``mvc`` mechanism: the
  compiler is directed to offset an operand, and the compensating
  arithmetic becomes part of the instruction description (§4.2),
* ``assert_operand_range`` — record a range constraint and plant the
  matching ``assert`` so later loop transformations can rely on it,
* ``derive_assertion`` / ``remove_assertion`` — logical bookkeeping,
* ``require_no_overlap`` — the complex multi-operand constraint EXTRA
  cannot represent: raises unless the session declared the matching
  language fact (the §7 future-work extension).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..constraints import (
    ComplexConstraint,
    LanguageFact,
    OffsetConstraint,
    RangeConstraint,
    UnsupportedConstraintError,
    ValueConstraint,
)
from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, remove_at, replace_at
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def _entry_input(ctx: Context) -> Tuple[ast.RoutineDecl, Path, int, ast.Input]:
    """The entry routine, its path, and the index of its input statement."""
    entry = ctx.description.entry_routine()
    entry_path = ctx.routine_path(entry.name)
    for index, stmt in enumerate(entry.body):
        if isinstance(stmt, ast.Input):
            return entry, entry_path, index, stmt
    raise TransformError("entry routine has no input statement")


@register
class FixOperand(Transformation):
    """Fix an input operand to a constant (*simplification*).

    The operand is removed from ``input`` and an assignment of the fixed
    value is inserted directly after it; the resulting description is a
    simpler instruction with one less operand.  Emits a
    :class:`ValueConstraint` telling the code generator how to set the
    operand when emitting the instruction.
    """

    name = "fix_operand"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        operand = params.get("operand")
        value = params.get("value")
        self._require(
            operand is not None and value is not None,
            "fix_operand needs operand=..., value=...",
        )
        entry, entry_path, input_index, input_stmt = _entry_input(ctx)
        self._require(
            operand in input_stmt.names, f"{operand!r} is not an input operand"
        )
        new_input = dataclasses.replace(
            input_stmt,
            names=tuple(name for name in input_stmt.names if name != operand),
        )
        input_path = entry_path + (("body", input_index),)
        description = replace_at(ctx.description, input_path, new_input)
        fixed = ast.Assign(
            target=ast.Var(operand),
            expr=ast.Const(value),
            comment=f"operand fixed by simplification",
        )
        description = insert_at(
            description, entry_path + (("body", input_index + 1),), fixed
        )
        return TransformResult(
            description=description,
            constraints=(ValueConstraint(operand=operand, value=value),),
            note=f"fixed operand {operand} = {value}",
        )


@register
class IntroduceCodingConstraint(Transformation):
    """Direct the compiler to offset an operand before loading it.

    The operator-level value will be offset by ``offset`` at code
    generation time; to keep the description's semantics phrased in
    operator-level terms, the compensating arithmetic
    ``operand <- operand + offset`` becomes part of the description
    (inserted directly after ``input``), exactly as the decrement
    "becomes part of the description of mvc" in §4.2.
    """

    name = "introduce_coding_constraint"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        operand = params.get("operand")
        offset = params.get("offset")
        self._require(
            operand is not None and offset is not None,
            "introduce_coding_constraint needs operand=..., offset=...",
        )
        entry, entry_path, input_index, input_stmt = _entry_input(ctx)
        self._require(
            operand in input_stmt.names, f"{operand!r} is not an input operand"
        )
        if offset >= 0:
            adjust_expr: ast.Expr = ast.BinOp(
                "+", ast.Var(operand), ast.Const(offset)
            )
        else:
            adjust_expr = ast.BinOp("-", ast.Var(operand), ast.Const(-offset))
        adjust = ast.Assign(
            target=ast.Var(operand),
            expr=adjust_expr,
            comment="coding constraint adjustment",
        )
        description = insert_at(
            ctx.description, entry_path + (("body", input_index + 1),), adjust
        )
        return TransformResult(
            description=description,
            constraints=(
                OffsetConstraint(
                    operand=operand,
                    offset=offset,
                    note="compiler must offset the operand before loading",
                ),
            ),
            note=f"coding constraint: {operand} offset by {offset}",
        )


@register
class AssertOperandRange(Transformation):
    """Constrain an input operand to ``[lo, hi]`` and assert the bound.

    Emits a :class:`RangeConstraint` and inserts ``assert (operand >=
    lo)`` directly after ``input`` so loop transformations (e.g.
    pre-test/post-test rotation) can rely on the lower bound.
    """

    name = "assert_operand_range"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        operand = params.get("operand")
        lo = params.get("lo")
        hi = params.get("hi")
        self._require(
            operand is not None and lo is not None and hi is not None,
            "assert_operand_range needs operand=..., lo=..., hi=...",
        )
        entry, entry_path, input_index, input_stmt = _entry_input(ctx)
        self._require(
            operand in input_stmt.names, f"{operand!r} is not an input operand"
        )
        guard = ast.Assert(
            cond=ast.BinOp(">=", ast.Var(operand), ast.Const(lo)),
            comment="from range constraint",
        )
        description = insert_at(
            ctx.description, entry_path + (("body", input_index + 1),), guard
        )
        return TransformResult(
            description=description,
            constraints=(
                RangeConstraint(operand=operand, lo=lo, hi=hi),
            ),
            note=f"range constraint: {lo} <= {operand} <= {hi}",
        )


@register
class DeriveAssertion(Transformation):
    """Insert an assertion implied by an existing adjacent assertion.

    Supported implications (``kind=`` parameter):

    * ``ge_to_not_eq``: from ``assert (x >= k)`` with ``k > c`` derive
      ``assert (not (x = c))``; the derived assertion is inserted
      directly after its premise.  ``c`` defaults to 0.
    """

    name = "derive_assertion"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        kind = params.get("kind", "ge_to_not_eq")
        self._require(kind == "ge_to_not_eq", f"unknown derivation {kind!r}")
        value = params.get("value", 0)
        node = ctx.node(path)
        self._require(isinstance(node, ast.Assert), "needs an assert statement")
        cond = node.cond
        self._require(
            isinstance(cond, ast.BinOp)
            and cond.op == ">="
            and isinstance(cond.right, ast.Const),
            "premise must be 'assert (x >= k)'",
        )
        self._require(
            cond.right.value > value,
            f"premise bound {cond.right.value} does not exclude {value}",
        )
        derived = ast.Assert(
            cond=ast.UnOp("not", ast.BinOp("=", cond.left, ast.Const(value))),
            comment="derived",
        )
        parent_path, field, index = ctx.stmt_position(path)
        description = insert_at(
            ctx.description, parent_path + ((field, index + 1),), derived
        )
        return TransformResult(
            description=description,
            note=f"derived assertion: operand is never {value}",
        )


@register
class RemoveAssertion(Transformation):
    """Delete an ``assert`` statement.

    Assertions carry facts, not semantics (the constraints they came
    from remain recorded in the session), so removal is always valid.
    """

    name = "remove_assertion"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Assert), "needs an assert statement")
        return TransformResult(
            description=remove_at(ctx.description, path),
            note="removed assertion",
        )


@register
class RequireNoOverlap(Transformation):
    """Demand that two address operands' regions never overlap.

    This is the §4.3 movc3/sassign condition::

        (Src.Base + Src.Length <= Dst.Base) or
        (Dst.Base + Dst.Length <= Src.Base)

    It involves more than one operand, so stock EXTRA *cannot represent
    it*: applying this transformation raises
    :class:`UnsupportedConstraintError` and the analysis fails.

    The §7 future-work extension: when the session supplies a
    :class:`LanguageFact` named ``no-overlap`` (a property of the source
    language — Pascal strings can never overlap), the fact discharges
    the constraint and the analysis may proceed.  Pass the session's
    language facts via ``language_facts=``.
    """

    name = "require_no_overlap"
    category = "constraint-assertion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        source = params.get("src")
        destination = params.get("dst")
        self._require(
            bool(source) and bool(destination),
            "require_no_overlap needs src=..., dst=...",
        )
        constraint = ComplexConstraint(
            operands=(source, destination),
            condition=(
                f"({source}.base + {source}.length <= {destination}.base) or "
                f"({destination}.base + {destination}.length <= {source}.base)"
            ),
            note="no-overlap",
        )
        facts = params.get("language_facts") or ()
        for fact in facts:
            if isinstance(fact, LanguageFact) and fact.discharges(constraint):
                return TransformResult(
                    description=ctx.description,
                    note=(
                        f"no-overlap constraint discharged by language fact "
                        f"{fact.name!r}"
                    ),
                )
        raise UnsupportedConstraintError(
            "EXTRA can only handle simple single-operand constraints; "
            "the no-overlap condition involves multiple operands (paper §4.3)",
            constraint,
        )
