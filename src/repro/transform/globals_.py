"""Global transformations: propagation and dead-code removal.

These "must look at potentially the entire description" (paper §5):
constant propagation (within a routine via available-copies dataflow, or
across routines for a single-definition operand fixed at the entry),
copy propagation, dead-assignment elimination, dead-variable
elimination, and alpha-renaming.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..dataflow.effects import MEM
from ..isdl import ast
from ..isdl.visitor import Path, node_at, remove_at, replace_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def _cfg_node_for(ctx: Context, routine_name: str, path: Path):
    """The CFG node whose statement contains ``path``."""
    cfg = ctx.cfg(routine_name)
    for length in range(len(path), 0, -1):
        prefix = path[:length]
        if prefix in cfg.by_path:
            return cfg.nodes[cfg.by_path[prefix]]
    raise TransformError(f"no CFG node found containing path {path!r}")


def _global_constant_def(ctx: Context, name: str) -> Optional[int]:
    """Value of ``name`` under the cross-routine single-definition rule.

    Valid when the description's *only* definition of ``name`` is a
    constant assignment at the top level of the entry routine, and no
    statement before that assignment calls any routine (so every use in
    any routine executes after the definition).
    """
    defs = ctx.defs_of_global(name)
    if len(defs) != 1:
        return None
    def_path, def_stmt = defs[0]
    if not isinstance(def_stmt, ast.Assign) or not isinstance(
        def_stmt.expr, ast.Const
    ):
        return None
    entry = ctx.description.entry_routine()
    entry_path = ctx.routine_path(entry.name)
    # The definition must be a direct child of the entry routine body.
    if len(def_path) != len(entry_path) + 1 or def_path[: len(entry_path)] != entry_path:
        return None
    field, index = def_path[-1]
    if field != "body" or index is None:
        return None
    for stmt in entry.body[:index]:
        for _, node in walk(stmt):
            if isinstance(node, ast.Call):
                return None
            if isinstance(node, ast.Var) and node.name == name:
                return None
    return def_stmt.expr.value


@register
class PropagateConstant(Transformation):
    """Replace a variable use with a constant it must hold.

    Two justifications are accepted: the constant-copy is available at
    the use's CFG node (per-routine dataflow), or the variable has a
    single constant definition at the top of the entry routine (the
    cross-routine case that arises after ``fix_operand`` — e.g.
    propagating ``df = 0`` into the 8086 ``fetch`` routine).
    """

    name = "propagate_constant"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Var), "needs a variable use")
        if path and path[-1] == ("target", None):
            raise TransformError("cannot propagate into an assignment target")
        name = node.name
        routine, _ = ctx.enclosing_routine(path)
        value: Optional[int] = None
        try:
            cfg_node = _cfg_node_for(ctx, routine.name, path)
            source = ctx.copies(routine.name).source_for(cfg_node.node_id, name)
            if isinstance(source, int):
                value = source
        except TransformError:
            pass
        if value is None:
            value = _global_constant_def(ctx, name)
        self._require(
            value is not None, f"{name!r} is not provably constant at this use"
        )
        return TransformResult(
            description=replace_at(ctx.description, path, ast.Const(value)),
            note=f"propagated constant {name} = {value}",
        )


@register
class PropagateCopy(Transformation):
    """Replace a use of ``dst`` with ``src`` where ``dst <- src`` is available."""

    name = "propagate_copy"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.Var), "needs a variable use")
        if path and path[-1] == ("target", None):
            raise TransformError("cannot propagate into an assignment target")
        routine, _ = ctx.enclosing_routine(path)
        cfg_node = _cfg_node_for(ctx, routine.name, path)
        source = ctx.copies(routine.name).source_for(cfg_node.node_id, node.name)
        self._require(
            isinstance(source, str),
            f"no copy of {node.name!r} is available at this use",
        )
        return TransformResult(
            description=replace_at(ctx.description, path, ast.Var(source)),
            note=f"propagated copy {node.name} = {source}",
        )


@register
class EliminateDeadAssignment(Transformation):
    """Remove ``x <- e`` when ``x`` is dead afterwards and ``e`` is pure."""

    name = "eliminate_dead_assignment"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.Assign) and isinstance(node.target, ast.Var),
            "needs an assignment to a variable",
        )
        self._require(
            ctx.expr_is_pure(node.expr),
            "right-hand side has side effects; cannot drop it",
        )
        routine, _ = ctx.enclosing_routine(path)
        self._require(
            node.target.name != routine.name,
            "cannot remove the routine's return assignment",
        )
        cfg_node = _cfg_node_for(ctx, routine.name, path)
        liveness = ctx.liveness(routine.name)
        self._require(
            node.target.name not in liveness.live_out(cfg_node.node_id),
            f"{node.target.name!r} is still live after the assignment",
        )
        # A global variable may also be read by *other* routines invoked
        # later from a caller; per-routine liveness cannot see that.  Be
        # safe: the variable must not be used in any other routine.
        for other in ctx.description.routines():
            if other.name == routine.name:
                continue
            for _, sub in walk(ast.Repeat(body=other.body)):
                if isinstance(sub, ast.Var) and sub.name == node.target.name:
                    raise TransformError(
                        f"{node.target.name!r} is referenced in routine "
                        f"{other.name!r}"
                    )
        return TransformResult(
            description=remove_at(ctx.description, path),
            note=f"removed dead assignment to {node.target.name}",
        )


@register
class EliminateDeadVariable(Transformation):
    """Remove a register declaration that is never read.

    All assignments to the variable are removed along with the
    declaration; each dropped right-hand side must be pure.  The
    variable may not appear in ``input`` or ``output`` (removing
    operands is ``fix_operand``'s job).
    """

    name = "eliminate_dead_variable"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.RegDecl), "needs a register declaration")
        name = node.name
        for _, sub in walk(ctx.description):
            if isinstance(sub, ast.Input) and name in sub.names:
                raise TransformError(f"{name!r} is an input operand")
        # Collect assignments to drop.
        assign_paths = []
        for sub_path, sub in walk(ctx.description):
            if (
                isinstance(sub, ast.Assign)
                and isinstance(sub.target, ast.Var)
                and sub.target.name == name
            ):
                self._require(
                    ctx.expr_is_pure(sub.expr),
                    "an assignment to the dead variable has side effects",
                )
                assign_paths.append(sub_path)
        # Reads are allowed only inside assignments to the variable
        # itself (``i <- i + 1`` keeps ``i`` dead when nothing else
        # reads it — the self-referential chain is removed wholesale).
        for use_path in ctx.uses_of_global(name):
            in_own_assign = any(
                use_path[: len(assign_path)] == assign_path
                for assign_path in assign_paths
            )
            self._require(
                in_own_assign,
                f"{name!r} is still read outside its own assignments",
            )
        description = ctx.description

        def sort_key(p: Path):
            return tuple(
                (step[0], -1 if step[1] is None else step[1]) for step in p
            )

        # Remove later siblings first so earlier removals do not shift
        # the indices of paths still pending.
        for sub_path in sorted(assign_paths, key=sort_key, reverse=True):
            description = remove_at(description, sub_path)
        # Recompute the declaration's path in the updated tree (indices
        # into statement lists may have shifted, but declaration lists
        # were untouched, so the original path is still valid).
        description = remove_at(description, path)
        return TransformResult(
            description=description,
            note=f"removed dead variable {name}",
        )


@register
class RenameVariable(Transformation):
    """Alpha-rename a register throughout the description.

    Renaming never changes semantics; the matcher works modulo renaming
    anyway, but explicit renames make printed final forms line up with
    the paper's figures.
    """

    name = "rename_variable"
    category = "global"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        new_name = params.get("new_name")
        self._require(bool(new_name), "rename_variable needs new_name=...")
        node = ctx.node(path)
        self._require(isinstance(node, ast.RegDecl), "needs a register declaration")
        old_name = node.name
        for decl in ctx.description.registers():
            self._require(
                decl.name != new_name, f"{new_name!r} is already declared"
            )
        for routine in ctx.description.routines():
            self._require(
                routine.name != new_name and new_name not in routine.params,
                f"{new_name!r} collides with a routine name or parameter",
            )

        def rename(node_):
            if isinstance(node_, ast.Var) and node_.name == old_name:
                return ast.Var(new_name)
            if isinstance(node_, ast.RegDecl) and node_.name == old_name:
                return dataclasses.replace(node_, name=new_name)
            if isinstance(node_, ast.Input) and old_name in node_.names:
                return dataclasses.replace(
                    node_,
                    names=tuple(
                        new_name if item == old_name else item
                        for item in node_.names
                    ),
                )
            return None

        description = _rewrite_everywhere(ctx.description, rename)
        return TransformResult(
            description=description,
            note=f"renamed {old_name} to {new_name}",
        )


def _rewrite_everywhere(root, fn):
    """Bottom-up rewrite: apply ``fn`` to every node, keeping the rest."""
    if not dataclasses.is_dataclass(root):
        return root
    updates = {}
    for field in dataclasses.fields(root):
        value = getattr(root, field.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            new_value = _rewrite_everywhere(value, fn)
            if new_value is not value:
                updates[field.name] = new_value
        elif isinstance(value, tuple):
            new_items = []
            changed = False
            for item in value:
                if dataclasses.is_dataclass(item) and not isinstance(item, type):
                    new_item = _rewrite_everywhere(item, fn)
                    changed = changed or new_item is not item
                    new_items.append(new_item)
                else:
                    new_items.append(item)
            if changed:
                updates[field.name] = tuple(new_items)
    node = dataclasses.replace(root, **updates) if updates else root
    replacement = fn(node)
    return node if replacement is None else replacement
