"""Local transformations: arithmetic and logical identities.

These "manipulate the descriptions based on local properties" (paper §5)
— constant folding, boolean identities, comparison normalization, and
the figure-1 reverse-conditional rule.  Guards that involve evaluation
order require non-conflicting effects; identities valid only for 0/1
values require the operand to be provably boolean-valued.
"""

from __future__ import annotations

from ..isdl import ast
from ..isdl.visitor import Path, replace_at, splice_at
from ..semantics.values import apply_binop, apply_unop
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def _expr_at(ctx: Context, path: Path) -> ast.Expr:
    node = ctx.node(path)
    if not isinstance(node, (ast.Const, ast.Var, ast.MemRead, ast.Call, ast.BinOp, ast.UnOp)):
        raise TransformError(f"path does not address an expression: {type(node).__name__}")
    return node


def _rewrite(ctx: Context, path: Path, new_expr: ast.Expr, note: str) -> TransformResult:
    return TransformResult(
        description=replace_at(ctx.description, path, new_expr), note=note
    )


@register
class ReverseConditional(Transformation):
    """Figure 1: ``if e then A else B`` becomes ``if not e then B else A``.

    Always semantics-preserving.  Applying it twice does not restore the
    original text (a ``not`` accumulates); pair with ``not_not`` or use
    on conditions that are already negations.
    """

    name = "reverse_conditional"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "reverse_conditional needs an if")
        cond = node.cond
        if isinstance(cond, ast.UnOp) and cond.op == "not":
            new_cond: ast.Expr = cond.operand
        else:
            new_cond = ast.UnOp("not", cond)
        new_if = ast.If(cond=new_cond, then=node.els, els=node.then, comment=node.comment)
        return TransformResult(
            description=replace_at(ctx.description, path, new_if),
            note="reversed conditional clauses",
        )


@register
class FoldConstants(Transformation):
    """Evaluate an operator whose operands are all constants."""

    name = "fold_constants"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        if isinstance(node, ast.BinOp):
            self._require(
                isinstance(node.left, ast.Const) and isinstance(node.right, ast.Const),
                "both operands must be constants",
            )
            value = apply_binop(node.op, node.left.value, node.right.value)
        elif isinstance(node, ast.UnOp):
            self._require(
                isinstance(node.operand, ast.Const), "operand must be a constant"
            )
            value = apply_unop(node.op, node.operand.value)
        else:
            raise TransformError("fold_constants needs an operator expression")
        return _rewrite(ctx, path, ast.Const(value), f"folded to {value}")


def _const_side(node: ast.BinOp, value: int):
    """Return (constant side name, other expr) when one side is Const(value)."""
    if isinstance(node.left, ast.Const) and node.left.value == value:
        return "left", node.right
    if isinstance(node.right, ast.Const) and node.right.value == value:
        return "right", node.left
    return None, None


@register
class AndTrue(Transformation):
    """``e and 1`` is ``e`` when ``e`` is boolean-valued (0/1)."""

    name = "and_true"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op == "and", "needs an 'and'"
        )
        side, other = _const_side(node, 1)
        self._require(side is not None, "one operand must be the constant 1")
        self._require(
            ctx.is_boolean_valued(other),
            "the other operand must be provably 0/1-valued",
        )
        return _rewrite(ctx, path, other, "dropped 'and 1'")


@register
class AndFalse(Transformation):
    """``e and 0`` is ``0`` when ``e`` has no side effects."""

    name = "and_false"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op == "and", "needs an 'and'"
        )
        side, other = _const_side(node, 0)
        self._require(side is not None, "one operand must be the constant 0")
        self._require(ctx.expr_is_pure(other), "dropped operand must be pure")
        return _rewrite(ctx, path, ast.Const(0), "'and 0' is 0")


@register
class OrFalse(Transformation):
    """``e or 0`` is ``e`` when ``e`` is boolean-valued."""

    name = "or_false"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(isinstance(node, ast.BinOp) and node.op == "or", "needs an 'or'")
        side, other = _const_side(node, 0)
        self._require(side is not None, "one operand must be the constant 0")
        self._require(
            ctx.is_boolean_valued(other),
            "the other operand must be provably 0/1-valued",
        )
        return _rewrite(ctx, path, other, "dropped 'or 0'")


@register
class OrTrue(Transformation):
    """``e or 1`` is ``1`` when ``e`` has no side effects."""

    name = "or_true"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(isinstance(node, ast.BinOp) and node.op == "or", "needs an 'or'")
        side, other = _const_side(node, 1)
        self._require(side is not None, "one operand must be the constant 1")
        self._require(ctx.expr_is_pure(other), "dropped operand must be pure")
        return _rewrite(ctx, path, ast.Const(1), "'or 1' is 1")


@register
class NotNot(Transformation):
    """``not (not e)`` is ``e`` when ``e`` is boolean-valued."""

    name = "not_not"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.UnOp)
            and node.op == "not"
            and isinstance(node.operand, ast.UnOp)
            and node.operand.op == "not",
            "needs a double negation",
        )
        inner = node.operand.operand
        self._require(
            ctx.is_boolean_valued(inner), "inner expression must be 0/1-valued"
        )
        return _rewrite(ctx, path, inner, "removed double negation")


@register
class DeMorgan(Transformation):
    """``not (a and b)`` <-> ``(not a) or (not b)`` (both directions).

    Applied to a ``not`` of a conjunction/disjunction it pushes the
    negation inward; applied to a disjunction/conjunction of negations it
    pulls the negation outward.
    """

    name = "de_morgan"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        if isinstance(node, ast.UnOp) and node.op == "not" and isinstance(
            node.operand, ast.BinOp
        ) and node.operand.op in ("and", "or"):
            inner = node.operand
            flipped = "or" if inner.op == "and" else "and"
            new = ast.BinOp(
                flipped, ast.UnOp("not", inner.left), ast.UnOp("not", inner.right)
            )
            return _rewrite(ctx, path, new, "pushed negation inward")
        if isinstance(node, ast.BinOp) and node.op in ("and", "or"):
            left, right = node.left, node.right
            if (
                isinstance(left, ast.UnOp)
                and left.op == "not"
                and isinstance(right, ast.UnOp)
                and right.op == "not"
            ):
                flipped = "or" if node.op == "and" else "and"
                new = ast.UnOp(
                    "not", ast.BinOp(flipped, left.operand, right.operand)
                )
                return _rewrite(ctx, path, new, "pulled negation outward")
        raise TransformError("de_morgan pattern not found")


@register
class AddZero(Transformation):
    """``e + 0`` and ``0 + e`` are ``e``."""

    name = "add_zero"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(isinstance(node, ast.BinOp) and node.op == "+", "needs a '+'")
        side, other = _const_side(node, 0)
        self._require(side is not None, "one operand must be the constant 0")
        return _rewrite(ctx, path, other, "dropped '+ 0'")


@register
class SubZero(Transformation):
    """``e - 0`` is ``e``."""

    name = "sub_zero"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "-"
            and isinstance(node.right, ast.Const)
            and node.right.value == 0,
            "needs 'e - 0'",
        )
        return _rewrite(ctx, path, node.left, "dropped '- 0'")


@register
class MulOne(Transformation):
    """``e * 1`` and ``1 * e`` are ``e``."""

    name = "mul_one"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(isinstance(node, ast.BinOp) and node.op == "*", "needs a '*'")
        side, other = _const_side(node, 1)
        self._require(side is not None, "one operand must be the constant 1")
        return _rewrite(ctx, path, other, "dropped '* 1'")


@register
class MulZero(Transformation):
    """``e * 0`` is ``0`` when ``e`` has no side effects."""

    name = "mul_zero"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(isinstance(node, ast.BinOp) and node.op == "*", "needs a '*'")
        side, other = _const_side(node, 0)
        self._require(side is not None, "one operand must be the constant 0")
        self._require(ctx.expr_is_pure(other), "dropped operand must be pure")
        return _rewrite(ctx, path, ast.Const(0), "'* 0' is 0")


@register
class SubSelf(Transformation):
    """``e - e`` is ``0`` when ``e`` is pure (both evaluations agree)."""

    name = "sub_self"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op == "-" and node.left == node.right,
            "needs 'e - e'",
        )
        self._require(ctx.expr_is_pure(node.left), "operand must be pure")
        return _rewrite(ctx, path, ast.Const(0), "'e - e' is 0")


@register
class EqToSubZero(Transformation):
    """``a = b`` becomes ``(a - b) = 0``.

    This is how the comparison method of a language operator is aligned
    with a machine's subtract-and-test idiom (the scasb analysis, §4.1).
    """

    name = "eq_to_sub_zero"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op == "=", "needs an '='"
        )
        new = ast.BinOp("=", ast.BinOp("-", node.left, node.right), ast.Const(0))
        return _rewrite(ctx, path, new, "rewrote '=' as subtract-and-test")


@register
class SubZeroToEq(Transformation):
    """``(a - b) = 0`` becomes ``a = b`` (inverse of ``eq_to_sub_zero``)."""

    name = "sub_zero_to_eq"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "="
            and isinstance(node.right, ast.Const)
            and node.right.value == 0
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "-",
            "needs '(a - b) = 0'",
        )
        new = ast.BinOp("=", node.left.left, node.left.right)
        return _rewrite(ctx, path, new, "rewrote subtract-and-test as '='")


@register
class CompareZeroToNot(Transformation):
    """``e = 0`` becomes ``not e`` (valid for any integer ``e``)."""

    name = "compare_zero_to_not"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "="
            and isinstance(node.right, ast.Const)
            and node.right.value == 0,
            "needs 'e = 0'",
        )
        return _rewrite(ctx, path, ast.UnOp("not", node.left), "'e = 0' is 'not e'")


@register
class NotToCompareZero(Transformation):
    """``not e`` becomes ``e = 0`` (inverse of ``compare_zero_to_not``)."""

    name = "not_to_compare_zero"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.UnOp) and node.op == "not", "needs a 'not'"
        )
        new = ast.BinOp("=", node.operand, ast.Const(0))
        return _rewrite(ctx, path, new, "'not e' is 'e = 0'")


@register
class NeqToNotEq(Transformation):
    """``a <> b`` becomes ``not (a = b)``."""

    name = "neq_to_not_eq"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op == "<>", "needs a '<>'"
        )
        new = ast.UnOp("not", ast.BinOp("=", node.left, node.right))
        return _rewrite(ctx, path, new, "'<>' is negated '='")


@register
class NotEqToNeq(Transformation):
    """``not (a = b)`` becomes ``a <> b`` (inverse of ``neq_to_not_eq``)."""

    name = "not_eq_to_neq"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.UnOp)
            and node.op == "not"
            and isinstance(node.operand, ast.BinOp)
            and node.operand.op == "=",
            "needs 'not (a = b)'",
        )
        inner = node.operand
        new = ast.BinOp("<>", inner.left, inner.right)
        return _rewrite(ctx, path, new, "negated '=' is '<>'")


_COMMUTATIVE = {"+", "*", "and", "or", "=", "<>"}
_COMPARISON_SWAP = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}


@register
class Commute(Transformation):
    """Swap the operands of a commutative operator.

    Swapping changes evaluation order, so the operands' effects must not
    conflict (evaluating either first gives the same state).
    """

    name = "commute"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op in _COMMUTATIVE,
            "needs a commutative operator",
        )
        left_effects = ctx.effects.expr_effects(node.left)
        right_effects = ctx.effects.expr_effects(node.right)
        self._require(
            not left_effects.conflicts_with(right_effects),
            "operand effects conflict; cannot change evaluation order",
        )
        new = ast.BinOp(node.op, node.right, node.left)
        return _rewrite(ctx, path, new, f"commuted '{node.op}'")


@register
class SwapComparison(Transformation):
    """``a < b`` becomes ``b > a`` (and friends)."""

    name = "swap_comparison"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp) and node.op in _COMPARISON_SWAP,
            "needs an ordering comparison",
        )
        left_effects = ctx.effects.expr_effects(node.left)
        right_effects = ctx.effects.expr_effects(node.right)
        self._require(
            not left_effects.conflicts_with(right_effects),
            "operand effects conflict; cannot change evaluation order",
        )
        new = ast.BinOp(_COMPARISON_SWAP[node.op], node.right, node.left)
        return _rewrite(ctx, path, new, "swapped comparison operands")


@register
class AssociateRight(Transformation):
    """``(a + b) + c`` becomes ``a + (b + c)`` (pure operands)."""

    name = "associate_right"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "+"
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "+",
            "needs '(a + b) + c'",
        )
        for part in (node.left.left, node.left.right, node.right):
            self._require(ctx.expr_is_pure(part), "operands must be pure")
        new = ast.BinOp(
            "+", node.left.left, ast.BinOp("+", node.left.right, node.right)
        )
        return _rewrite(ctx, path, new, "re-associated '+' to the right")


@register
class AssociateLeft(Transformation):
    """``a + (b + c)`` becomes ``(a + b) + c`` (pure operands)."""

    name = "associate_left"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "+"
            and isinstance(node.right, ast.BinOp)
            and node.right.op == "+",
            "needs 'a + (b + c)'",
        )
        for part in (node.left, node.right.left, node.right.right):
            self._require(ctx.expr_is_pure(part), "operands must be pure")
        new = ast.BinOp(
            "+", ast.BinOp("+", node.left, node.right.left), node.right.right
        )
        return _rewrite(ctx, path, new, "re-associated '+' to the left")


@register
class SubOfSum(Transformation):
    """``(a + b) - b`` becomes ``a`` (pure ``b``).

    Used when an epilogue computes ``pointer - saved_base`` and the
    pointer is known to be ``saved_base + index``.
    """

    name = "sub_of_sum"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = _expr_at(ctx, path)
        self._require(
            isinstance(node, ast.BinOp)
            and node.op == "-"
            and isinstance(node.left, ast.BinOp)
            and node.left.op == "+"
            and node.left.right == node.right,
            "needs '(a + b) - b'",
        )
        self._require(ctx.expr_is_pure(node.right), "cancelled operand must be pure")
        return _rewrite(ctx, path, node.left.left, "cancelled '+ b - b'")


@register
class IfTrue(Transformation):
    """``if k then A else B end_if`` with constant nonzero ``k`` becomes ``A``."""

    name = "if_true"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            isinstance(node.cond, ast.Const) and node.cond.value != 0,
            "condition must be a nonzero constant",
        )
        return TransformResult(
            description=splice_at(ctx.description, path, node.then),
            note="took the then-branch of a constant conditional",
        )


@register
class IfFalse(Transformation):
    """``if 0 then A else B end_if`` becomes ``B``."""

    name = "if_false"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            isinstance(node.cond, ast.Const) and node.cond.value == 0,
            "condition must be the constant 0",
        )
        return TransformResult(
            description=splice_at(ctx.description, path, node.els),
            note="took the else-branch of a constant conditional",
        )


@register
class IfSameBranches(Transformation):
    """``if c then A else A end_if`` becomes ``A`` when ``c`` is pure."""

    name = "if_same_branches"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(node.then == node.els, "branches must be identical")
        self._require(ctx.expr_is_pure(node.cond), "condition must be pure")
        return TransformResult(
            description=splice_at(ctx.description, path, node.then),
            note="collapsed identical branches",
        )


@register
class FlagIfToAssign(Transformation):
    """``if C then f <- 1 else f <- 0 end_if`` becomes ``f <- C``.

    ``C`` must be boolean-valued so the stored value matches the 1/0 the
    branches stored.  This is the step that reconciles a machine's
    flag-setting style with an operator description that tests the
    condition directly (scasb vs. index, §4.1).
    """

    name = "flag_if_to_assign"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        pattern_ok = (
            len(node.then) == 1
            and len(node.els) == 1
            and isinstance(node.then[0], ast.Assign)
            and isinstance(node.els[0], ast.Assign)
            and isinstance(node.then[0].target, ast.Var)
            and node.then[0].target == node.els[0].target
            and node.then[0].expr == ast.Const(1)
            and node.els[0].expr == ast.Const(0)
        )
        self._require(pattern_ok, "needs 'if C then f <- 1 else f <- 0'")
        self._require(
            ctx.is_boolean_valued(node.cond), "condition must be 0/1-valued"
        )
        new = ast.Assign(target=node.then[0].target, expr=node.cond)
        return TransformResult(
            description=splice_at(ctx.description, path, (new,)),
            note="materialized flag assignment",
        )


@register
class AssignToFlagIf(Transformation):
    """``f <- C`` becomes ``if C then f <- 1 else f <- 0 end_if``.

    Inverse of ``flag_if_to_assign``; ``C`` must be boolean-valued.
    """

    name = "assign_to_flag_if"
    category = "local"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.Assign) and isinstance(node.target, ast.Var),
            "needs an assignment to a variable",
        )
        self._require(
            ctx.is_boolean_valued(node.expr), "right-hand side must be 0/1-valued"
        )
        new = ast.If(
            cond=node.expr,
            then=(ast.Assign(target=node.target, expr=ast.Const(1)),),
            els=(ast.Assign(target=node.target, expr=ast.Const(0)),),
        )
        return TransformResult(
            description=splice_at(ctx.description, path, (new,)),
            note="expanded flag assignment to a conditional",
        )
