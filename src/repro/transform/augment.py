"""Augment-producing transformations.

Augments "produce prologue and epilogue augments to the descriptions"
(paper §5): they do **not** preserve the semantics of the original
instruction — that is their purpose — but they must respect its
interface, so the guards only admit code that touches temporaries and
operands, never the instruction's internal computation.  Results are
flagged ``is_augment``; the analysis session records that the final
binding targets an *augmented instruction* (a variant whose extra code
the code generator must emit around the real opcode).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, replace_at
from .base import Context, Transformation, TransformError, TransformResult
from .loops import declare_register
from .registry import register


def _check_augment_stmts(stmts: Tuple[ast.Stmt, ...], what: str) -> None:
    from .motion import has_escaping_exit

    for stmt in stmts:
        if isinstance(stmt, ast.Input):
            raise TransformError(f"{what} code may not contain input")
        if has_escaping_exit(stmt):
            raise TransformError(f"{what} code may not contain a loop exit")


@register
class AllocateTemp(Transformation):
    """Declare a fresh temporary register for augment code.

    Parameters: ``temp`` (name) and either ``bits`` (concrete width) or
    nothing (an abstract integer).  §4.1: "a temporary must be allocated
    and code must be added to store the initial pointer value."
    """

    name = "allocate_temp"
    category = "augment"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        temp = params.get("temp")
        self._require(bool(temp), "allocate_temp needs temp=...")
        self._require(
            not ctx.description.has_register(temp)
            and all(r.name != temp for r in ctx.description.routines()),
            f"{temp!r} is not a fresh name",
        )
        bits = params.get("bits")
        width = (
            ast.BitWidth(bits - 1, 0) if bits else ast.TypeWidth("integer")
        )
        description = declare_register(
            ctx.description,
            ast.RegDecl(name=temp, width=width, comment="new temporary"),
        )
        return TransformResult(
            description=description,
            note=f"allocated temporary {temp}",
            is_augment=True,
        )


@register
class AddPrologue(Transformation):
    """Insert augment statements directly after the entry ``input``.

    ``stmts`` is a tuple of statements (usually parsed with
    :func:`repro.isdl.parse_stmts`).  Each statement may only assign to
    declared registers; it may not contain ``input`` or a loop exit.
    Successive calls stack: each new prologue statement lands after the
    previously added ones (pass ``position=`` to control placement
    relative to the input statement).
    """

    name = "add_prologue"
    category = "augment"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        stmts = tuple(params.get("stmts") or ())
        self._require(bool(stmts), "add_prologue needs stmts=...")
        _check_augment_stmts(stmts, "prologue")
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        input_index = None
        for index, stmt in enumerate(entry.body):
            if isinstance(stmt, ast.Input):
                input_index = index
                break
        self._require(input_index is not None, "entry routine has no input")
        offset = params.get("position")
        if offset is None:
            # Default: after the input and any statements already there
            # that were inserted as prologue (marked by their comments) —
            # callers who care pass position explicitly; default lands
            # directly after the input statement.
            offset = 1
        description = ctx.description
        insert_index = input_index + offset
        for stmt in reversed(stmts):
            marked = (
                dataclasses.replace(stmt, comment=stmt.comment or "augmented code")
                if not isinstance(stmt, ast.Repeat)
                else stmt
            )
            description = insert_at(
                description,
                entry_path + (("body", insert_index),),
                marked,
            )
        return TransformResult(
            description=description,
            note=f"added {len(stmts)} prologue statement(s)",
            is_augment=True,
        )


@register
class DropInputOperand(Transformation):
    """Remove an operand from ``input`` once a prologue assignment covers it.

    Valid when some top-level assignment in the entry routine writes the
    operand before anything reads it (so the incoming value is
    irrelevant).  Used with ``add_prologue``: adding ``zf <- 0`` and
    dropping ``zf`` from the inputs turns scasb's flag operand into an
    internal register (§4.1).
    """

    name = "drop_input_operand"
    category = "augment"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        operand = params.get("operand")
        self._require(bool(operand), "drop_input_operand needs operand=...")
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        input_index = None
        input_stmt = None
        for index, stmt in enumerate(entry.body):
            if isinstance(stmt, ast.Input):
                input_index, input_stmt = index, stmt
                break
        self._require(input_stmt is not None, "entry routine has no input")
        self._require(
            operand in input_stmt.names, f"{operand!r} is not an input operand"
        )
        # Scan forward from the input: the operand must be assigned (at
        # the top level) before any statement that could read it.
        covered = False
        for stmt in entry.body[input_index + 1:]:
            if (
                isinstance(stmt, ast.Assign)
                and stmt.target == ast.Var(operand)
                and operand
                not in ctx.effects.expr_effects(stmt.expr).reads
            ):
                covered = True
                break
            effects = ctx.effects.stmt_effects(stmt)
            if operand in effects.reads or operand in effects.writes:
                break
        self._require(
            covered,
            f"{operand!r} is not assigned before use; cannot drop it",
        )
        new_input = dataclasses.replace(
            input_stmt,
            names=tuple(name for name in input_stmt.names if name != operand),
        )
        description = replace_at(
            ctx.description, entry_path + (("body", input_index),), new_input
        )
        return TransformResult(
            description=description,
            note=f"dropped input operand {operand}",
            is_augment=True,
        )


@register
class ReplaceEpilogue(Transformation):
    """Replace the entry routine's trailing output with augment code.

    The entry body must end with an ``output`` statement (or with an
    ``if`` whose branches both end in outputs); everything from the
    first trailing output-bearing statement onward is replaced by
    ``stmts``.  §4.1: "Code can now be added to the epilogue of scasb
    that checks the condition that caused the loop to exit…".
    """

    name = "replace_epilogue"
    category = "augment"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        stmts = tuple(params.get("stmts") or ())
        _check_augment_stmts(stmts, "epilogue")
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        self._require(bool(entry.body), "entry routine is empty")

        def bears_output(stmt: ast.Stmt) -> bool:
            if isinstance(stmt, ast.Output):
                return True
            if isinstance(stmt, ast.If):
                return any(bears_output(s) for s in stmt.then + stmt.els)
            return False

        # Find the suffix of output-bearing statements.
        cut = len(entry.body)
        while cut > 0 and bears_output(entry.body[cut - 1]):
            cut -= 1
        self._require(
            cut < len(entry.body),
            "entry routine has no trailing output to replace",
        )
        new_body = entry.body[:cut] + stmts
        new_entry = dataclasses.replace(entry, body=new_body)
        return TransformResult(
            description=replace_at(ctx.description, entry_path, new_entry),
            note=f"replaced epilogue with {len(stmts)} statement(s)",
            is_augment=True,
        )


@register
class AddEpilogue(Transformation):
    """Append augment statements at the end of the entry routine.

    Unlike :class:`ReplaceEpilogue` the original outputs are kept; used
    when the instruction's results merely need post-processing appended
    (e.g. computing an index from an address, keeping the address too).
    """

    name = "add_epilogue"
    category = "augment"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        stmts = tuple(params.get("stmts") or ())
        self._require(bool(stmts), "add_epilogue needs stmts=...")
        _check_augment_stmts(stmts, "epilogue")
        entry = ctx.description.entry_routine()
        entry_path = ctx.routine_path(entry.name)
        new_entry = dataclasses.replace(entry, body=entry.body + stmts)
        return TransformResult(
            description=replace_at(ctx.description, entry_path, new_entry),
            note=f"appended {len(stmts)} epilogue statement(s)",
            is_augment=True,
        )
