"""Code-motion transformations.

These "move statements with respect to one another" (paper §5): swapping
independent neighbours, sinking an assignment into both branches of a
conditional, and hoisting code that both branches share.  Every guard
reduces to effect non-conflict plus control-flow safety (a statement
containing an ``exit_when`` that escapes to an enclosing loop can never
be moved, because moving it changes what runs when the exit fires).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..isdl import ast
from ..isdl.visitor import Path, node_at, replace_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def has_escaping_exit(stmt: ast.Stmt) -> bool:
    """True when ``stmt`` contains an ``exit_when`` for an *enclosing* loop.

    An ``exit_when`` nested inside a ``repeat`` that is itself inside
    ``stmt`` is self-contained and harmless.
    """

    def scan(node: ast.Stmt, repeat_depth: int) -> bool:
        if isinstance(node, ast.ExitWhen):
            return repeat_depth == 0
        if isinstance(node, ast.Repeat):
            return any(scan(inner, repeat_depth + 1) for inner in node.body)
        if isinstance(node, ast.If):
            return any(scan(inner, repeat_depth) for inner in node.then + node.els)
        return False

    return scan(stmt, 0)


def _stmt_list_slot(ctx: Context, path: Path) -> Tuple[Path, str, int, tuple]:
    """Resolve a statement path to (parent path, field, index, siblings)."""
    parent_path, field, index = ctx.stmt_position(path)
    parent = node_at(ctx.description, parent_path)
    siblings = getattr(parent, field)
    return parent_path, field, index, siblings


@register
class SwapStatements(Transformation):
    """Swap a statement with its following neighbour.

    Valid when the two statements' effect sets do not conflict and
    neither contains an escaping ``exit_when`` (reordering around a loop
    exit changes which statements run when the loop is left).
    """

    name = "swap_statements"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index, siblings = _stmt_list_slot(ctx, path)
        self._require(
            index + 1 < len(siblings), "no following statement to swap with"
        )
        first, second = siblings[index], siblings[index + 1]
        statement_types = (
            ast.Assign,
            ast.If,
            ast.Repeat,
            ast.ExitWhen,
            ast.Input,
            ast.Output,
            ast.Assert,
        )
        for stmt in (first, second):
            self._require(
                isinstance(stmt, statement_types),
                "swap_statements needs two statements",
            )
            self._require(
                not isinstance(stmt, ast.ExitWhen) and not has_escaping_exit(stmt),
                "cannot move statements across a loop exit",
            )
            self._require(
                not isinstance(stmt, ast.Input),
                "input statements anchor the operand interface",
            )
        first_effects = ctx.effects.stmt_effects(first)
        second_effects = ctx.effects.stmt_effects(second)
        self._require(
            not first_effects.conflicts_with(second_effects),
            "statement effects conflict; order matters",
        )
        new_siblings = (
            siblings[:index] + (second, first) + siblings[index + 2:]
        )
        parent = node_at(ctx.description, parent_path)
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="swapped adjacent independent statements",
        )


@register
class SinkIntoIf(Transformation):
    """Move the assignment before an ``if`` into both of its branches.

    ``x <- e; if c ...`` becomes ``if c then x <- e; ... else x <- e; ...``
    provided the condition does not read anything the assignment writes
    (the condition now evaluates first) and the assignment is effectful
    only through its target.
    """

    name = "sink_into_if"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index, siblings = _stmt_list_slot(ctx, path)
        stmt = siblings[index]
        self._require(isinstance(stmt, ast.Assign), "needs an assignment")
        self._require(
            index + 1 < len(siblings) and isinstance(siblings[index + 1], ast.If),
            "the next statement must be an if",
        )
        conditional = siblings[index + 1]
        stmt_effects = ctx.effects.stmt_effects(stmt)
        cond_effects = ctx.effects.expr_effects(conditional.cond)
        self._require(
            not stmt_effects.conflicts_with(cond_effects),
            "assignment conflicts with the condition",
        )
        new_if = dataclasses.replace(
            conditional,
            then=(stmt,) + conditional.then,
            els=(stmt,) + conditional.els,
        )
        new_siblings = siblings[:index] + (new_if,) + siblings[index + 2:]
        parent = node_at(ctx.description, parent_path)
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="sank assignment into both branches",
        )


@register
class HoistCommonHead(Transformation):
    """Pull an identical first statement out of both branches of an ``if``.

    The statement moves from just after the condition to just before it,
    so it must not conflict with evaluating the condition; it must also
    be identical in both branches and free of escaping exits.
    """

    name = "hoist_common_head"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            bool(node.then) and bool(node.els), "both branches must be non-empty"
        )
        head = node.then[0]
        self._require(node.els[0] == head, "branch heads must be identical")
        self._require(
            not has_escaping_exit(head), "cannot hoist across a loop exit"
        )
        # After hoisting, ``head`` runs before the branch join but still
        # after the condition; its effects must not change what the
        # remaining branch code sees — they don't, because it ran first
        # on both paths already.  It must not conflict with re-evaluating
        # nothing; no extra guard needed beyond identical heads.
        new_if = dataclasses.replace(node, then=node.then[1:], els=node.els[1:])
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        # The hoisted statement must also commute with the condition,
        # because it now executes before the condition is evaluated.
        head_effects = ctx.effects.stmt_effects(head)
        cond_effects = ctx.effects.expr_effects(node.cond)
        self._require(
            not head_effects.conflicts_with(cond_effects),
            "hoisted statement conflicts with the condition",
        )
        new_siblings = (
            siblings[:index] + (head, new_if) + siblings[index + 1:]
        )
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="hoisted common branch head before the conditional",
        )


@register
class HoistCommonTail(Transformation):
    """Pull an identical last statement out of both branches of an ``if``.

    Always valid when both tails are identical and contain no escaping
    exit: the statement runs exactly once after the branch either way.
    """

    name = "hoist_common_tail"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            bool(node.then) and bool(node.els), "both branches must be non-empty"
        )
        tail = node.then[-1]
        self._require(node.els[-1] == tail, "branch tails must be identical")
        self._require(
            not has_escaping_exit(tail), "cannot hoist across a loop exit"
        )
        new_if = dataclasses.replace(node, then=node.then[:-1], els=node.els[:-1])
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        new_siblings = (
            siblings[:index] + (new_if, tail) + siblings[index + 1:]
        )
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="hoisted common branch tail after the conditional",
        )


@register
class DuplicateIntoBranches(Transformation):
    """Copy the statement after an ``if`` into both branch tails.

    Inverse of ``hoist_common_tail``; used to prepare branch bodies for
    independent matching.
    """

    name = "duplicate_into_branches"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index, siblings = _stmt_list_slot(ctx, path)
        node = siblings[index]
        self._require(isinstance(node, ast.If), "needs an if")
        self._require(
            index + 1 < len(siblings), "no following statement to duplicate"
        )
        follower = siblings[index + 1]
        self._require(
            not has_escaping_exit(follower),
            "cannot duplicate a statement containing a loop exit",
        )
        new_if = dataclasses.replace(
            node, then=node.then + (follower,), els=node.els + (follower,)
        )
        new_siblings = siblings[:index] + (new_if,) + siblings[index + 2:]
        parent = node_at(ctx.description, parent_path)
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="duplicated following statement into both branches",
        )


@register
class MergeAdjacentIfs(Transformation):
    """Merge ``if c then A end_if; if c then B end_if`` into one ``if``.

    The condition must be pure and must not read anything the first
    body writes (otherwise the second test could differ).
    """

    name = "merge_adjacent_ifs"
    category = "code-motion"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        parent_path, field, index, siblings = _stmt_list_slot(ctx, path)
        self._require(index + 1 < len(siblings), "no following statement")
        first, second = siblings[index], siblings[index + 1]
        self._require(
            isinstance(first, ast.If) and isinstance(second, ast.If),
            "needs two adjacent ifs",
        )
        self._require(first.cond == second.cond, "conditions must be identical")
        self._require(ctx.expr_is_pure(first.cond), "condition must be pure")
        cond_reads = ctx.effects.expr_effects(first.cond).reads
        then_writes = set()
        for stmt in first.then:
            then_writes |= ctx.effects.stmt_effects(stmt).writes
        els_writes = set()
        for stmt in first.els:
            els_writes |= ctx.effects.stmt_effects(stmt).writes
        self._require(
            not (cond_reads & (then_writes | els_writes)),
            "first body writes something the condition reads",
        )
        for stmt in first.then + first.els:
            self._require(
                not has_escaping_exit(stmt), "cannot merge across a loop exit"
            )
        merged = ast.If(
            cond=first.cond,
            then=first.then + second.then,
            els=first.els + second.els,
            comment=first.comment,
        )
        new_siblings = siblings[:index] + (merged,) + siblings[index + 2:]
        parent = node_at(ctx.description, parent_path)
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        return TransformResult(
            description=replace_at(ctx.description, parent_path, new_parent),
            note="merged adjacent conditionals with identical conditions",
        )
