"""Transformation framework: context, results, and the base protocol.

A transformation is applied *at a point* in a description (an AST path),
exactly like positioning the cursor in the paper's structure-editor
monitor and naming the transformation.  Application either returns a new
description (plus any constraints the step uncovered) or raises
:class:`TransformError` explaining why the step is invalid there — EXTRA
"verifies that the transformations can be correctly applied and applies
them".

:class:`Context` packages the dataflow answers guards need (effect
summaries, CFGs, liveness, reaching definitions, available copies) for
one immutable description; a fresh context is built per step because the
description changes under every successful step and the trees are tiny.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..constraints import Constraint
from ..dataflow import (
    AvailableCopies,
    Cfg,
    EffectAnalysis,
    Liveness,
    ReachingDefinitions,
    build_cfg,
)
from ..isdl import ast
from ..isdl.visitor import Path, node_at, walk


class TransformError(Exception):
    """The transformation's applicability conditions do not hold here."""


@dataclass(frozen=True)
class TransformResult:
    """Outcome of one successful transformation step."""

    description: ast.Description
    constraints: Tuple[Constraint, ...] = ()
    note: str = ""
    #: True for augment-producing steps — they construct an instruction
    #: *variant* rather than preserving semantics of the original.
    is_augment: bool = False


class Context:
    """Dataflow-backed view of one description, cached per routine."""

    def __init__(self, description: ast.Description):
        self.description = description
        self.effects = EffectAnalysis(description)
        self._cfgs: Dict[str, Cfg] = {}
        self._liveness: Dict[str, Liveness] = {}
        self._reaching: Dict[str, ReachingDefinitions] = {}
        self._copies: Dict[str, AvailableCopies] = {}
        self._routine_paths: Dict[str, Path] = {}
        for path, node in walk(description):
            if isinstance(node, ast.RoutineDecl):
                self._routine_paths[node.name] = path

    # -- navigation ---------------------------------------------------

    def node(self, path: Path) -> object:
        return node_at(self.description, path)

    def parent(self, path: Path) -> Tuple[Path, object]:
        if not path:
            raise TransformError("the root has no parent")
        parent_path = path[:-1]
        return parent_path, node_at(self.description, parent_path)

    def routine_path(self, name: str) -> Path:
        try:
            return self._routine_paths[name]
        except KeyError:
            raise TransformError(f"no routine named {name!r}")

    def enclosing_routine(self, path: Path) -> Tuple[ast.RoutineDecl, Path]:
        """The routine whose body contains ``path``."""
        for length in range(len(path), -1, -1):
            node = node_at(self.description, path[:length])
            if isinstance(node, ast.RoutineDecl):
                return node, path[:length]
        raise TransformError(f"path {path!r} is not inside a routine")

    def enclosing_repeat(self, path: Path) -> Tuple[ast.Repeat, Path]:
        """The innermost ``repeat`` containing ``path``."""
        for length in range(len(path) - 1, -1, -1):
            node = node_at(self.description, path[:length])
            if isinstance(node, ast.Repeat):
                return node, path[:length]
        raise TransformError(f"path {path!r} is not inside a repeat loop")

    def stmt_position(self, path: Path) -> Tuple[Path, str, int]:
        """Decompose a statement path into (parent path, field, index)."""
        if not path or path[-1][1] is None:
            raise TransformError(f"path {path!r} does not address a list element")
        field, index = path[-1]
        return path[:-1], field, index

    # -- dataflow (lazy per routine) ------------------------------------

    def cfg(self, routine_name: str) -> Cfg:
        if routine_name not in self._cfgs:
            base = self.routine_path(routine_name)
            routine = node_at(self.description, base)
            self._cfgs[routine_name] = build_cfg(routine, base)
        return self._cfgs[routine_name]

    def liveness(self, routine_name: str) -> Liveness:
        if routine_name not in self._liveness:
            self._liveness[routine_name] = Liveness(
                self.cfg(routine_name), self.effects
            )
        return self._liveness[routine_name]

    def reaching(self, routine_name: str) -> ReachingDefinitions:
        if routine_name not in self._reaching:
            names = [decl.name for decl in self.description.registers()]
            routine = self.description.routine(routine_name)
            names.extend(routine.params)
            names.append(routine.name)
            self._reaching[routine_name] = ReachingDefinitions(
                self.cfg(routine_name), self.effects, names
            )
        return self._reaching[routine_name]

    def copies(self, routine_name: str) -> AvailableCopies:
        if routine_name not in self._copies:
            self._copies[routine_name] = AvailableCopies(
                self.cfg(routine_name), self.effects
            )
        return self._copies[routine_name]

    # -- common guard helpers -------------------------------------------

    def expr_is_pure(self, expr: ast.Expr) -> bool:
        return self.effects.expr_is_pure(expr)

    def is_boolean_valued(self, expr: ast.Expr) -> bool:
        """True when ``expr`` always evaluates to 0 or 1.

        Needed by identities like ``e and 1 = e`` that hold only for
        boolean-valued ``e``.  Conservative: constants 0/1, one-bit
        registers, comparison/logical operators, and ``not``.
        """
        if isinstance(expr, ast.Const):
            return expr.value in (0, 1)
        if isinstance(expr, ast.Var):
            try:
                width = self.description.register(expr.name).width
            except KeyError:
                return False
            return isinstance(width, ast.BitWidth) and width.bits == 1
        if isinstance(expr, ast.BinOp):
            return expr.op in ("=", "<>", "<", "<=", ">", ">=", "and", "or")
        if isinstance(expr, ast.UnOp):
            return expr.op == "not"
        return False

    def defs_of_global(self, name: str) -> List[Tuple[Path, ast.Assign]]:
        """Every assignment to global ``name`` anywhere in the description."""
        found = []
        for path, node in walk(self.description):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.target, ast.Var)
                and node.target.name == name
            ):
                found.append((path, node))
            if isinstance(node, ast.Input) and name in node.names:
                found.append((path, node))
        return found

    def uses_of_global(self, name: str) -> List[Path]:
        """Paths of every ``Var`` *read* of global ``name``.

        Assignment targets are definitions, not uses, and are excluded.
        """
        uses = []
        for path, node in walk(self.description):
            if isinstance(node, ast.Assign) and node.target == ast.Var(name):
                # Recurse only into the RHS; the target is a def.
                for sub_path, sub in walk(node.expr, path + (("expr", None),)):
                    if isinstance(sub, ast.Var) and sub.name == name:
                        uses.append(sub_path)
            elif isinstance(node, ast.Var) and node.name == name:
                if path and path[-1] == ("target", None):
                    continue
                uses.append(path)
        # walk() visits nested nodes repeatedly from each ancestor; paths
        # are unique, so dedupe while keeping order.
        seen = set()
        unique = []
        for use in uses:
            if use not in seen:
                seen.add(use)
                unique.append(use)
        return unique


class Transformation:
    """Base class for all transformations.

    Subclasses set ``name``, ``category`` (one of the paper's seven), a
    docstring, and implement :meth:`apply`.  ``apply`` must raise
    :class:`TransformError` when the applicability conditions fail and
    must never mutate the input description.
    """

    name: str = ""
    category: str = ""

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        raise NotImplementedError

    # Convenience used by many subclasses.
    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise TransformError(message)


#: The paper's seven transformation categories (§5).
CATEGORIES = (
    "local",
    "code-motion",
    "loop",
    "global",
    "routine-structuring",
    "constraint-assertion",
    "augment",
)
