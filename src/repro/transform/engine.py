"""The transformation session: apply, record, export, and replay traces.

A :class:`Session` plays the role of the paper's interactive monitor:
the "user" (here: a recorded analysis script) positions a cursor by
pattern and names a transformation; the session verifies applicability
via the transformation's guards, applies it, and records the step.
Every analysis in :mod:`repro.analyses` is such a script, and the step
count the session accumulates is what Table 2 reports.

Since the provenance refactor each recorded step is a
:class:`TraceEvent` — a versioned, JSON-serializable record carrying
the transformation name, anchor path, parameters, the constraints the
step emitted, its wall time, and SHA-256 digests of the description
before and after the step.  A session's full history exports as a
:class:`SessionTrace` (:meth:`Session.trace`) and any trace replays
against a fresh description with per-step digest checking
(:meth:`Session.replay`): a replay whose digests drift from the
recorded ones — the script changed, the ISDL description changed, or a
transformation stopped being deterministic — raises
:class:`ReplayDivergenceError` naming the exact step.

Locating nodes by *pattern* rather than by raw path keeps scripts
readable and robust: ``session.expr("(al - fetch()) = 0")`` finds the
unique subtree structurally equal to the parsed pattern (comments
ignored); ``occurrence=`` disambiguates repeated subtrees in walk
(preorder) order.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union, get_args

from ..constraints import (
    Constraint,
    LanguageFact,
    constraint_from_dict,
    constraint_to_dict,
)
from ..isdl import (
    ast,
    description_digest,
    format_expr,
    format_stmts,
    parse_expr,
    parse_stmts,
)
from ..isdl.visitor import Path, strip_comments, walk
from .base import Context, TransformError, TransformResult
from .registry import get

# Import all transformation modules so the registry is populated the
# moment anyone builds a session.
from . import (  # noqa: F401  (imported for registration side effects)
    augment,
    constraints_t,
    extra_global,
    extra_local,
    extra_loops,
    globals_,
    local,
    loops,
    motion,
    structuring,
)

#: Version tag carried by every serialized trace.  Bump on any change
#: to the event schema or the digest definition — stored traces from
#: an older schema must never be replayed against a newer engine.
TRACE_SCHEMA = "repro.trace/1"

_STMT_TYPES = get_args(ast.Stmt)
_EXPR_TYPES = get_args(ast.Expr)


class ReplayDivergenceError(Exception):
    """A replayed trace diverged from its recorded digests.

    Deliberately *not* a :class:`TransformError`: the analysis driver
    treats transform errors as documented paper failures, while a
    divergence means the recorded derivation no longer proves what it
    proved — scripts and descriptions have drifted apart.
    """

    def __init__(
        self,
        label: str,
        step: int,
        transform: str,
        phase: str,
        expected: str,
        actual: str,
    ):
        self.label = label
        self.step = step
        self.transform = transform
        self.phase = phase
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"replay of {label} diverged at step {step} ({transform}): "
            f"description digest {phase} the step is {actual[:12]}..., "
            f"trace records {expected[:12]}..."
        )


def _param_to_json(value: object) -> object:
    """One step parameter -> a JSON-representable value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (tuple, list)):
        items = tuple(value)
        if items and all(isinstance(item, _STMT_TYPES) for item in items):
            return {"__stmts__": format_stmts(items)}
        if items and all(isinstance(item, LanguageFact) for item in items):
            return {
                "__facts__": [
                    {"name": fact.name, "description": fact.description}
                    for fact in items
                ]
            }
        if all(item is None or isinstance(item, (bool, int, str)) for item in items):
            return {"__tuple__": list(items)}
    raise TypeError(f"step parameter is not trace-serializable: {value!r}")


def _param_from_json(value: object) -> object:
    """Inverse of :func:`_param_to_json`."""
    if isinstance(value, dict):
        if "__stmts__" in value:
            return parse_stmts(value["__stmts__"])
        if "__facts__" in value:
            return tuple(
                LanguageFact(name=fact["name"], description=fact["description"])
                for fact in value["__facts__"]
            )
        if "__tuple__" in value:
            return tuple(value["__tuple__"])
        raise ValueError(f"unknown parameter encoding: {value!r}")
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One applied transformation step, serializable and replayable."""

    index: int
    transform: str
    path: Path
    note: str
    is_augment: bool
    constraints: Tuple[Constraint, ...] = ()
    #: keyword parameters the step was applied with (fix_operand's
    #: operand/value, augment statement tuples, fresh names, ...).
    params: Tuple[Tuple[str, object], ...] = ()
    #: SHA-256 of the description's printed form before/after the step.
    digest_before: str = ""
    digest_after: str = ""
    #: wall-clock seconds the step took.  Observability only — always
    #: excluded from trace digests (see repro.provenance.schema).
    duration: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form; round-trips through :meth:`from_dict`."""
        return {
            "index": self.index,
            "transform": self.transform,
            "path": [[field, index] for field, index in self.path],
            "note": self.note,
            "is_augment": self.is_augment,
            "constraints": [
                constraint_to_dict(constraint) for constraint in self.constraints
            ],
            "params": {name: _param_to_json(value) for name, value in self.params},
            "digest_before": self.digest_before,
            "digest_after": self.digest_after,
            "duration": round(self.duration, 6),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceEvent":
        return cls(
            index=int(payload["index"]),
            transform=str(payload["transform"]),
            path=tuple(
                (field, None if index is None else int(index))
                for field, index in payload["path"]
            ),
            note=str(payload["note"]),
            is_augment=bool(payload["is_augment"]),
            constraints=tuple(
                constraint_from_dict(entry) for entry in payload["constraints"]
            ),
            params=tuple(
                sorted(
                    (
                        (name, _param_from_json(value))
                        for name, value in payload["params"].items()
                    ),
                    key=lambda kv: kv[0],
                )
            ),
            digest_before=str(payload["digest_before"]),
            digest_after=str(payload["digest_after"]),
            duration=float(payload.get("duration", 0.0)),
        )


#: Backwards-compatible alias: a step record *is* a trace event now.
StepRecord = TraceEvent


def format_trace_log(label: str, events: Sequence[TraceEvent]) -> str:
    """The human-readable step log for a sequence of trace events."""
    lines = [f"session {label}: {len(events)} step(s)"]
    for event in events:
        marker = " [augment]" if event.is_augment else ""
        lines.append(f"  {event.index:3d}. {event.transform}{marker}: {event.note}")
        for constraint in event.constraints:
            lines.append(f"       -> constraint: {constraint.describe()}")
    return "\n".join(lines)


@dataclass(frozen=True)
class SessionTrace:
    """One session's exported derivation: digests plus every event."""

    label: str
    initial_digest: str
    final_digest: str
    events: Tuple[TraceEvent, ...] = ()

    @property
    def steps(self) -> int:
        return len(self.events)

    def log(self) -> str:
        return format_trace_log(self.label, self.events)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TRACE_SCHEMA,
            "label": self.label,
            "initial_digest": self.initial_digest,
            "final_digest": self.final_digest,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SessionTrace":
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"unsupported trace schema {schema!r}; expected {TRACE_SCHEMA!r}"
            )
        return cls(
            label=str(payload["label"]),
            initial_digest=str(payload["initial_digest"]),
            final_digest=str(payload["final_digest"]),
            events=tuple(
                TraceEvent.from_dict(entry) for entry in payload["events"]
            ),
        )


class Session:
    """Transformation session over one description."""

    def __init__(self, description: ast.Description, label: str = ""):
        self.original = description
        self.description = description
        self.label = label or description.name
        self.history: List[TraceEvent] = []
        self.constraints: List[Constraint] = []
        self.augmented = False
        self._digest = description_digest(description)
        self._initial_digest = self._digest

    # ------------------------------------------------------------------
    # locating nodes

    @staticmethod
    def _pattern_text(node: object) -> str:
        """Canonical text of a pattern node, for error messages."""
        if isinstance(node, _STMT_TYPES):
            return format_stmts([node]).strip()
        if isinstance(node, _EXPR_TYPES):
            return format_expr(node)
        return repr(node)

    def _nearest_miss(self, wanted: object) -> Optional[str]:
        """The closest same-family node text to a pattern that matched nothing."""
        if isinstance(wanted, _STMT_TYPES):
            family: tuple = _STMT_TYPES
        elif isinstance(wanted, _EXPR_TYPES):
            family = _EXPR_TYPES
        else:
            family = (type(wanted),)
        wanted_text = self._pattern_text(wanted)
        best: Optional[str] = None
        best_score = -1.0
        for _path, node in walk(self.description):
            if not isinstance(node, family):
                continue
            text = self._pattern_text(strip_comments(node))
            score = difflib.SequenceMatcher(None, wanted_text, text).ratio()
            if score > best_score:
                best, best_score = text, score
        return best

    def _no_match_error(self, wanted: object) -> TransformError:
        message = (
            f"{self.label}: no node matches the pattern "
            f"{self._pattern_text(wanted)!r}"
        )
        nearest = self._nearest_miss(wanted)
        if nearest is not None:
            message += f"; nearest miss: {nearest!r}"
        return TransformError(message)

    def _find(self, pattern, occurrence: int = 0, kinds=None) -> Path:
        wanted = strip_comments(pattern)
        matches = []
        for path, node in walk(self.description):
            if kinds is not None and not isinstance(node, kinds):
                continue
            if strip_comments(node) == wanted:
                matches.append(path)
        if not matches:
            raise self._no_match_error(wanted)
        if occurrence >= len(matches):
            raise TransformError(
                f"{self.label}: pattern {self._pattern_text(wanted)!r} has "
                f"only {len(matches)} match(es), "
                f"occurrence {occurrence} requested"
            )
        return matches[occurrence]

    def expr(self, text: str, occurrence: int = 0) -> Path:
        """Path of the expression structurally equal to ``text``.

        Bare assignment targets are skipped — a pattern like ``"rf"``
        means a *use* of ``rf``, not the left side of ``rf <- 1``.
        """
        wanted = strip_comments(parse_expr(text))
        matches = []
        for path, node in walk(self.description):
            if path and path[-1] == ("target", None):
                continue
            if strip_comments(node) == wanted:
                matches.append(path)
        if not matches:
            raise self._no_match_error(wanted)
        if occurrence >= len(matches):
            raise TransformError(
                f"{self.label}: expression pattern {text!r} has "
                f"{len(matches)} match(es), occurrence {occurrence} requested"
            )
        return matches[occurrence]

    def stmt(self, text: str, occurrence: int = 0) -> Path:
        """Path of the statement structurally equal to ``text``."""
        stmts = parse_stmts(text)
        if len(stmts) != 1:
            raise TransformError("stmt pattern must be a single statement")
        return self._find(stmts[0], occurrence)

    def decl(self, name: str) -> Path:
        """Path of the register declaration named ``name``."""
        for path, node in walk(self.description):
            if isinstance(node, ast.RegDecl) and node.name == name:
                return path
        raise TransformError(f"{self.label}: no register declaration {name!r}")

    def routine_decl(self, name: str) -> Path:
        """Path of the routine declaration named ``name``."""
        for path, node in walk(self.description):
            if isinstance(node, ast.RoutineDecl) and node.name == name:
                return path
        raise TransformError(f"{self.label}: no routine declaration {name!r}")

    def entry_path(self) -> Path:
        return self.routine_decl(self.description.entry_routine().name)

    # ------------------------------------------------------------------
    # applying steps

    def apply(self, transform_name: str, at: Optional[Path] = None, **params) -> TransformResult:
        """Apply one transformation; raises TransformError when invalid."""
        transformation = get(transform_name)
        ctx = Context(self.description)
        started = time.perf_counter()
        result = transformation.apply(ctx, at or (), **params)
        duration = time.perf_counter() - started
        digest_before = self._digest
        self.description = result.description
        self._digest = description_digest(result.description)
        self.constraints.extend(result.constraints)
        self.augmented = self.augmented or result.is_augment
        self.history.append(
            TraceEvent(
                index=len(self.history) + 1,
                transform=transform_name,
                path=at or (),
                note=result.note,
                is_augment=result.is_augment,
                constraints=result.constraints,
                params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
                digest_before=digest_before,
                digest_after=self._digest,
                duration=duration,
            )
        )
        return result

    def trace(self) -> SessionTrace:
        """Export the session's derivation as a serializable trace."""
        return SessionTrace(
            label=self.label,
            initial_digest=self._initial_digest,
            final_digest=self._digest,
            events=tuple(self.history),
        )

    def replay(
        self,
        trace: Union[None, SessionTrace, Sequence[TraceEvent]] = None,
        check_digests: bool = True,
    ) -> "Session":
        """Re-apply a recorded trace to this session's original description.

        With no argument, replays this session's own history — recorded
        paths were resolved against the tree state at each step and
        every transformation is deterministic, so the replay reproduces
        the final description exactly (useful for auditing a script's
        effect without its pattern-locating logic).

        Given a :class:`SessionTrace` (typically loaded from the
        provenance store), the events are re-applied against the
        *current* original description and every recorded digest is
        checked: a mismatch raises :class:`ReplayDivergenceError`
        naming the exact step, which is how drift between scripts and
        ISDL descriptions is detected.  Returns the fresh session.
        """
        if trace is None:
            events: Tuple[TraceEvent, ...] = tuple(self.history)
            initial_digest: Optional[str] = self._initial_digest
        elif isinstance(trace, SessionTrace):
            events = trace.events
            initial_digest = trace.initial_digest
        else:
            events = tuple(trace)
            initial_digest = None
        fresh = Session(self.original, label=f"{self.label} (replay)")
        if (
            check_digests
            and initial_digest
            and fresh._digest != initial_digest
        ):
            raise ReplayDivergenceError(
                label=fresh.label,
                step=0,
                transform="(source description)",
                phase="before",
                expected=initial_digest,
                actual=fresh._digest,
            )
        for event in events:
            if (
                check_digests
                and event.digest_before
                and fresh._digest != event.digest_before
            ):
                raise ReplayDivergenceError(
                    label=fresh.label,
                    step=event.index,
                    transform=event.transform,
                    phase="before",
                    expected=event.digest_before,
                    actual=fresh._digest,
                )
            fresh.apply(event.transform, at=event.path, **dict(event.params))
            if (
                check_digests
                and event.digest_after
                and fresh._digest != event.digest_after
            ):
                raise ReplayDivergenceError(
                    label=fresh.label,
                    step=event.index,
                    transform=event.transform,
                    phase="after",
                    expected=event.digest_after,
                    actual=fresh._digest,
                )
        return fresh

    def apply_stmts(self, transform_name: str, stmts_text: str, **params) -> TransformResult:
        """Apply a transformation that takes a ``stmts=`` parameter."""
        return self.apply(
            transform_name, stmts=parse_stmts(stmts_text), **params
        )

    # ------------------------------------------------------------------
    # reporting

    @property
    def steps(self) -> int:
        return len(self.history)

    def constraint_summary(self) -> List[str]:
        return [constraint.describe() for constraint in self.constraints]

    def log(self) -> str:
        """Human-readable step log."""
        return format_trace_log(self.label, self.history)
