"""The transformation session: apply, record, and replay steps.

A :class:`Session` plays the role of the paper's interactive monitor:
the "user" (here: a recorded analysis script) positions a cursor by
pattern and names a transformation; the session verifies applicability
via the transformation's guards, applies it, and logs the step.  Every
analysis in :mod:`repro.analyses` is such a script, and the step count
the session accumulates is what Table 2 reports.

Locating nodes by *pattern* rather than by raw path keeps scripts
readable and robust: ``session.expr("(al - fetch()) = 0")`` finds the
unique subtree structurally equal to the parsed pattern (comments
ignored); ``occurrence=`` disambiguates repeated subtrees in walk
(preorder) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints import Constraint
from ..isdl import ast, parse_expr, parse_stmts
from ..isdl.visitor import Path, strip_comments, walk
from .base import Context, TransformError, TransformResult
from .registry import get

# Import all transformation modules so the registry is populated the
# moment anyone builds a session.
from . import (  # noqa: F401  (imported for registration side effects)
    augment,
    constraints_t,
    extra_global,
    extra_local,
    extra_loops,
    globals_,
    local,
    loops,
    motion,
    structuring,
)


@dataclass(frozen=True)
class StepRecord:
    """One applied transformation step."""

    index: int
    transform: str
    path: Path
    note: str
    is_augment: bool
    constraints: Tuple[Constraint, ...] = ()
    #: keyword parameters the step was applied with (fix_operand's
    #: operand/value, augment statement tuples, fresh names, ...).
    params: Tuple[Tuple[str, object], ...] = ()


class Session:
    """Transformation session over one description."""

    def __init__(self, description: ast.Description, label: str = ""):
        self.original = description
        self.description = description
        self.label = label or description.name
        self.history: List[StepRecord] = []
        self.constraints: List[Constraint] = []
        self.augmented = False

    # ------------------------------------------------------------------
    # locating nodes

    def _find(self, pattern, occurrence: int = 0, kinds=None) -> Path:
        wanted = strip_comments(pattern)
        matches = []
        for path, node in walk(self.description):
            if kinds is not None and not isinstance(node, kinds):
                continue
            if strip_comments(node) == wanted:
                matches.append(path)
        if not matches:
            raise TransformError(
                f"{self.label}: no node matches the pattern"
            )
        if occurrence >= len(matches):
            raise TransformError(
                f"{self.label}: only {len(matches)} matches, "
                f"occurrence {occurrence} requested"
            )
        return matches[occurrence]

    def expr(self, text: str, occurrence: int = 0) -> Path:
        """Path of the expression structurally equal to ``text``.

        Bare assignment targets are skipped — a pattern like ``"rf"``
        means a *use* of ``rf``, not the left side of ``rf <- 1``.
        """
        wanted = strip_comments(parse_expr(text))
        matches = []
        for path, node in walk(self.description):
            if path and path[-1] == ("target", None):
                continue
            if strip_comments(node) == wanted:
                matches.append(path)
        if occurrence >= len(matches):
            raise TransformError(
                f"{self.label}: expression pattern has {len(matches)} "
                f"match(es), occurrence {occurrence} requested"
            )
        return matches[occurrence]

    def stmt(self, text: str, occurrence: int = 0) -> Path:
        """Path of the statement structurally equal to ``text``."""
        stmts = parse_stmts(text)
        if len(stmts) != 1:
            raise TransformError("stmt pattern must be a single statement")
        return self._find(stmts[0], occurrence)

    def decl(self, name: str) -> Path:
        """Path of the register declaration named ``name``."""
        for path, node in walk(self.description):
            if isinstance(node, ast.RegDecl) and node.name == name:
                return path
        raise TransformError(f"{self.label}: no register declaration {name!r}")

    def routine_decl(self, name: str) -> Path:
        """Path of the routine declaration named ``name``."""
        for path, node in walk(self.description):
            if isinstance(node, ast.RoutineDecl) and node.name == name:
                return path
        raise TransformError(f"{self.label}: no routine declaration {name!r}")

    def entry_path(self) -> Path:
        return self.routine_decl(self.description.entry_routine().name)

    # ------------------------------------------------------------------
    # applying steps

    def apply(self, transform_name: str, at: Optional[Path] = None, **params) -> TransformResult:
        """Apply one transformation; raises TransformError when invalid."""
        transformation = get(transform_name)
        ctx = Context(self.description)
        result = transformation.apply(ctx, at or (), **params)
        self.description = result.description
        self.constraints.extend(result.constraints)
        self.augmented = self.augmented or result.is_augment
        self.history.append(
            StepRecord(
                index=len(self.history) + 1,
                transform=transform_name,
                path=at or (),
                note=result.note,
                is_augment=result.is_augment,
                constraints=result.constraints,
                params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
            )
        )
        return result

    def replay(self) -> "Session":
        """Re-apply the recorded history to the original description.

        The recorded paths were resolved against the tree state at each
        step, and every transformation is deterministic, so the replay
        reproduces this session's final description exactly.  Returns
        the fresh session (useful for auditing a script's effect
        without its pattern-locating logic).
        """
        fresh = Session(self.original, label=f"{self.label} (replay)")
        for record in self.history:
            fresh.apply(record.transform, at=record.path, **dict(record.params))
        return fresh

    def apply_stmts(self, transform_name: str, stmts_text: str, **params) -> TransformResult:
        """Apply a transformation that takes a ``stmts=`` parameter."""
        return self.apply(
            transform_name, stmts=parse_stmts(stmts_text), **params
        )

    # ------------------------------------------------------------------
    # reporting

    @property
    def steps(self) -> int:
        return len(self.history)

    def constraint_summary(self) -> List[str]:
        return [constraint.describe() for constraint in self.constraints]

    def log(self) -> str:
        """Human-readable step log."""
        lines = [f"session {self.label}: {self.steps} step(s)"]
        for record in self.history:
            marker = " [augment]" if record.is_augment else ""
            lines.append(f"  {record.index:3d}. {record.transform}{marker}: {record.note}")
            for constraint in record.constraints:
                lines.append(f"       -> constraint: {constraint.describe()}")
        return "\n".join(lines)
