"""Routine-structuring transformations.

These "change how a description is structured into different routines"
(paper §5).  Descriptions from different sources factor their code
differently — one writes a ``fetch()`` access routine, another inlines
the memory read — and the matcher requires call structure to line up,
so analyses fold or raise routine boundaries as needed.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..isdl import ast
from ..isdl.visitor import Path, insert_at, node_at, remove_at, replace_at, splice_at, walk
from .base import Context, Transformation, TransformError, TransformResult
from .registry import register


def _substitute_return_slot(body: Tuple[ast.Stmt, ...], routine_name: str, temp: str):
    """Rewrite references to a routine's return slot to a temp variable."""

    def rewrite(node):
        if isinstance(node, ast.Var) and node.name == routine_name:
            return ast.Var(temp)
        return node

    def walk_stmt(stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.Var) and target.name == routine_name:
                target = ast.Var(temp)
            elif isinstance(target, ast.MemRead):
                target = ast.MemRead(walk_expr(target.addr))
            return dataclasses.replace(
                stmt, target=target, expr=walk_expr(stmt.expr)
            )
        if isinstance(stmt, ast.If):
            return dataclasses.replace(
                stmt,
                cond=walk_expr(stmt.cond),
                then=tuple(walk_stmt(inner) for inner in stmt.then),
                els=tuple(walk_stmt(inner) for inner in stmt.els),
            )
        if isinstance(stmt, ast.Repeat):
            return dataclasses.replace(
                stmt, body=tuple(walk_stmt(inner) for inner in stmt.body)
            )
        if isinstance(stmt, (ast.ExitWhen, ast.Assert)):
            return dataclasses.replace(stmt, cond=walk_expr(stmt.cond))
        if isinstance(stmt, ast.Output):
            return dataclasses.replace(
                stmt, exprs=tuple(walk_expr(expr) for expr in stmt.exprs)
            )
        return stmt

    def walk_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Var):
            return rewrite(expr)
        if isinstance(expr, ast.MemRead):
            return ast.MemRead(walk_expr(expr.addr))
        if isinstance(expr, ast.Call):
            return dataclasses.replace(
                expr, args=tuple(walk_expr(arg) for arg in expr.args)
            )
        if isinstance(expr, ast.BinOp):
            return dataclasses.replace(
                expr, left=walk_expr(expr.left), right=walk_expr(expr.right)
            )
        if isinstance(expr, ast.UnOp):
            return dataclasses.replace(expr, operand=walk_expr(expr.operand))
        return expr

    return tuple(walk_stmt(stmt) for stmt in body)


@register
class InlineCall(Transformation):
    """Inline ``x <- f()`` where ``f`` has no parameters.

    The routine body is spliced in place of the assignment with the
    return slot renamed to a fresh temp (``temp=`` parameter), followed
    by ``x <- temp``.  The body may not contain ``input``, ``output``,
    or a top-level ``exit_when`` (it would escape into the caller's
    loop, changing semantics).
    """

    name = "inline_call"
    category = "routine-structuring"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        temp = params.get("temp")
        self._require(bool(temp), "inline_call needs temp=...")
        node = ctx.node(path)
        self._require(
            isinstance(node, ast.Assign) and isinstance(node.expr, ast.Call),
            "needs an assignment whose whole right side is a call",
        )
        call = node.expr
        self._require(not call.args, "only parameterless calls can be inlined")
        routine = ctx.description.routine(call.name)
        self._require(
            not ctx.description.has_register(temp)
            and all(r.name != temp for r in ctx.description.routines()),
            f"{temp!r} is not a fresh name",
        )
        from .motion import has_escaping_exit

        for stmt in routine.body:
            self._require(
                not isinstance(stmt, (ast.Input, ast.Output)),
                "routine with input/output cannot be inlined",
            )
            self._require(
                not has_escaping_exit(stmt),
                "routine body has a top-level exit_when",
            )
        inlined = _substitute_return_slot(routine.body, routine.name, temp)
        replacement = inlined + (
            dataclasses.replace(node, expr=ast.Var(temp)),
        )
        description = splice_at(ctx.description, path, replacement)
        from .loops import declare_register

        width = routine.width if routine.width is not None else ast.TypeWidth("integer")
        description = declare_register(
            description,
            ast.RegDecl(name=temp, width=width, comment="inlined return value"),
        )
        return TransformResult(
            description=description,
            note=f"inlined call to {call.name}",
        )


@register
class ExtractAccessRoutine(Transformation):
    """Outline ``x <- Mb[p]; p <- p + 1`` into an access routine.

    Parameters: ``routine`` (fresh routine name).  The two adjacent
    statements at ``path`` become ``x <- routine()`` and a new routine
    ``routine() := begin routine <- Mb[p]; p <- p + 1 end`` is declared
    in the section holding the enclosing routine.  This raises an
    inlined description to the access-routine style used by machine
    descriptions (``fetch()``), so the matcher can pair them.
    """

    name = "extract_access_routine"
    category = "routine-structuring"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        routine_name = params.get("routine")
        self._require(bool(routine_name), "extract_access_routine needs routine=...")
        self._require(
            not ctx.description.has_register(routine_name)
            and all(r.name != routine_name for r in ctx.description.routines()),
            f"{routine_name!r} is not a fresh name",
        )
        parent_path, field, index = ctx.stmt_position(path)
        parent = node_at(ctx.description, parent_path)
        siblings = getattr(parent, field)
        self._require(index + 1 < len(siblings), "needs two adjacent statements")
        load, bump = siblings[index], siblings[index + 1]
        self._require(
            isinstance(load, ast.Assign)
            and isinstance(load.target, ast.Var)
            and isinstance(load.expr, ast.MemRead)
            and isinstance(load.expr.addr, ast.Var),
            "first statement must be 'x <- Mb[p]'",
        )
        pointer = load.expr.addr.name
        expected_bump = ast.Assign(
            target=ast.Var(pointer),
            expr=ast.BinOp("+", ast.Var(pointer), ast.Const(1)),
        )
        self._require(
            isinstance(bump, ast.Assign)
            and bump.target == expected_bump.target
            and bump.expr == expected_bump.expr,
            "second statement must be 'p <- p + 1'",
        )
        try:
            target_width = ctx.description.register(load.target.name).width
        except KeyError:
            target_width = ast.TypeWidth("integer")
        new_routine = ast.RoutineDecl(
            name=routine_name,
            params=(),
            width=target_width,
            body=(
                ast.Assign(
                    target=ast.Var(routine_name), expr=load.expr
                ),
                dataclasses.replace(bump, comment=None),
            ),
            comment="extracted access routine",
        )
        call_stmt = dataclasses.replace(
            load, expr=ast.Call(routine_name, ()), comment=load.comment
        )
        new_siblings = siblings[:index] + (call_stmt,) + siblings[index + 2:]
        new_parent = dataclasses.replace(parent, **{field: new_siblings})
        description = replace_at(ctx.description, parent_path, new_parent)
        # Declare the routine in the section containing the enclosing
        # routine, right before it (matching the paper's SOURCE.ACCESS
        # placement of access routines).
        _, enclosing_path = ctx.enclosing_routine(path)
        description = insert_at(description, enclosing_path, new_routine)
        return TransformResult(
            description=description,
            note=f"extracted access routine {routine_name}",
        )


@register
class RemoveUnusedRoutine(Transformation):
    """Remove a routine that is never called (and is not the entry)."""

    name = "remove_unused_routine"
    category = "routine-structuring"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        node = ctx.node(path)
        self._require(isinstance(node, ast.RoutineDecl), "needs a routine")
        entry = ctx.description.entry_routine()
        self._require(node.name != entry.name, "cannot remove the entry routine")
        for _, sub in walk(ctx.description):
            if isinstance(sub, ast.Call) and sub.name == node.name:
                raise TransformError(f"routine {node.name!r} is still called")
        return TransformResult(
            description=remove_at(ctx.description, path),
            note=f"removed unused routine {node.name}",
        )


@register
class RenameRoutine(Transformation):
    """Alpha-rename a routine and all of its call sites."""

    name = "rename_routine"
    category = "routine-structuring"

    def apply(self, ctx: Context, path: Path, **params) -> TransformResult:
        new_name = params.get("new_name")
        self._require(bool(new_name), "rename_routine needs new_name=...")
        node = ctx.node(path)
        self._require(isinstance(node, ast.RoutineDecl), "needs a routine")
        old_name = node.name
        self._require(
            not ctx.description.has_register(new_name)
            and all(r.name != new_name for r in ctx.description.routines()),
            f"{new_name!r} is not a fresh name",
        )
        from .globals_ import _rewrite_everywhere

        def rename(sub):
            if isinstance(sub, ast.Call) and sub.name == old_name:
                return dataclasses.replace(sub, name=new_name)
            if isinstance(sub, ast.RoutineDecl) and sub.name == old_name:
                body = _substitute_return_slot(sub.body, old_name, new_name)
                return dataclasses.replace(sub, name=new_name, body=body)
            return None

        description = _rewrite_everywhere(ctx.description, rename)
        return TransformResult(
            description=description,
            note=f"renamed routine {old_name} to {new_name}",
        )
