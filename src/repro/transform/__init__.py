"""The transformation library and engine.

Source-to-source transformations over ISDL descriptions, organized in
the paper's seven categories (§5): local, code-motion, loop, global,
routine-structuring, constraint-and-assertion, and augment-producing.
The :class:`~repro.transform.engine.Session` applies transformations at
cursor positions, verifying each one's dataflow guards — the analysis
scripts in :mod:`repro.analyses` drive it.
"""

from .base import CATEGORIES, Context, Transformation, TransformError, TransformResult
from .engine import (
    TRACE_SCHEMA,
    ReplayDivergenceError,
    Session,
    SessionTrace,
    StepRecord,
    TraceEvent,
    format_trace_log,
)
from .registry import all_transformations, by_category, get, library_size

__all__ = [
    "CATEGORIES",
    "Context",
    "Transformation",
    "TransformError",
    "TransformResult",
    "TRACE_SCHEMA",
    "ReplayDivergenceError",
    "Session",
    "SessionTrace",
    "StepRecord",
    "TraceEvent",
    "format_trace_log",
    "all_transformations",
    "by_category",
    "get",
    "library_size",
]
