"""The analysis-trace schema: serialization and content digests.

An :class:`AnalysisTrace` packages both sides of one analysis — the
operator session's trace and the instruction session's trace — with
the Table 2 identity of the analysis.  It serializes to canonical JSON
and digests to a single SHA-256 that identifies the *derivation*:
same descriptions, same steps, same parameters, same digests ⇒ same
trace digest.  Per-step wall times are observability data and are
stripped before digesting, so two runs of the same script on machines
of different speeds produce the same trace digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..transform import SessionTrace

#: Version tag for the two-sided analysis trace container.
ANALYSIS_TRACE_SCHEMA = "repro.analysis-trace/1"


def canonical_json(payload: object) -> str:
    """The one JSON text a payload canonicalizes to (digest input)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def strip_durations(payload: object) -> object:
    """A deep copy of ``payload`` with every ``duration`` key removed."""
    if isinstance(payload, dict):
        return {
            key: strip_durations(value)
            for key, value in payload.items()
            if key != "duration"
        }
    if isinstance(payload, list):
        return [strip_durations(item) for item in payload]
    return payload


@dataclass(frozen=True)
class AnalysisTrace:
    """Both sessions' derivations plus the analysis identity."""

    machine: str
    instruction: str
    language: str
    operation: str
    operator_name: str
    operator: SessionTrace
    instruction_trace: SessionTrace

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": ANALYSIS_TRACE_SCHEMA,
            "machine": self.machine,
            "instruction": self.instruction,
            "language": self.language,
            "operation": self.operation,
            "operator_name": self.operator_name,
            "operator": self.operator.to_dict(),
            "instruction_trace": self.instruction_trace.to_dict(),
            "digest": self.digest(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AnalysisTrace":
        schema = payload.get("schema")
        if schema != ANALYSIS_TRACE_SCHEMA:
            raise ValueError(
                f"unsupported analysis-trace schema {schema!r}; "
                f"expected {ANALYSIS_TRACE_SCHEMA!r}"
            )
        return cls(
            machine=str(payload["machine"]),
            instruction=str(payload["instruction"]),
            language=str(payload["language"]),
            operation=str(payload["operation"]),
            operator_name=str(payload["operator_name"]),
            operator=SessionTrace.from_dict(payload["operator"]),
            instruction_trace=SessionTrace.from_dict(
                payload["instruction_trace"]
            ),
        )

    @property
    def steps(self) -> int:
        return self.operator.steps + self.instruction_trace.steps

    def log(self) -> str:
        """The combined per-step text log (the pre-provenance format)."""
        return "\n".join([self.operator.log(), self.instruction_trace.log()])

    def digest(self) -> str:
        return analysis_trace_digest(self)


def analysis_trace_digest(trace: AnalysisTrace) -> str:
    """Hex SHA-256 identifying the derivation (wall times excluded)."""
    payload = {
        "schema": ANALYSIS_TRACE_SCHEMA,
        "machine": trace.machine,
        "instruction": trace.instruction,
        "language": trace.language,
        "operation": trace.operation,
        "operator_name": trace.operator_name,
        "operator": strip_durations(trace.operator.to_dict()),
        "instruction_trace": strip_durations(trace.instruction_trace.to_dict()),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
