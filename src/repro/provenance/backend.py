"""Pluggable storage backends behind :class:`~repro.provenance.TraceStore`.

The store's *logic* — content addressing, verdict keys, pointer
validation — is backend-independent; what varies is how raw objects
and index pointers reach disk.  A :class:`StoreBackend` is exactly
that raw surface:

* **objects** — immutable, content-addressed JSON texts keyed by their
  SHA-256 digest; writing the same digest twice is a no-op;
* **pointers** — small mutable records ``(kind, name) -> digest``
  (``kind`` is ``"key"`` for verdict-key pointers and ``"name"`` for
  the by-name index).  Pointer updates are *last-writer-wins*: under
  concurrent writers every reader must observe some complete, valid
  pointer — never a torn or dangling one.

Two backends ship:

``dir``
    The original directory tree (``objects/``, ``index/keys/``,
    ``index/by-name/``), one JSON file per object or pointer.  Every
    write goes through a same-directory ``mkstemp`` + ``os.replace``,
    which POSIX guarantees atomic, so concurrent writers of the same
    pointer serialize into last-writer-wins and readers always see a
    whole file.  Objects are written before any pointer that names
    them, so a resolvable pointer can never dangle.

``sqlite``
    One ``store.sqlite`` file in WAL journal mode, shared by any
    number of processes and threads.  Pointer updates for one verdict
    (the key pointer *and* the by-name pointer) commit in a single
    transaction, so a concurrent reader sees either both updates or
    neither — the dir backend can only promise per-pointer atomicity.
    WAL keeps readers unblocked while a writer commits, which is what
    lets many service workers share one warm verdict cache.

Both backends hold the same data; :func:`migrate_store` copies one
store's full contents into another, after which verdict lookups (and
therefore ``repro replay`` digests) are unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

#: The selectable backend names, in documentation order.
BACKENDS: Tuple[str, ...] = ("dir", "sqlite")

#: The sqlite backend's single database file, inside the store root.
SQLITE_FILENAME = "store.sqlite"

#: Pointer kinds: verdict-key pointers and the by-name index.
_POINTER_KINDS = ("key", "name")


class StoreBackendError(ValueError):
    """An unknown backend name was requested."""


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename).

    ``os.replace`` is atomic on POSIX, so a concurrent reader of
    ``path`` sees either the old complete file or the new complete
    file; two concurrent writers serialize into last-writer-wins.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class StoreBackend:
    """Raw object + pointer storage under one store root.

    Subclasses must make :meth:`set_pointers` last-writer-wins-safe
    under concurrent writers and :meth:`get_pointer` immune to torn
    reads; :meth:`put_object` must be idempotent per digest.
    """

    #: the backend's registered name (``dir`` / ``sqlite``).
    name: str = ""

    def put_object(self, digest: str, text: str) -> None:
        raise NotImplementedError

    def get_object_text(self, digest: str) -> Optional[str]:
        raise NotImplementedError

    def set_pointers(self, pointers: Sequence[Tuple[str, str, str]]) -> None:
        """Update ``(kind, name) -> digest`` pointers, last-writer-wins."""
        raise NotImplementedError

    def get_pointer(self, kind: str, name: str) -> Optional[str]:
        raise NotImplementedError

    def pointer_names(self, kind: str) -> List[str]:
        """All pointer names of one kind, sorted."""
        raise NotImplementedError

    def iter_objects(self) -> Iterator[Tuple[str, str]]:
        """Every stored ``(digest, text)`` pair (migration support)."""
        raise NotImplementedError

    def iter_pointers(self) -> Iterator[Tuple[str, str, str]]:
        """Every ``(kind, name, digest)`` pointer (migration support)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (connections, handles)."""


class DirBackend(StoreBackend):
    """The original one-file-per-artifact directory tree."""

    name = "dir"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # -- objects --------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest[2:]}.json"

    def put_object(self, digest: str, text: str) -> None:
        path = self._object_path(digest)
        if not path.exists():
            # Two racing writers of one digest both produce identical
            # bytes, so either atomic replace winning is correct.
            _atomic_write(path, text)

    def get_object_text(self, digest: str) -> Optional[str]:
        try:
            return self._object_path(digest).read_text(encoding="utf-8")
        except OSError:
            return None

    # -- pointers -------------------------------------------------------

    def _pointer_path(self, kind: str, name: str) -> Path:
        subdir = "keys" if kind == "key" else "by-name"
        return self.root / "index" / subdir / f"{name}.json"

    def set_pointers(self, pointers: Sequence[Tuple[str, str, str]]) -> None:
        # Each pointer write is individually atomic (tmp + os.replace):
        # concurrent record_verdict calls for the same name serialize
        # into last-writer-wins per pointer file, and a reader can
        # never observe a torn pointer.  Cross-pointer atomicity (key
        # and by-name moving together) is the sqlite backend's upgrade.
        for kind, name, digest in pointers:
            text = json.dumps({"object": digest}, sort_keys=True)
            _atomic_write(self._pointer_path(kind, name), text)

    def get_pointer(self, kind: str, name: str) -> Optional[str]:
        try:
            payload = json.loads(
                self._pointer_path(kind, name).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None
        digest = payload.get("object")
        return digest if isinstance(digest, str) else None

    def pointer_names(self, kind: str) -> List[str]:
        directory = self._pointer_path(kind, "x").parent
        if not directory.is_dir():
            return []
        # Skip in-flight ``.tmp-*`` files: pathlib's ``*`` matches
        # leading dots, and a crashed writer's leftovers must never
        # surface as phantom analysis names.
        return sorted(
            path.stem
            for path in directory.glob("*.json")
            if not path.name.startswith(".")
        )

    def iter_objects(self) -> Iterator[Tuple[str, str]]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.rglob("*.json")):
            if path.name.startswith("."):
                continue
            digest = path.parent.name + path.stem
            try:
                yield digest, path.read_text(encoding="utf-8")
            except OSError:
                continue

    def iter_pointers(self) -> Iterator[Tuple[str, str, str]]:
        for kind in _POINTER_KINDS:
            for name in self.pointer_names(kind):
                digest = self.get_pointer(kind, name)
                if digest is not None:
                    yield kind, name, digest


class SqliteBackend(StoreBackend):
    """One WAL-mode sqlite database shared by many readers and writers.

    Connections are per-thread (sqlite3 objects must not cross
    threads) and never cross a ``fork`` — a forked child opens its
    own.  ``busy_timeout`` makes concurrent writers queue instead of
    erroring, and WAL lets readers proceed while a writer commits.
    """

    name = "sqlite"

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS objects ("
        " digest TEXT PRIMARY KEY,"
        " body TEXT NOT NULL)",
        "CREATE TABLE IF NOT EXISTS pointers ("
        " kind TEXT NOT NULL,"
        " name TEXT NOT NULL,"
        " object TEXT NOT NULL,"
        " PRIMARY KEY (kind, name))",
    )

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.path = self.root / SQLITE_FILENAME
        self._local = threading.local()
        # Connect eagerly: the database file doubles as the detection
        # marker (see :func:`detect_backend`), so even a store that is
        # never written must leave it behind — and a bad root fails
        # here, not on the first lookup.
        self._connect()

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        pid = getattr(self._local, "pid", None)
        if connection is not None and pid == os.getpid():
            return connection
        self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            str(self.path), timeout=30.0, isolation_level=None
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA busy_timeout=30000")
        for statement in self._SCHEMA:
            connection.execute(statement)
        self._local.connection = connection
        self._local.pid = os.getpid()
        return connection

    def put_object(self, digest: str, text: str) -> None:
        self._connect().execute(
            "INSERT OR IGNORE INTO objects (digest, body) VALUES (?, ?)",
            (digest, text),
        )

    def get_object_text(self, digest: str) -> Optional[str]:
        row = self._connect().execute(
            "SELECT body FROM objects WHERE digest = ?", (digest,)
        ).fetchone()
        return None if row is None else row[0]

    def set_pointers(self, pointers: Sequence[Tuple[str, str, str]]) -> None:
        connection = self._connect()
        # One transaction for the whole pointer group: the key pointer
        # and the by-name pointer of a verdict move together, so a
        # concurrent reader sees the old verdict or the new one —
        # never a mix.
        with connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(
                "INSERT OR REPLACE INTO pointers (kind, name, object) "
                "VALUES (?, ?, ?)",
                list(pointers),
            )

    def get_pointer(self, kind: str, name: str) -> Optional[str]:
        row = self._connect().execute(
            "SELECT object FROM pointers WHERE kind = ? AND name = ?",
            (kind, name),
        ).fetchone()
        return None if row is None else row[0]

    def pointer_names(self, kind: str) -> List[str]:
        rows = self._connect().execute(
            "SELECT name FROM pointers WHERE kind = ? ORDER BY name",
            (kind,),
        ).fetchall()
        return [row[0] for row in rows]

    def iter_objects(self) -> Iterator[Tuple[str, str]]:
        rows = self._connect().execute(
            "SELECT digest, body FROM objects ORDER BY digest"
        )
        for digest, body in rows:
            yield digest, body

    def iter_pointers(self) -> Iterator[Tuple[str, str, str]]:
        rows = self._connect().execute(
            "SELECT kind, name, object FROM pointers ORDER BY kind, name"
        )
        for kind, name, digest in rows:
            yield kind, name, digest

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None and getattr(self._local, "pid", None) == os.getpid():
            connection.close()
        self._local.connection = None


def detect_backend(root: os.PathLike) -> str:
    """The backend already living under ``root`` (``dir`` when fresh).

    A ``store.sqlite`` file marks a migrated (or sqlite-born) store;
    everything else — including an empty or absent root — is the
    historical directory layout, so auto-detection never changes the
    behaviour of a pre-existing dir store.
    """
    return "sqlite" if (Path(root) / SQLITE_FILENAME).is_file() else "dir"


def make_backend(name: str, root: os.PathLike) -> StoreBackend:
    """Instantiate backend ``name`` rooted at ``root``."""
    if name == "dir":
        return DirBackend(Path(root))
    if name == "sqlite":
        return SqliteBackend(Path(root))
    raise StoreBackendError(
        "unknown store backend %r; choose from: %s"
        % (name, ", ".join(BACKENDS))
    )


def migrate_backend(source: StoreBackend, target: StoreBackend) -> int:
    """Copy every object and pointer from ``source`` into ``target``.

    Objects are copied before pointers (the same dangling-pointer
    discipline every backend write obeys), and pointer updates go
    through :meth:`StoreBackend.set_pointers` so the target's own
    atomicity guarantees hold during the copy.  Returns the number of
    objects copied.  Idempotent: re-running a migration is a no-op
    for objects (content-addressed) and last-writer-wins for pointers.
    """
    copied = 0
    for digest, text in source.iter_objects():
        target.put_object(digest, text)
        copied += 1
    pointers: Iterable[Tuple[str, str, str]] = list(source.iter_pointers())
    if pointers:
        target.set_pointers(list(pointers))
    return copied
