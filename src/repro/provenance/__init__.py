"""Replayable transformation provenance.

EXTRA's whole output is a *derivation*: the sequence of transformation
steps proving an instruction equivalent to an operator.  This package
makes those derivations first-class artifacts:

* :mod:`repro.provenance.schema` — the versioned analysis-trace schema
  (both sessions' :class:`~repro.transform.TraceEvent` streams plus
  the Table 2 identity), canonical JSON, and content digests;
* :mod:`repro.provenance.store` — a content-addressed on-disk store
  that memoizes analysis verdicts keyed on what actually determines
  them (source descriptions, code epoch, engine identity, trial plan),
  letting ``repro batch`` skip transformation replay *and*
  verification for work it has already proven.

``repro trace`` prints stored or freshly recorded derivations;
``repro replay`` re-applies them with per-step digest checking, which
is the drift gate between analysis scripts and ISDL descriptions.
"""

from .schema import (
    ANALYSIS_TRACE_SCHEMA,
    AnalysisTrace,
    analysis_trace_digest,
    canonical_json,
    strip_durations,
)
from .backend import (
    BACKENDS,
    DirBackend,
    SqliteBackend,
    StoreBackend,
    StoreBackendError,
    detect_backend,
    make_backend,
)
from .replay import replay_analysis, stored_trace, trace_for
from .store import (
    DEFAULT_STORE_DIR,
    STORE_ENV_VAR,
    STORE_SCHEMA,
    TraceStore,
    code_epoch,
    migrate_store,
    verdict_key,
)

__all__ = [
    "replay_analysis",
    "stored_trace",
    "trace_for",
    "ANALYSIS_TRACE_SCHEMA",
    "AnalysisTrace",
    "analysis_trace_digest",
    "canonical_json",
    "strip_durations",
    "BACKENDS",
    "DEFAULT_STORE_DIR",
    "DirBackend",
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "SqliteBackend",
    "StoreBackend",
    "StoreBackendError",
    "TraceStore",
    "code_epoch",
    "detect_backend",
    "make_backend",
    "migrate_store",
    "verdict_key",
]
