"""Content-addressed provenance store.

Layout (all JSON, all atomic tmp-file + rename writes)::

    <root>/
      objects/<aa>/<digest[2:]>.json   content-addressed artifacts
      index/keys/<key-digest>.json     verdict key -> object digest
      index/by-name/<analysis>.json    latest object digest per analysis

*Objects* are immutable verdict artifacts: the full two-sided analysis
trace, the JSON-ready result fields the batch report needs, and the
key that produced them.  An object's file name is the SHA-256 of its
canonical JSON, so equal artifacts coincide and a corrupted artifact
is detectable by re-hashing.

*Verdict keys* name everything that determines a verdict **without
running the analysis**: the schema version, the analysis name, the
digests of the two input descriptions, a digest of the whole
``repro`` source tree (the *code epoch* — any source change
conservatively invalidates every cached verdict), and the
verification plan (engine identity, trials, seed, verify flag).
``repro batch`` looks a key up before planning any work: a hit skips
both transformation replay and verification for that entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

from .. import obs
from .schema import canonical_json

#: Version tag for stored verdict artifacts; bump to orphan old caches.
STORE_SCHEMA = "repro.verdict/1"

#: Environment variable naming the default store root for the CLI.
STORE_ENV_VAR = "REPRO_CACHE_DIR"

#: Default store root used by the CLI when the environment is silent.
DEFAULT_STORE_DIR = ".repro-cache"


@lru_cache(maxsize=1)
def code_epoch() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    The coarsest safe invalidation key: a cached verdict may only be
    reused when *no* code that could influence it has changed.  This
    over-invalidates (editing one analysis script discards every
    entry's cache), but the dominant warm case — re-running an
    unchanged tree — still hits 100%, and under-invalidation would
    silently report stale verdicts.
    """
    package_root = Path(__file__).resolve().parents[1]
    hasher = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        hasher.update(str(path.relative_to(package_root)).encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


def verdict_key(
    name: str,
    operator_digest: str,
    instruction_digest: str,
    engine: str,
    trials: int,
    seed: int,
    verify: bool,
    epoch: Optional[str] = None,
    symbolic: bool = False,
) -> Dict[str, object]:
    """The lookup key for one entry's memoized verdict.

    ``symbolic`` is part of the key because the symbolic fast path
    changes how a verdict was reached (a proved binding runs a reduced
    confirmation window): a verdict computed one way must never answer
    a lookup planned the other way.
    """
    return {
        "schema": STORE_SCHEMA,
        "name": name,
        "code_epoch": epoch if epoch is not None else code_epoch(),
        "operator_digest": operator_digest,
        "instruction_digest": instruction_digest,
        "engine": engine,
        "trials": trials,
        "seed": seed,
        "verify": verify,
        "symbolic": symbolic,
    }


def _digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TraceStore:
    """Content-addressed store of verdict artifacts under one root."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    # -- raw objects ----------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest[2:]}.json"

    def put_object(self, payload: Dict[str, object]) -> str:
        """Store a JSON payload; returns its content digest."""
        text = canonical_json(payload)
        digest = _digest_text(text)
        path = self._object_path(digest)
        if not path.exists():
            _atomic_write(path, text)
        return digest

    def get_object(self, digest: str) -> Optional[Dict[str, object]]:
        """Load an object, or None when absent or corrupted."""
        path = self._object_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return None

    # -- the verdict index ----------------------------------------------

    def _key_path(self, key: Dict[str, object]) -> Path:
        key_digest = _digest_text(canonical_json(key))
        return self.root / "index" / "keys" / f"{key_digest}.json"

    def _name_path(self, name: str) -> Path:
        return self.root / "index" / "by-name" / f"{name}.json"

    def record_verdict(
        self, key: Dict[str, object], payload: Dict[str, object]
    ) -> str:
        """Store an artifact and index it by key and analysis name."""
        obs.inc("repro_provenance_store_writes_total")
        digest = self.put_object(payload)
        pointer = canonical_json({"object": digest})
        _atomic_write(self._key_path(key), pointer)
        name = key.get("name")
        if isinstance(name, str) and name:
            _atomic_write(self._name_path(name), pointer)
        return digest

    def _resolve(self, pointer_path: Path) -> Optional[Dict[str, object]]:
        try:
            pointer = json.loads(pointer_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        digest = pointer.get("object")
        if not isinstance(digest, str):
            return None
        return self.get_object(digest)

    def lookup_verdict(
        self, key: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """The memoized artifact for a key, or None (a cache miss)."""
        payload = self._resolve(self._key_path(key))
        if payload is None:
            obs.inc("repro_provenance_store_misses_total")
            return None
        # Defence in depth: the pointer file is mutable state, so
        # re-check that the artifact really answers this key.
        if payload.get("key") != key:
            obs.inc("repro_provenance_store_misses_total")
            return None
        obs.inc("repro_provenance_store_hits_total")
        return payload

    def latest_for(self, name: str) -> Optional[Dict[str, object]]:
        """The most recently recorded artifact for an analysis name."""
        return self._resolve(self._name_path(name))

    def names(self):
        """All analysis names with a by-name pointer, sorted."""
        directory = self.root / "index" / "by-name"
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))
