"""Content-addressed provenance store.

Logical layout (the ``dir`` backend's on-disk shape; the ``sqlite``
backend stores the same records in one WAL database — see
:mod:`repro.provenance.backend`)::

    <root>/
      objects/<aa>/<digest[2:]>.json   content-addressed artifacts
      index/keys/<key-digest>.json     verdict key -> object digest
      index/by-name/<analysis>.json    latest object digest per analysis

*Objects* are immutable verdict artifacts: the full two-sided analysis
trace, the JSON-ready result fields the batch report needs, and the
key that produced them.  An object's name is the SHA-256 of its
canonical JSON, so equal artifacts coincide and a corrupted artifact
is detectable by re-hashing.

*Verdict keys* name everything that determines a verdict **without
running the analysis**: the schema version, the analysis name, the
digests of the two input descriptions, a digest of the whole
``repro`` source tree (the *code epoch* — any source change
conservatively invalidates every cached verdict), and the
verification plan (engine identity, trials, seed, verify flag).
``repro batch`` looks a key up before planning any work: a hit skips
both transformation replay and verification for that entry.

The storage backend is **not** part of the verdict key: a verdict is
the same verdict wherever it is stored, which is why a dir store and
a sqlite store answer identical lookups with identical artifacts (and
why a batch report is byte-identical across backends).
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

from .. import obs
from .backend import (
    BACKENDS,
    StoreBackend,
    detect_backend,
    make_backend,
    migrate_backend,
)
from .schema import canonical_json

#: Version tag for stored verdict artifacts; bump to orphan old caches.
STORE_SCHEMA = "repro.verdict/1"

#: Environment variable naming the default store root for the CLI.
STORE_ENV_VAR = "REPRO_CACHE_DIR"

#: Default store root used by the CLI when the environment is silent.
DEFAULT_STORE_DIR = ".repro-cache"


@lru_cache(maxsize=1)
def code_epoch() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    The coarsest safe invalidation key: a cached verdict may only be
    reused when *no* code that could influence it has changed.  This
    over-invalidates (editing one analysis script discards every
    entry's cache), but the dominant warm case — re-running an
    unchanged tree — still hits 100%, and under-invalidation would
    silently report stale verdicts.
    """
    package_root = Path(__file__).resolve().parents[1]
    hasher = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        hasher.update(str(path.relative_to(package_root)).encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


def verdict_key(
    name: str,
    operator_digest: str,
    instruction_digest: str,
    engine: str,
    trials: int,
    seed: int,
    verify: bool,
    epoch: Optional[str] = None,
    symbolic: bool = False,
) -> Dict[str, object]:
    """The lookup key for one entry's memoized verdict.

    ``symbolic`` is part of the key because the symbolic fast path
    changes how a verdict was reached (a proved binding runs a reduced
    confirmation window): a verdict computed one way must never answer
    a lookup planned the other way.
    """
    return {
        "schema": STORE_SCHEMA,
        "name": name,
        "code_epoch": epoch if epoch is not None else code_epoch(),
        "operator_digest": operator_digest,
        "instruction_digest": instruction_digest,
        "engine": engine,
        "trials": trials,
        "seed": seed,
        "verify": verify,
        "symbolic": symbolic,
    }


def _digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TraceStore:
    """Content-addressed store of verdict artifacts under one root.

    ``backend`` selects the storage substrate (see
    :data:`~repro.provenance.backend.BACKENDS`): ``"dir"`` is the
    historical directory tree, ``"sqlite"`` one WAL database shared
    safely by many processes.  ``None`` auto-detects — a root holding
    a ``store.sqlite`` file opens as sqlite, anything else (including
    a fresh root) as dir — so existing stores keep working unflagged.
    """

    def __init__(self, root: os.PathLike, backend: Optional[str] = None):
        self.root = Path(root)
        resolved = backend if backend is not None else detect_backend(root)
        self._backend: StoreBackend = make_backend(resolved, self.root)

    @property
    def backend_name(self) -> str:
        """The active backend's registered name."""
        return self._backend.name

    def close(self) -> None:
        """Release backend resources (sqlite connections; dir: no-op)."""
        self._backend.close()

    # -- raw objects ----------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        """Dir-backend object location (test/debug support)."""
        return self.root / "objects" / digest[:2] / f"{digest[2:]}.json"

    def put_object(self, payload: Dict[str, object]) -> str:
        """Store a JSON payload; returns its content digest."""
        text = canonical_json(payload)
        digest = _digest_text(text)
        self._backend.put_object(digest, text)
        return digest

    def get_object(self, digest: str) -> Optional[Dict[str, object]]:
        """Load an object, or None when absent or corrupted."""
        text = self._backend.get_object_text(digest)
        if text is None:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return None

    # -- the verdict index ----------------------------------------------

    def _key_digest(self, key: Dict[str, object]) -> str:
        return _digest_text(canonical_json(key))

    def _key_path(self, key: Dict[str, object]) -> Path:
        """Dir-backend key-pointer location (test/debug support)."""
        return self.root / "index" / "keys" / f"{self._key_digest(key)}.json"

    def _name_path(self, name: str) -> Path:
        """Dir-backend by-name-pointer location (test/debug support)."""
        return self.root / "index" / "by-name" / f"{name}.json"

    def record_verdict(
        self, key: Dict[str, object], payload: Dict[str, object]
    ) -> str:
        """Store an artifact and index it by key and analysis name.

        The object lands before any pointer names it (no reader can
        follow a pointer to a missing artifact), and both pointers go
        to the backend as one group — atomically together on sqlite,
        individually atomic last-writer-wins on dir.
        """
        obs.inc("repro_provenance_store_writes_total")
        digest = self.put_object(payload)
        pointers = [("key", self._key_digest(key), digest)]
        name = key.get("name")
        if isinstance(name, str) and name:
            pointers.append(("name", name, digest))
        self._backend.set_pointers(pointers)
        return digest

    def _resolve(self, kind: str, name: str) -> Optional[Dict[str, object]]:
        digest = self._backend.get_pointer(kind, name)
        if digest is None:
            return None
        return self.get_object(digest)

    def lookup_verdict(
        self, key: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """The memoized artifact for a key, or None (a cache miss)."""
        payload = self._resolve("key", self._key_digest(key))
        if payload is None:
            obs.inc("repro_provenance_store_misses_total")
            return None
        # Defence in depth: the pointer is mutable state, so re-check
        # that the artifact really answers this key.
        if payload.get("key") != key:
            obs.inc("repro_provenance_store_misses_total")
            return None
        obs.inc("repro_provenance_store_hits_total")
        return payload

    def latest_for(self, name: str) -> Optional[Dict[str, object]]:
        """The most recently recorded artifact for an analysis name."""
        return self._resolve("name", name)

    def names(self):
        """All analysis names with a by-name pointer, sorted."""
        return self._backend.pointer_names("name")


def migrate_store(
    source: TraceStore, target: TraceStore
) -> int:
    """Copy ``source``'s full contents into ``target``.

    The canonical dir→sqlite migration path: every content-addressed
    object and every index pointer carries over, so the target answers
    exactly the lookups the source did — warm verdicts stay warm and
    ``repro replay`` digests are unchanged.  Returns the number of
    objects copied.
    """
    return migrate_backend(source._backend, target._backend)


__all__ = [
    "BACKENDS",
    "DEFAULT_STORE_DIR",
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "TraceStore",
    "code_epoch",
    "migrate_store",
    "verdict_key",
]
