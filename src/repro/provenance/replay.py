"""The replay correctness gate.

A stored :class:`~repro.provenance.AnalysisTrace` claims: *applying
these steps to these input descriptions produces exactly these
intermediate forms*.  :func:`replay_analysis` re-executes that claim —
both sessions' events are re-applied to freshly built input
descriptions with every recorded SHA-256 checked — so any drift
between the recorded derivation and the current ISDL descriptions or
transformation code surfaces as a
:class:`~repro.transform.ReplayDivergenceError` naming the exact step.

:func:`trace_for` resolves the trace to gate: the provenance store's
latest artifact for the analysis when one exists (checking *recorded
history* against current code), else a freshly recorded run (checking
the engine's self-consistency).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..transform import Session
from .schema import AnalysisTrace
from .store import TraceStore


def replay_analysis(
    trace: AnalysisTrace,
    operator_desc,
    instruction_desc,
) -> None:
    """Re-apply both sides of ``trace`` with per-step digest checks.

    Raises :class:`~repro.transform.ReplayDivergenceError` on the first
    step whose before/after digest disagrees with the recording, and
    :class:`~repro.transform.TransformError` if a recorded step no
    longer applies at all.
    """
    Session(operator_desc, label=trace.operator.label).replay(trace.operator)
    Session(instruction_desc, label=trace.instruction_trace.label).replay(
        trace.instruction_trace
    )


def stored_trace(
    store: Optional[TraceStore], name: str
) -> Optional[AnalysisTrace]:
    """The latest stored trace for ``name``, or None."""
    if store is None:
        return None
    artifact = store.latest_for(name)
    if artifact is None:
        return None
    payload = artifact.get("trace")
    if not isinstance(payload, dict):
        return None
    try:
        return AnalysisTrace.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None


def trace_for(
    store: Optional[TraceStore], name: str
) -> Tuple[Optional[AnalysisTrace], str]:
    """The trace to gate ``name`` on, and its origin.

    Returns ``(trace, "stored")`` when the provenance store has an
    artifact, ``(trace, "fresh")`` after recording a new run, or
    ``(None, "none")`` when the analysis produced no trace at all.
    """
    trace = stored_trace(store, name)
    if trace is not None:
        return trace, "stored"
    import importlib

    module = importlib.import_module(f"repro.analyses.{name}")
    outcome = module.run(verify=False)
    if outcome.trace is None:
        return None, "none"
    return outcome.trace, "fresh"
