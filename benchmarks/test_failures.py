"""§4.3 and §5 — the documented analysis failures, plus the §7 repair.

Regenerates the two failure narratives: movc3 vs Pascal sassign dies on
the multi-operand no-overlap constraint, and the DG Eclipse's
sign-encoded direction defeats the transformation library.  The same
bench then runs the §7 language-fact extension, which completes the
movc3/sassign analysis and verifies it differentially.
"""

import pytest

from repro.analyses import (
    eclipse_failure,
    movc3_sassign_extension,
    movc3_sassign_failure,
)

from conftest import banner


def test_movc3_sassign_failure(benchmark):
    outcome = benchmark(movc3_sassign_failure.run)
    print(banner("§4.3: VAX-11 movc3 vs Pascal sassign (stock EXTRA)"))
    print(f"result: FAILED (as the paper reports)")
    print(f"reason: {outcome.failure}")
    assert not outcome.succeeded
    assert "UnsupportedConstraintError" in outcome.failure


def test_eclipse_failure(benchmark):
    outcome = benchmark(eclipse_failure.run)
    print(banner("§5: DG Eclipse cmv vs Pascal string move"))
    print(f"result: FAILED (as the paper reports)")
    print(f"reason: {outcome.failure}")
    assert not outcome.succeeded


def test_section7_extension(benchmark):
    outcome = benchmark(movc3_sassign_extension.run, verify=True, trials=40)
    print(banner("§7 extension: movc3/sassign under the no-overlap fact"))
    assert outcome.succeeded, outcome.failure
    print(f"result: SUCCEEDED in {outcome.steps} steps")
    print(f"verified: {outcome.verification}")
    for constraint in outcome.binding.constraints:
        print(f"constraint: {constraint.describe()}")
