"""Library performance characteristics (not a paper artifact).

Times the hot paths a downstream user exercises: parsing a description,
interpreting one (per scasb search), applying a guarded transformation,
replaying a full analysis, compiling and simulating a program.  Useful
for catching performance regressions in the engine.
"""

import pytest

from repro.analyses import scasb_rigel
from repro.codegen import ir, target_for
from repro.isdl import parse_description
from repro.machines.i8086 import descriptions as i8086
from repro.semantics import CompiledDescription, Interpreter
from repro.transform import Session


def test_parse_description(benchmark):
    desc = benchmark(parse_description, i8086.SCASB_TEXT)
    assert desc.name == "scasb.instruction"


def test_interpret_search(benchmark):
    interp = Interpreter(i8086.scasb())
    memory = {100 + i: (i * 7) % 251 for i in range(64)}
    inputs = {
        "rf": 1, "rfz": 0, "df": 0, "zf": 0,
        "di": 100, "cx": 64, "al": 250,
    }
    result = benchmark(interp.run, inputs, memory)
    assert result.outputs[0] in (0, 1)


def test_compiled_search(benchmark):
    # Same workload as test_interpret_search on the compiled engine;
    # comparing the two rows is the per-run view of what
    # ``repro bench`` measures across the whole catalog.
    compiled = CompiledDescription(i8086.scasb())
    memory = {100 + i: (i * 7) % 251 for i in range(64)}
    inputs = {
        "rf": 1, "rfz": 0, "df": 0, "zf": 0,
        "di": 100, "cx": 64, "al": 250,
    }
    result = benchmark(compiled.run, inputs, memory)
    assert result.outputs[0] in (0, 1)
    reference = Interpreter(i8086.scasb()).run(inputs, memory)
    assert result.outputs == reference.outputs
    assert result.steps == reference.steps


def test_compile_description_lowering(benchmark):
    # The one-time cost the compiled engine pays per distinct
    # description (cache-bypassing: lowers fresh every round).
    from repro.semantics.compiler import _lower

    desc = i8086.scasb()
    program = benchmark(_lower, desc)
    assert program.description_name == desc.name


def test_apply_guarded_transformation(benchmark):
    def apply_once():
        session = Session(i8086.scasb())
        session.apply("fix_operand", operand="df", value=0)
        return session

    session = benchmark(apply_once)
    assert session.steps == 1


def test_full_analysis_replay(benchmark):
    outcome = benchmark(scasb_rigel.run, verify=False)
    assert outcome.succeeded


def test_compile_and_simulate(benchmark):
    target = target_for("i8086")
    prog = (
        ir.StringIndex(
            result="idx",
            base=ir.Param("s", 0, 60000),
            length=ir.Param("n", 0, 60000),
            char=ir.Param("c", 0, 255),
        ),
    )
    memory = {100 + i: (i * 3) % 256 for i in range(32)}

    def run():
        asm = target.compile(prog)
        return target.simulate(asm, {"s": 100, "n": 32, "c": 93}, memory)

    result = benchmark(run)
    assert "idx" in result.results
