"""Batch-runner scaling measurements (not a paper artifact).

Measures the wall-clock effect of the two engine-level optimizations
this repo layers over the per-analysis API:

* the content-keyed parse cache (repro.isdl.cache), via a cold-vs-warm
  catalog replay, and
* process-level parallelism (``run_batch(jobs=N)``), via a serial
  vs. ``jobs=4`` comparison of the full catalog with verification.

The parallel speedup assertion needs real cores: ``run_batch`` forks
worker processes, so on a single-CPU host (``os.sched_getaffinity``
reports 1) the workers time-slice one core and the fork/IPC overhead
makes jobs=4 *slower* than serial.  EXPERIMENTS.md records measured
numbers for both situations; here the scaling test self-skips below
2 usable CPUs rather than assert something the hardware cannot show.
"""

import os
import time

import pytest

from repro.analysis.runner import run_batch
from repro.isdl import cache


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed(**kwargs):
    start = time.perf_counter()
    report = run_batch(**kwargs)
    elapsed = time.perf_counter() - start
    assert report.ok
    return elapsed


@pytest.mark.slow
def test_parse_cache_warm_replay_is_faster():
    cache.clear_caches()
    cold = _timed(trials=0, verify=False)
    stats = cache.cache_stats()
    assert stats["description"]["misses"] > 0
    warm = _timed(trials=0, verify=False)
    # Replays re-parse nothing: every description comes out of the memo.
    assert cache.cache_stats()["description"]["misses"] == stats["description"]["misses"]
    print(f"\ncatalog replay: cold={cold:.3f}s warm={warm:.3f}s")


@pytest.mark.slow
def test_parallel_speedup_vs_serial():
    serial = _timed(jobs=1, trials=240, seed=1982)
    parallel = _timed(jobs=4, trials=240, seed=1982)
    speedup = serial / parallel
    print(
        f"\nbatch --trials 240: jobs=1 {serial:.2f}s, jobs=4 {parallel:.2f}s "
        f"({speedup:.2f}x on {_usable_cpus()} usable CPU(s))"
    )
    if _usable_cpus() < 2:
        pytest.skip(
            "single-CPU host: forked workers time-slice one core, so the "
            f"2x target is unreachable (measured {speedup:.2f}x; "
            "see EXPERIMENTS.md)"
        )
    assert speedup >= 2.0


@pytest.mark.slow
def test_jobs_do_not_change_results():
    # The scheduling knob must be invisible in the report, even here
    # where both modes actually execute.
    serial = run_batch(jobs=1, trials=60, seed=7)
    parallel = run_batch(jobs=4, trials=60, seed=7)
    assert serial.to_json() == parallel.to_json()


def test_forked_workers_inherit_warm_caches():
    # run_batch preloads the parse and compile caches in the parent
    # before the pool forks, so workers never parse or lower anything
    # themselves — their per-job cache-miss counters must stay at zero.
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("cache inheritance requires fork-based workers")
    report = run_batch(
        names=["scasb_rigel", "movsb_pascal", "locc_clu"],
        jobs=3,
        trials=40,
        seed=11,
    )
    assert report.ok
    misses = {job.name: job.cache_misses for job in report.results}
    assert all(count == 0 for count in misses.values()), misses
