"""Table 1 — exotic instruction statistics (paper §2).

Regenerates the per-machine counts of string and list processing exotic
instructions on the six sampled machines, and checks them against the
numbers printed in the paper (6 + 5 + 21 + 7 + 16 + 12 = 67).
"""

from repro.analysis import format_table
from repro.machines import MACHINES, PAPER_COUNTS, PAPER_TOTAL, table1_rows

from conftest import banner


def regenerate():
    rows = [
        (name, str(ours), str(paper))
        for name, ours, paper in table1_rows()
    ]
    rows.append(("Total", str(sum(m.count for m in MACHINES)), str(PAPER_TOTAL)))
    return rows


def test_table1(benchmark):
    rows = benchmark(regenerate)
    print(banner("Table 1: Exotic Instruction Statistics"))
    print(
        format_table(
            rows, ("Machine", "Number of Exotic Instructions", "Paper")
        )
    )
    for name, ours, paper in rows:
        assert ours == paper, name
