"""Beyond Table 2 — the extension analyses this reproduction adds.

Four analyses the paper motivates but does not tabulate (the B4800 list
search of §1, footnote 5's B4800 move encoding, 8086 stosb as a block
clear, IBM 370 clc) plus the §7 language-fact repair of movc3/sassign.
Printed as a Table-2-style summary.
"""

import pytest

from repro.analyses import EXTENSIONS
from repro.analysis import format_table, table2_row

from conftest import banner


def test_extensions_table(benchmark):
    def run_all():
        return [module.run(verify=True, trials=40) for module in EXTENSIONS]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [table2_row(outcome) for outcome in outcomes]
    print(banner("Extensions: analyses beyond Table 2"))
    print(
        format_table(
            rows, ("Machine", "Instruction", "Language", "Operation", "Steps")
        )
    )
    for outcome in outcomes:
        assert outcome.succeeded, outcome.failure
        assert outcome.verification is not None
