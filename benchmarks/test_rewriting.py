"""§6 — constraint-satisfaction rewriting (chunked moves).

"A string move operator that is constrained to move strings of at most
65K bytes can be rewritten to move consecutive substrings."  On the
IBM 370 the limit is mvc's 256-byte field: constant moves above it are
rewritten into consecutive mvc chunks; runtime lengths (no static
range) fall back to the decomposed loop.
"""

import pytest

from repro.analysis import format_table
from repro.codegen import ir, target_for

from conftest import banner

LENGTHS = (1, 200, 256, 257, 600, 1000)


def run_sweep():
    target = target_for("ibm370")
    rows = []
    for length in LENGTHS:
        prog = (
            ir.StringMove(
                dst=ir.Param("d", 0, 30000),
                src=ir.Param("s", 0, 30000),
                length=ir.Const(length),
            ),
        )
        asm = target.compile(prog)
        mvcs = sum(1 for i in asm.instructions() if i.mnemonic == "mvc")
        memory = {100 + i: (i % 251) for i in range(length)}
        result = target.simulate(asm, {"s": 100, "d": 20000}, memory)
        for i in range(length):
            assert result.memory.read(20000 + i) == i % 251
        rows.append((length, mvcs, len(asm), result.cycles))
    return rows


def test_mvc_chunking(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    printable = [
        (str(l), str(m), str(n), str(c)) for l, m, n, c in rows
    ]
    print(banner("IBM 370 mvc: constant-length moves via chunk rewriting"))
    print(
        format_table(
            printable, ("bytes", "mvc count", "instructions", "cycles")
        )
    )
    by_length = {l: m for l, m, _, _ in rows}
    assert by_length[1] == 1
    assert by_length[256] == 1  # exactly the limit: one instruction
    assert by_length[257] == 2  # one past: the rewrite kicks in
    assert by_length[600] == 3
    assert by_length[1000] == 4


def test_chunked_still_beats_loop(benchmark):
    """Even with per-chunk setup, chunked mvcs crush the byte loop."""

    def run():
        target = target_for("ibm370")
        length = 1000
        memory = {100 + i: 7 for i in range(length)}
        const_prog = (
            ir.StringMove(
                dst=ir.Param("d", 0, 30000),
                src=ir.Param("s", 0, 30000),
                length=ir.Const(length),
            ),
        )
        runtime_prog = (
            ir.StringMove(
                dst=ir.Param("d", 0, 30000),
                src=ir.Param("s", 0, 30000),
                length=ir.Param("n"),
            ),
        )
        chunked = target.simulate(
            target.compile(const_prog), {"s": 100, "d": 20000}, memory
        )
        loop = target.simulate(
            target.compile(runtime_prog),
            {"s": 100, "d": 20000, "n": length},
            memory,
        )
        return chunked.cycles, loop.cycles

    chunked_cycles, loop_cycles = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(banner("IBM 370: 1000-byte move"))
    print(f"chunked mvc: {chunked_cycles} cycles")
    print(f"byte loop:   {loop_cycles} cycles")
    print(f"speedup:     {loop_cycles / chunked_cycles:.2f}x")
    assert chunked_cycles * 5 < loop_cycles


def test_zero_length_is_free(benchmark):
    def run():
        target = target_for("ibm370")
        prog = (
            ir.StringMove(
                dst=ir.Param("d", 0, 30000),
                src=ir.Param("s", 0, 30000),
                length=ir.Const(0),
            ),
        )
        return target.compile(prog)

    asm = benchmark(run)
    assert len(asm) == 0
