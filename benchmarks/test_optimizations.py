"""§6 — optimization ablations.

The paper lists three optimizations for generated exotic instructions:
rewriting/augment integration, constant-value optimizations, and
intelligent register allocation for dedicated registers.  Each bench
compiles the same program with one optimization toggled and reports
instruction counts and cycles.
"""

import pytest

from repro.analysis import format_table
from repro.codegen import ir, target_for

from conftest import banner

#: cascaded copies: each subsequent source starts where the previous
#: one ended — exactly the VAX dedicated-register pattern.
CASCADE = (
    ir.BlockCopy(
        dst=ir.Param("out1", 0, 60000),
        src=ir.Param("src", 0, 60000),
        length=ir.Param("n", 0, 4000),
    ),
    ir.BlockCopy(
        dst=ir.Param("out2", 0, 60000),
        src=ir.Add(ir.Param("src", 0, 60000), ir.Param("n", 0, 4000)),
        length=ir.Param("n", 0, 4000),
    ),
    ir.BlockCopy(
        dst=ir.Param("out3", 0, 60000),
        src=ir.Add(
            ir.Add(ir.Param("src", 0, 60000), ir.Param("n", 0, 4000)),
            ir.Param("n", 0, 4000),
        ),
        length=ir.Param("n", 0, 4000),
    ),
)

PARAMS = {"src": 100, "out1": 20000, "out2": 24000, "out3": 28000, "n": 32}


def cascade_memory():
    return {100 + i: (i % 250) + 1 for i in range(96)}


def run_cascade(reuse):
    target = target_for("vax11", reuse_registers=reuse)
    asm = target.compile(CASCADE)
    result = target.simulate(asm, PARAMS, cascade_memory())
    for slice_index, base in enumerate((20000, 24000, 28000)):
        for i in range(32):
            expected = ((slice_index * 32 + i) % 250) + 1
            assert result.memory.read(base + i) == expected
    return len(asm), result.cycles


def test_dedicated_register_allocation(benchmark):
    """movc3 leaves R1 = src + len: cascades skip operand reloads."""
    results = benchmark.pedantic(
        lambda: (run_cascade(True), run_cascade(False)),
        rounds=1,
        iterations=1,
    )
    (opt_instrs, opt_cycles), (base_instrs, base_cycles) = results
    rows = [
        ("with register reuse", str(opt_instrs), str(opt_cycles)),
        ("without", str(base_instrs), str(base_cycles)),
    ]
    print(banner("VAX-11 cascaded block copies (3 x 32 bytes)"))
    print(format_table(rows, ("configuration", "instructions", "cycles")))
    assert opt_instrs < base_instrs
    assert opt_cycles < base_cycles


def test_constant_folding_integration(benchmark):
    """Rewrite-rule addresses fold away when the operands are constant."""

    def run():
        results = {}
        for fold in (True, False):
            target = target_for("ibm370", fold_constants=fold)
            prog = (
                ir.StringMove(
                    dst=ir.Const(20000), src=ir.Const(100), length=ir.Const(600)
                ),
            )
            asm = target.compile(prog)
            memory = {100 + i: 3 for i in range(600)}
            result = target.simulate(asm, {}, memory)
            assert result.memory.read(20599) == 3
            results[fold] = (len(asm), result.cycles)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("with constant folding", *map(str, results[True])),
        ("without", *map(str, results[False])),
    ]
    print(banner("IBM 370 chunked 600-byte move, constant operands"))
    print(format_table(rows, ("configuration", "instructions", "cycles")))
    assert results[True][0] < results[False][0]
    assert results[True][1] < results[False][1]


def test_exotic_ablation_full_matrix(benchmark):
    """use_exotic x machine for a mixed workload (the intro's claim)."""

    def run():
        rows = []
        for machine in ("i8086", "vax11", "ibm370"):
            target = target_for(machine, with_extensions=(machine == "vax11"))
            prog = (
                ir.StringMove(
                    dst=ir.Param("d", 0, 30000),
                    src=ir.Param("s", 0, 30000),
                    length=ir.Const(128),
                ),
            )
            memory = {100 + i: 9 for i in range(128)}
            run_params = {"s": 100, "d": 20000}
            exotic = target.simulate(
                target.compile(prog, use_exotic=True), run_params, memory
            )
            decomposed = target.simulate(
                target.compile(prog, use_exotic=False), run_params, memory
            )
            rows.append(
                (
                    machine,
                    len(target.compile(prog, use_exotic=True)),
                    len(target.compile(prog, use_exotic=False)),
                    exotic.cycles,
                    decomposed.cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        (m, str(ei), str(di), str(ec), str(dc), f"{dc / ec:.2f}x")
        for m, ei, di, ec, dc in rows
    ]
    print(banner("128-byte string move: time AND space, per machine"))
    print(
        format_table(
            printable,
            (
                "machine",
                "exotic instrs",
                "loop instrs",
                "exotic cycles",
                "loop cycles",
                "speedup",
            ),
        )
    )
    # "less time and space than an equivalent sequence of primitive
    # actions" — both columns must favor the exotic form.
    for machine, exotic_instrs, loop_instrs, exotic_cycles, loop_cycles in rows:
        assert exotic_instrs < loop_instrs, machine
        assert exotic_cycles < loop_cycles, machine
