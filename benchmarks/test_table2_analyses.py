"""Table 2 — exotic instruction analysis summary (paper §5).

Regenerates the eleven analyses (machine, instruction, language,
operation, transformation steps).  Absolute step counts differ from the
1982 implementation — our transcribed descriptions are more parallel
than the CMU ISPS sources, so scripts compress — but the shape holds:
every row succeeds, per-family difficulty orderings match, and the
overall step-count ranking correlates with the paper's
(EXPERIMENTS.md discusses the deviations).
"""

import pytest
from scipy import stats

from repro.analyses import TABLE2
from repro.analysis import format_table, table2_row

from conftest import banner

PAPER_STEPS = {module.__name__.rsplit(".", 1)[-1]: module.PAPER_STEPS for module in TABLE2}


@pytest.fixture(scope="module")
def outcomes():
    return {
        module.__name__.rsplit(".", 1)[-1]: module.run(verify=True, trials=40)
        for module in TABLE2
    }


@pytest.mark.parametrize(
    "module", TABLE2, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_analysis_row(benchmark, module):
    """Each row is one recorded analysis, replayed and verified."""
    outcome = benchmark(module.run, verify=False)
    assert outcome.succeeded, outcome.failure
    assert outcome.steps > 0


def test_table2_summary(benchmark, outcomes):
    def build_rows():
        built = []
        for name, outcome in outcomes.items():
            machine, instruction, language, operation, steps = table2_row(
                outcome
            )
            built.append(
                (
                    machine,
                    instruction,
                    language,
                    operation,
                    steps,
                    str(PAPER_STEPS[name]),
                )
            )
        return built

    rows = benchmark(build_rows)
    print(banner("Table 2: Exotic Instruction Analysis Summary"))
    print(
        format_table(
            rows,
            ("Machine", "Instruction", "Language", "Operation", "Steps", "Paper"),
        )
    )
    assert all(outcome.succeeded for outcome in outcomes.values())
    assert all(
        outcome.verification is not None for outcome in outcomes.values()
    )

    ours = [outcomes[name].steps for name in PAPER_STEPS]
    theirs = [PAPER_STEPS[name] for name in PAPER_STEPS]
    rho, _ = stats.spearmanr(ours, theirs)
    print(f"\nstep-count rank correlation with the paper: rho = {rho:.2f}")
    assert rho > 0.5

    # Per-family orderings reported in the paper.
    assert outcomes["movsb_pl1"].steps > outcomes["movsb_pascal"].steps
    assert outcomes["scasb_clu"].steps > outcomes["scasb_rigel"].steps
    assert outcomes["locc_clu"].steps < outcomes["locc_rigel"].steps
    assert outcomes["movc3_pc2"].steps == min(
        o.steps for o in outcomes.values()
    )
