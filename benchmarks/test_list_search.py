"""§1 — the B4800 linked-list search, end to end.

The paper's introduction motivates constraints with this instruction:
srl assumes the link field is the *first* field of the record.  The
bench compiles a generic list search for record layouts that do and do
not satisfy the constraint, and sweeps list lengths to show the exotic
instruction's advantage.
"""

import pytest

from repro.analysis import format_table
from repro.codegen import ir, target_for

from conftest import banner


def build_list(node_count, key_offset, link_offset):
    nodes = [16 + i * 4 for i in range(node_count)]
    memory = {}
    for index, addr in enumerate(nodes):
        memory[addr + link_offset] = (
            nodes[index + 1] if index + 1 < len(nodes) else 0
        )
        memory[addr + key_offset] = index & 0xFF
    return nodes, memory


def search_op(key_offset, link_offset):
    return ir.ListSearch(
        result="node",
        head=ir.Param("h", 0, 250),
        key=ir.Param("k", 0, 255),
        key_offset=ir.Const(key_offset),
        link_offset=ir.Const(link_offset),
    )


def test_list_search_sweep(benchmark):
    def run():
        target = target_for("b4800")
        rows = []
        for count in (2, 8, 16, 32):
            nodes, memory = build_list(count, 1, 0)
            params = {"h": nodes[0], "k": count - 1}  # worst case: last node
            exotic = target.simulate(
                target.compile((search_op(1, 0),)), params, memory
            )
            loop = target.simulate(
                target.compile((search_op(1, 0),), use_exotic=False),
                params,
                memory,
            )
            assert exotic.results["node"] == loop.results["node"] == nodes[-1]
            rows.append((count, exotic.cycles, loop.cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        (str(n), str(e), str(d), f"{d / e:.2f}x") for n, e, d in rows
    ]
    print(banner("B4800 list search: srl vs pointer-chasing loop (cycles)"))
    print(format_table(printable, ("nodes", "srl", "loop", "speedup")))
    assert all(d > e for _, e, d in rows)


def test_layout_constraint_gates_selection(benchmark):
    def run():
        target = target_for("b4800")
        good = target.compile((search_op(1, 0),))
        bad = target.compile((search_op(0, 2),))
        return good, bad

    good, bad = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("§1 record-layout constraint"))
    print("link field first (LinkOff = 0):  srl emitted")
    print("link field at offset 2:          decomposed pointer chase")
    assert any(i.mnemonic == "srl" for i in good.instructions())
    assert not any(i.mnemonic == "srl" for i in bad.instructions())
