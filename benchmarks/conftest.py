"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the output inline); assertions pin the qualitative *shape* the paper
reports — who wins, in what order, by roughly what factor (DESIGN.md).
"""

from __future__ import annotations


def banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"
