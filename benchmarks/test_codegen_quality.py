"""§6 — code quality: exotic instructions vs. decomposed loops.

"Exotic instructions are useful because they can often perform
operations in less time and space than an equivalent sequence of
primitive actions" (§1).  This bench sweeps string lengths on all three
targets, simulating both the exotic-instruction code and its decomposed
loop, and reports cycle counts, per-byte costs, and crossovers.

Shape expectations: the exotic form wins everywhere beyond trivial
lengths, by a growing factor; the decomposed loop can win only at the
smallest lengths on machines whose string instructions have large setup
costs (the VAX).
"""

import pytest

from repro.analysis import format_table
from repro.codegen import ir, target_for

from conftest import banner

LENGTHS = (1, 4, 16, 64, 256)


def sweep_move(machine):
    target = target_for(machine)
    rows = []
    for length in LENGTHS:
        prog = (
            ir.StringMove(
                dst=ir.Param("d", 0, 30000),
                src=ir.Param("s", 0, 30000),
                length=ir.Const(length),
            ),
        )
        memory = {100 + i: (i % 251) for i in range(length)}
        run_params = {"s": 100, "d": 20000}
        exotic = target.simulate(
            target.compile(prog, use_exotic=True), run_params, memory
        )
        decomposed = target.simulate(
            target.compile(prog, use_exotic=False), run_params, memory
        )
        for result in (exotic, decomposed):
            for i in range(length):
                assert result.memory.read(20000 + i) == i % 251
        rows.append((length, exotic.cycles, decomposed.cycles))
    return rows


@pytest.mark.parametrize("machine", ["i8086", "vax11", "ibm370"])
def test_string_move_sweep(benchmark, machine):
    if machine == "vax11":
        # Plain string moves need the §7 extension binding on the VAX.
        target_for("vax11", with_extensions=True)

    def run():
        if machine == "vax11":
            rows = []
            target = target_for("vax11", with_extensions=True)
            for length in LENGTHS:
                prog = (
                    ir.StringMove(
                        dst=ir.Param("d", 0, 30000),
                        src=ir.Param("s", 0, 30000),
                        length=ir.Const(length),
                    ),
                )
                memory = {100 + i: (i % 251) for i in range(length)}
                run_params = {"s": 100, "d": 20000}
                exotic = target.simulate(
                    target.compile(prog, use_exotic=True), run_params, memory
                )
                decomposed = target.simulate(
                    target.compile(prog, use_exotic=False), run_params, memory
                )
                rows.append((length, exotic.cycles, decomposed.cycles))
            return rows
        return sweep_move(machine)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        (
            str(length),
            str(exotic),
            str(decomposed),
            f"{decomposed / exotic:.2f}x",
        )
        for length, exotic, decomposed in rows
    ]
    print(banner(f"string move on {machine}: exotic vs decomposed (cycles)"))
    print(
        format_table(
            printable, ("bytes", "exotic", "decomposed", "speedup")
        )
    )
    # Shape: the exotic form wins beyond trivial lengths, by a growing
    # factor.
    speedups = {length: dec / exo for length, exo, dec in rows}
    assert speedups[64] > 1.5
    assert speedups[256] > speedups[16]
    # Per-byte cost dominated: roughly linear growth for both forms.
    exotic_cycles = {length: exo for length, exo, _ in rows}
    assert exotic_cycles[256] > exotic_cycles[16]


def test_string_search_sweep(benchmark):
    """scasb vs a byte loop on the 8086 — the paper's §4.1 operator."""

    def run():
        target = target_for("i8086")
        rows = []
        for length in LENGTHS:
            prog = (
                ir.StringIndex(
                    result="idx",
                    base=ir.Param("s", 0, 30000),
                    length=ir.Const(length),
                    char=ir.Const(1),  # absent: worst-case full scan
                ),
            )
            memory = {100 + i: 0 for i in range(length)}
            exotic = target.simulate(
                target.compile(prog, use_exotic=True), {"s": 100}, memory
            )
            decomposed = target.simulate(
                target.compile(prog, use_exotic=False), {"s": 100}, memory
            )
            assert exotic.results["idx"] == decomposed.results["idx"] == 0
            rows.append((length, exotic.cycles, decomposed.cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        (str(l), str(e), str(d), f"{d / e:.2f}x") for l, e, d in rows
    ]
    print(banner("string search (worst case) on i8086 (cycles)"))
    print(format_table(printable, ("bytes", "scasb", "byte loop", "speedup")))
    assert all(d > e for _, e, d in rows if _ >= 4)


def test_block_clear_sweep(benchmark):
    """movc5 (simplified to clear) vs a store loop on the VAX."""

    def run():
        target = target_for("vax11")
        rows = []
        for length in LENGTHS:
            prog = (
                ir.BlockClear(
                    dst=ir.Param("d", 0, 30000), length=ir.Const(length)
                ),
            )
            memory = {20000 + i: 0xAA for i in range(length)}
            exotic = target.simulate(
                target.compile(prog, use_exotic=True), {"d": 20000}, memory
            )
            decomposed = target.simulate(
                target.compile(prog, use_exotic=False), {"d": 20000}, memory
            )
            for result in (exotic, decomposed):
                assert all(
                    result.memory.read(20000 + i) == 0 for i in range(length)
                )
            rows.append((length, exotic.cycles, decomposed.cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        (str(l), str(e), str(d), f"{d / e:.2f}x") for l, e, d in rows
    ]
    print(banner("block clear on vax11: movc5 vs store loop (cycles)"))
    print(format_table(printable, ("bytes", "movc5", "store loop", "speedup")))
    # The VAX string instructions have a big setup cost: the loop may
    # win at length 1, but the crossover comes quickly.
    assert rows[0][1] > 0
    speedups = {l: d / e for l, e, d in rows}
    assert speedups[64] > 2
    assert speedups[256] > speedups[64]
