#!/usr/bin/env python3
"""Analyzing a *new* exotic instruction with the EXTRA library.

The system's purpose is retargeting: when a compiler meets a new
machine, its exotic instructions must be analyzed against the
languages' operators.  This example plays machine-description author:
it defines a fictional "Z900" machine whose ``skipnz`` instruction
scans memory for the first zero byte (a C-string length primitive),
writes an ISDL description for it and for a bounded ``strlen`` language
operator, drives an analysis session step by step, and differentially
verifies the resulting binding on 300 randomized machine states.

    python examples/analyze_new_instruction.py
"""

from repro.analysis import AnalysisInfo, AnalysisSession, verify_binding
from repro.isdl import format_description, parse_description
from repro.semantics.randomgen import OperandSpec, ScenarioSpec

# The machine instruction: scan until a zero byte, leaving the pointer
# on the terminator, the remaining window, and a hit flag.
SKIPNZ_TEXT = """
skipnz.instruction := begin
    ** OPERANDS **
        p<23:0>,                        ! scan pointer
        w<15:0>                         ! window length
    ** STATE **
        hit<>                           ! terminator found
    ** SCAN.PROCESS **
        skipnz.execute() := begin
            input (p, w);
            hit <- 0;
            repeat
                exit_when (w = 0);
                hit <- (Mb[ p ] = 0);
                exit_when (hit);
                p <- p + 1;
                w <- w - 1;
            end_repeat;
            output (hit, p, w);
        end
end
"""

# The language operator: a bounded C-style strlen.  The runtime routine
# keeps the base address in a local and returns scanned - base, or 0
# when no terminator fits the buffer.
STRLEN_TEXT = """
strlen.operation := begin
    ** ARGUMENTS **
        S: integer,                     ! string base address
        Max: integer                    ! buffer size bound
    ** LOCALS **
        start: integer,                 ! saved base address
        z<>                             ! terminator seen
    ** SCAN.PROCESS **
        strlen.execute() := begin
            input (S, Max);
            start <- S;
            z <- 0;
            repeat
                exit_when (Max = 0);
                z <- (Mb[ S ] = 0);
                exit_when (z);
                S <- S + 1;
                Max <- Max - 1;
            end_repeat;
            if z then
                output (S - start);
            else
                output (0);
            end_if;
        end
end
"""


def main() -> None:
    operator = parse_description(STRLEN_TEXT)
    instruction = parse_description(SKIPNZ_TEXT)
    print("=== the new instruction ===\n")
    print(format_description(instruction))

    info = AnalysisInfo(
        machine="Z900",
        instruction="skipnz",
        language="C runtime",
        operation="string length",
        operator="string.length",
    )
    session = AnalysisSession(info, operator, instruction)

    # Augment the instruction: save the start address in a prologue,
    # replace the raw register outputs with the operator's result —
    # exactly the scasb/index recipe from the paper's §4.1.
    ins = session.instruction
    ins.apply("allocate_temp", temp="start", bits=24)
    ins.apply_stmts("add_prologue", "start <- p;", position=1)
    ins.apply_stmts(
        "replace_epilogue",
        "if hit then output (p - start); else output (0); end_if;",
    )

    binding = session.finish()
    print("=== the binding ===\n")
    print(binding.describe())
    print(f"\ntotal transformation steps: {session.steps}")

    print("\n=== the augmented instruction ===\n")
    print(format_description(binding.augmented_instruction))

    scenario = ScenarioSpec(
        operands={"S": OperandSpec("address"), "Max": OperandSpec("length")}
    )
    report = verify_binding(binding, scenario, trials=300)
    print(f"verified: {report}")


if __name__ == "__main__":
    main()
