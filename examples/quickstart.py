#!/usr/bin/env python3
"""Quickstart: the paper's §4.1 analysis, end to end.

Runs the recorded scasb/Rigel-index analysis (simplify the instruction,
augment it, transform the operator into the common form), prints the
binding with its constraints, differentially verifies it, and finally
uses the binding to *generate real 8086 code* for a string search —
which is then executed on the cycle-costed 8086 simulator.

    python examples/quickstart.py
"""

from repro.analyses import scasb_rigel
from repro.codegen import ir, target_for
from repro.isdl import format_description


def main() -> None:
    print("=== 1. run the analysis (73 steps in the 1982 system) ===\n")
    outcome = scasb_rigel.run(verify=True, trials=200)
    assert outcome.succeeded, outcome.failure
    print(outcome.binding.describe())
    print(f"\ndifferential check: {outcome.verification}")

    print("\n=== 2. the augmented instruction (paper figure 5) ===\n")
    print(format_description(outcome.binding.augmented_instruction))

    print("=== 3. generate 8086 code from the binding ===\n")
    target = target_for("i8086")
    program = (
        ir.StringIndex(
            result="idx",
            base=ir.Param("s", 0, 60000),
            length=ir.Param("n", 0, 60000),
            char=ir.Param("c", 0, 255),
        ),
    )
    asm = target.compile(program)
    print(asm.listing())

    print("=== 4. run it on the simulator ===\n")
    text = b"analyzing exotic instructions"
    memory = {1000 + i: byte for i, byte in enumerate(text)}
    result = target.simulate(
        asm, {"s": 1000, "n": len(text), "c": ord("x")}, memory
    )
    print(f"searching {text!r} for 'x'")
    print(f"index (1-based): {result.results['idx']}")
    print(f"cycles: {result.cycles}")
    assert result.results["idx"] == text.index(b"x") + 1


if __name__ == "__main__":
    main()
