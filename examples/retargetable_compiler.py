#!/usr/bin/env python3
"""A retargetable compiler session: one program, three machines.

The scenario the paper's title promises: a compiler with a high-level
internal form compiles the *same* string-manipulating program for the
Intel 8086, the VAX-11, and the IBM 370, using each machine's exotic
instructions where the analysis bindings' constraints can be satisfied
and decomposed loops where they cannot.

The program copies a record's name field, searches it for a delimiter,
and compares it against a key — a sliver of the "interactive data base
applications" Rigel was designed for.

    python examples/retargetable_compiler.py
"""

from repro.codegen import ir, target_for

RECORD = b"morgan:rowe|berkeley"
KEY = b"morgan:rowe|berkeley"


def build_program() -> tuple:
    return (
        # copy the record into a working buffer (constant length: the
        # IBM 370 can use mvc, even though its field maxes out at 256)
        ir.StringMove(
            dst=ir.Param("buf", 0, 30000),
            src=ir.Param("rec", 0, 30000),
            length=ir.Const(len(RECORD)),
        ),
        # find the field delimiter
        ir.StringIndex(
            result="delim",
            base=ir.Param("buf", 0, 30000),
            length=ir.Const(len(RECORD)),
            char=ir.Const(ord("|")),
        ),
        # compare against the key
        ir.StringEqual(
            result="match",
            a=ir.Param("buf", 0, 30000),
            b=ir.Param("key", 0, 30000),
            length=ir.Const(len(RECORD)),
        ),
    )


def main() -> None:
    program = build_program()
    memory = {}
    memory.update({500 + i: b for i, b in enumerate(RECORD)})
    memory.update({900 + i: b for i, b in enumerate(KEY)})
    params = {"rec": 500, "key": 900, "buf": 20000}

    for machine in ("i8086", "vax11", "ibm370"):
        # The VAX needs the §7 no-overlap extension for plain string
        # moves; the 370 only implements string.move, so the search and
        # compare decompose there.
        target = target_for(machine, with_extensions=(machine == "vax11"))
        compilable = (
            program if machine != "ibm370" else program  # same program!
        )
        asm = target.compile(compilable)
        result = target.simulate(asm, params, memory)
        exotic_count = sum(
            1
            for instr in asm.instructions()
            if instr.mnemonic
            in (
                "rep_movsb",
                "repne_scasb",
                "repe_cmpsb",
                "movc3",
                "movc5",
                "locc",
                "cmpc3",
                "mvc",
            )
        )
        print(f"=== {machine} ===")
        print(asm.listing())
        print(f"exotic instructions used: {exotic_count}")
        print(f"delimiter index: {result.results['delim']}")
        print(f"key match:       {result.results['match']}")
        print(f"cycles:          {result.cycles}\n")
        assert result.results["delim"] == RECORD.index(b"|") + 1
        assert result.results["match"] == 1


if __name__ == "__main__":
    main()
