#!/usr/bin/env python3
"""The §4.3 failure and the §7 repair, side by side.

Stock EXTRA cannot prove VAX-11 ``movc3`` equivalent to Pascal string
assignment: movc3's overlap-guarding direction branch can only be
eliminated under the multi-operand constraint

    (Src.Base + Src.Length <= Dst.Base) or
    (Dst.Base + Dst.Length <= Src.Base)

and "the current version of EXTRA has no ability to deal with
complicated constraints that involve more than one operand."

The paper's proposed fix (§7): teach the analyzer *source language
characteristics* — Pascal strings can never overlap, a fact about the
language rather than any single program.  This example runs the
analysis both ways and then shows the consequence for generated code:
without the fact, a VAX compiler decomposes every plain string move;
with it, movc3 is generated.

    python examples/overlap_extension.py
"""

from repro.analyses import movc3_sassign_extension, movc3_sassign_failure
from repro.codegen import ir, target_for


def main() -> None:
    print("=== stock EXTRA (the paper's §4.3) ===\n")
    outcome = movc3_sassign_failure.run()
    assert not outcome.succeeded
    print("analysis FAILED, as published:")
    print(f"  {outcome.failure}\n")

    print("=== with the no-overlap language fact (§7) ===\n")
    repaired = movc3_sassign_extension.run(trials=200)
    assert repaired.succeeded, repaired.failure
    print(f"analysis SUCCEEDED in {repaired.steps} steps")
    print(f"verified: {repaired.verification}\n")
    for constraint in repaired.binding.constraints:
        print(f"  constraint: {constraint.describe()}")

    print("\n=== consequence for generated VAX code ===\n")
    program = (
        ir.StringMove(
            dst=ir.Param("d", 0, 30000),
            src=ir.Param("s", 0, 30000),
            length=ir.Param("n", 0, 30000),
        ),
    )
    memory = {100 + i: b for i, b in enumerate(b"no overlap here")}
    params = {"s": 100, "d": 20000, "n": 15}

    stock = target_for("vax11", with_extensions=False)
    stock_asm = stock.compile(program)
    stock_run = stock.simulate(stock_asm, params, memory)
    extended = target_for("vax11", with_extensions=True)
    extended_asm = extended.compile(program)
    extended_run = extended.simulate(extended_asm, params, memory)

    print(f"stock bindings:    {len(stock_asm)} instructions, "
          f"{stock_run.cycles} cycles (decomposed byte loop)")
    print(f"with extension:    {len(extended_asm)} instructions, "
          f"{extended_run.cycles} cycles (movc3)")
    print(f"speedup:           {stock_run.cycles / extended_run.cycles:.2f}x")
    assert any(i.mnemonic == "movc3" for i in extended_asm.instructions())
    assert not any(i.mnemonic == "movc3" for i in stock_asm.instructions())


if __name__ == "__main__":
    main()
